#include "xml/xml_writer.h"

#include <fstream>

#include "util/errors.h"

namespace glva::xml {

namespace {

void write_node(const XmlNode& node, const WriteOptions& options, int depth,
                std::string& out) {
  const std::string indent =
      options.pretty ? std::string(static_cast<std::size_t>(depth) *
                                       static_cast<std::size_t>(options.indent_width),
                                   ' ')
                     : std::string{};

  switch (node.kind()) {
    case XmlNode::Kind::kText:
      out += indent;
      out += escape_text(node.content());
      if (options.pretty) out += '\n';
      return;
    case XmlNode::Kind::kComment:
      out += indent;
      out += "<!--";
      out += node.content();
      out += "-->";
      if (options.pretty) out += '\n';
      return;
    case XmlNode::Kind::kElement:
      break;
  }

  out += indent;
  out += '<';
  out += node.name();
  for (const auto& attr : node.attributes()) {
    out += ' ';
    out += attr.name;
    out += "=\"";
    out += escape_text(attr.value);
    out += '"';
  }
  if (node.children().empty()) {
    out += "/>";
    if (options.pretty) out += '\n';
    return;
  }

  // Elements whose only children are text render inline so that
  // `<ci> x </ci>` style content does not gain spurious newlines.
  bool text_only = true;
  for (const auto& child : node.children()) {
    if (child->kind() != XmlNode::Kind::kText) {
      text_only = false;
      break;
    }
  }
  out += '>';
  if (text_only) {
    for (const auto& child : node.children()) {
      out += escape_text(child->content());
    }
  } else {
    if (options.pretty) out += '\n';
    for (const auto& child : node.children()) {
      write_node(*child, options, depth + 1, out);
    }
    out += indent;
  }
  out += "</";
  out += node.name();
  out += '>';
  if (options.pretty) out += '\n';
}

}  // namespace

std::string escape_text(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string write_document(const XmlNode& root, const WriteOptions& options) {
  std::string out;
  if (options.xml_declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out += '\n';
  }
  write_node(root, options, 0, out);
  return out;
}

void write_file(const XmlNode& root, const std::string& path,
                const WriteOptions& options) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open XML output file: " + path);
  f << write_document(root, options);
  if (!f) throw Error("failed writing XML output file: " + path);
}

}  // namespace glva::xml
