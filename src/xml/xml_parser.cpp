#include "xml/xml_parser.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/errors.h"
#include "util/string_util.h"

namespace glva::xml {

namespace {

/// Recursive-descent XML parser over a string_view with line/column
/// tracking for error messages.
class Parser {
public:
  explicit Parser(std::string_view input) : input_(input) {}

  XmlNodePtr parse() {
    skip_prolog();
    XmlNodePtr root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after document root");
    return root;
  }

private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= input_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return input_[pos_];
  }

  [[nodiscard]] bool lookahead(std::string_view s) const noexcept {
    return input_.substr(pos_, s.size()) == s;
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(std::string_view s) {
    if (!lookahead(s)) fail("expected '" + std::string(s) + "'");
    for (std::size_t i = 0; i < s.size(); ++i) advance();
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = input_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("XML: " + message, line_, column_);
  }

  static bool is_name_start(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  }

  static bool is_name_char(char c) noexcept {
    return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  std::string parse_name() {
    if (at_end() || !is_name_start(peek())) fail("expected a name");
    std::string name;
    while (!at_end() && is_name_char(input_[pos_])) {
      name += advance();
    }
    return name;
  }

  void skip_prolog() {
    skip_misc();
    // <?xml ... ?> and <!DOCTYPE ...> may appear before the root element.
    while (!at_end() && lookahead("<!DOCTYPE")) {
      // Skip to the matching '>' (no internal subset support).
      while (!at_end() && peek() != '>') {
        if (peek() == '[') fail("DOCTYPE internal subsets are not supported");
        advance();
      }
      expect(">");
      skip_misc();
    }
  }

  /// Skip whitespace, comments, and processing instructions.
  void skip_misc() {
    for (;;) {
      skip_whitespace();
      if (lookahead("<?")) {
        skip_processing_instruction();
      } else if (lookahead("<!--")) {
        parse_comment();  // discard between-document comments
      } else {
        return;
      }
    }
  }

  void skip_processing_instruction() {
    expect("<?");
    while (!at_end() && !lookahead("?>")) advance();
    expect("?>");
  }

  XmlNodePtr parse_comment() {
    expect("<!--");
    std::string body;
    while (!at_end() && !lookahead("-->")) body += advance();
    expect("-->");
    return XmlNode::comment(std::move(body));
  }

  std::string parse_attribute_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected a quoted attribute value");
    advance();
    std::string raw;
    while (!at_end() && peek() != quote) {
      if (peek() == '<') fail("'<' is not allowed in attribute values");
      raw += advance();
    }
    expect(std::string_view(&quote, 1));
    return decode_entities(raw);
  }

  XmlNodePtr parse_element() {
    expect("<");
    XmlNodePtr node = XmlNode::element(parse_name());
    // Attributes.
    for (;;) {
      skip_whitespace();
      if (at_end()) fail("unterminated start tag <" + node->name() + ">");
      if (peek() == '>' || lookahead("/>")) break;
      const std::string attr_name = parse_name();
      skip_whitespace();
      expect("=");
      skip_whitespace();
      if (node->attribute(attr_name)) {
        fail("duplicate attribute '" + attr_name + "' on <" + node->name() + ">");
      }
      node->set_attribute(attr_name, parse_attribute_value());
    }
    if (lookahead("/>")) {
      expect("/>");
      return node;
    }
    expect(">");
    parse_content(*node);
    expect("</");
    const std::string closing = parse_name();
    if (closing != node->name()) {
      fail("mismatched closing tag </" + closing + "> for <" + node->name() + ">");
    }
    skip_whitespace();
    expect(">");
    return node;
  }

  void parse_content(XmlNode& parent) {
    std::string pending_text;
    const auto flush_text = [&] {
      // Whitespace-only runs between elements are layout, not data.
      if (!util::trim(pending_text).empty()) {
        parent.add_text(decode_entities(pending_text));
      }
      pending_text.clear();
    };
    for (;;) {
      if (at_end()) fail("unterminated element <" + parent.name() + ">");
      if (lookahead("</")) {
        flush_text();
        return;
      }
      if (lookahead("<!--")) {
        flush_text();
        parent.add_child(parse_comment());
      } else if (lookahead("<![CDATA[")) {
        expect("<![CDATA[");
        std::string body;
        while (!at_end() && !lookahead("]]>")) body += advance();
        expect("]]>");
        parent.add_text(std::move(body));  // CDATA is literal
      } else if (lookahead("<?")) {
        flush_text();
        skip_processing_instruction();
      } else if (peek() == '<') {
        flush_text();
        parent.add_child(parse_element());
      } else {
        pending_text += advance();
      }
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

std::string decode_entities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  std::size_t i = 0;
  while (i < raw.size()) {
    if (raw[i] != '&') {
      out += raw[i++];
      continue;
    }
    const std::size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) {
      throw ParseError("XML: unterminated entity reference");
    }
    const std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "amp") {
      out += '&';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      // Numeric character reference; only ASCII code points are emitted
      // directly, larger ones are encoded as UTF-8.
      long code = 0;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
      }
      if (code <= 0 || code > 0x10FFFF) {
        throw ParseError("XML: invalid character reference &" +
                         std::string(entity) + ";");
      }
      const auto cp = static_cast<unsigned long>(code);
      if (cp < 0x80) {
        out += static_cast<char>(cp);
      } else if (cp < 0x800) {
        out += static_cast<char>(0xC0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else if (cp < 0x10000) {
        out += static_cast<char>(0xE0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (cp >> 18));
        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (cp & 0x3F));
      }
    } else {
      throw ParseError("XML: unknown entity &" + std::string(entity) + ";");
    }
    i = semi + 1;
  }
  return out;
}

XmlNodePtr parse_document(std::string_view input) {
  Parser parser(input);
  return parser.parse();
}

XmlNodePtr parse_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open XML file: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return parse_document(buffer.str());
}

}  // namespace glva::xml
