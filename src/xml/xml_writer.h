#pragma once

#include <string>

#include "xml/xml_node.h"

namespace glva::xml {

/// Options controlling document serialization.
struct WriteOptions {
  bool pretty = true;          ///< indent nested elements
  int indent_width = 2;        ///< spaces per nesting level
  bool xml_declaration = true; ///< emit `<?xml version="1.0" encoding="UTF-8"?>`
};

/// Serialize a node tree to XML text. Attribute values and character data
/// are entity-escaped; elements without children render as self-closing
/// tags. Round-trips with parse_document for trees the parser can produce.
[[nodiscard]] std::string write_document(const XmlNode& root,
                                         const WriteOptions& options = {});

/// Serialize to the file at `path`. Throws glva::Error on I/O failure.
void write_file(const XmlNode& root, const std::string& path,
                const WriteOptions& options = {});

/// Entity-escape text for use in character data or attribute values.
[[nodiscard]] std::string escape_text(std::string_view raw);

}  // namespace glva::xml
