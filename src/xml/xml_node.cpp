#include "xml/xml_node.h"

#include "util/errors.h"
#include "util/string_util.h"

namespace glva::xml {

XmlNode::XmlNode(Kind kind, std::string name_or_text) : kind_(kind) {
  if (kind == Kind::kElement) {
    name_ = std::move(name_or_text);
  } else {
    text_ = std::move(name_or_text);
  }
}

XmlNodePtr XmlNode::element(std::string name) {
  return XmlNodePtr(new XmlNode(Kind::kElement, std::move(name)));
}

XmlNodePtr XmlNode::text(std::string content) {
  return XmlNodePtr(new XmlNode(Kind::kText, std::move(content)));
}

XmlNodePtr XmlNode::comment(std::string content) {
  return XmlNodePtr(new XmlNode(Kind::kComment, std::move(content)));
}

std::optional<std::string> XmlNode::attribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return attr.value;
  }
  return std::nullopt;
}

std::string XmlNode::required_attribute(std::string_view name) const {
  if (auto v = attribute(name)) return *v;
  throw ParseError("element <" + name_ + "> is missing required attribute '" +
                   std::string(name) + "'");
}

void XmlNode::set_attribute(std::string name, std::string value) {
  for (auto& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::move(value);
      return;
    }
  }
  attributes_.push_back(XmlAttribute{std::move(name), std::move(value)});
}

XmlNode& XmlNode::add_child(XmlNodePtr child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

XmlNode& XmlNode::add_element(std::string name) {
  return add_child(element(std::move(name)));
}

void XmlNode::add_text(std::string content) {
  add_child(text(std::move(content)));
}

const XmlNode* XmlNode::find_child(std::string_view name) const noexcept {
  for (const auto& child : children_) {
    if (child->kind_ == Kind::kElement && child->name_ == name) {
      return child.get();
    }
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::find_children(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children_) {
    if (child->kind_ == Kind::kElement && child->name_ == name) {
      out.push_back(child.get());
    }
  }
  return out;
}

std::vector<const XmlNode*> XmlNode::element_children() const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children_) {
    if (child->kind_ == Kind::kElement) out.push_back(child.get());
  }
  return out;
}

const XmlNode& XmlNode::required_child(std::string_view name) const {
  if (const XmlNode* child = find_child(name)) return *child;
  throw ParseError("element <" + name_ + "> is missing required child <" +
                   std::string(name) + ">");
}

std::string XmlNode::text_content() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->kind_ == Kind::kText) out += child->text_;
  }
  return std::string(util::trim(out));
}

XmlNodePtr XmlNode::clone() const {
  XmlNodePtr copy(new XmlNode(kind_, kind_ == Kind::kElement ? name_ : text_));
  copy->attributes_ = attributes_;
  for (const auto& child : children_) {
    copy->children_.push_back(child->clone());
  }
  return copy;
}

}  // namespace glva::xml
