#pragma once

#include <string>
#include <string_view>

#include "xml/xml_node.h"

namespace glva::xml {

/// Parse an XML document into a node tree.
///
/// Supported: elements, attributes (single/double quoted), character data,
/// comments, CDATA sections, the five predefined entities plus numeric
/// character references, XML declarations and processing instructions
/// (skipped), and DOCTYPE declarations without internal subsets (skipped).
///
/// Throws glva::ParseError (with line/column) on malformed input.
/// The returned node is the document's single root element.
[[nodiscard]] XmlNodePtr parse_document(std::string_view input);

/// Parse the XML file at `path`. Throws glva::Error when the file cannot be
/// read and glva::ParseError on malformed content.
[[nodiscard]] XmlNodePtr parse_file(const std::string& path);

/// Decode entity and character references in raw character data.
[[nodiscard]] std::string decode_entities(std::string_view raw);

}  // namespace glva::xml
