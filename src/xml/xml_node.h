#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// A deliberately small XML document model: elements with attributes,
/// character data, and comments. Namespaces are carried as literal prefixes
/// in names (SBML documents in practice use a fixed default namespace plus
/// the MathML namespace on <math>, which this model preserves verbatim).
namespace glva::xml {

class XmlNode;
using XmlNodePtr = std::unique_ptr<XmlNode>;

/// One attribute, in document order.
struct XmlAttribute {
  std::string name;
  std::string value;
};

/// An XML tree node. `kElement` nodes own children; `kText` and `kComment`
/// nodes carry character data in `text`.
class XmlNode {
public:
  enum class Kind { kElement, kText, kComment };

  /// Create an element node with the given tag name.
  static XmlNodePtr element(std::string name);
  /// Create a character-data node.
  static XmlNodePtr text(std::string content);
  /// Create a comment node.
  static XmlNodePtr comment(std::string content);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& content() const noexcept { return text_; }

  // -- attributes ---------------------------------------------------------

  [[nodiscard]] const std::vector<XmlAttribute>& attributes() const noexcept {
    return attributes_;
  }
  /// Attribute value by name, or nullopt when absent.
  [[nodiscard]] std::optional<std::string> attribute(std::string_view name) const;
  /// Attribute value by name; throws glva::ParseError when absent
  /// (used by readers for required attributes).
  [[nodiscard]] std::string required_attribute(std::string_view name) const;
  /// Set (or overwrite) an attribute.
  void set_attribute(std::string name, std::string value);

  // -- children -----------------------------------------------------------

  [[nodiscard]] const std::vector<XmlNodePtr>& children() const noexcept {
    return children_;
  }
  /// Append a child and return a reference to it.
  XmlNode& add_child(XmlNodePtr child);
  /// Convenience: append a new element child.
  XmlNode& add_element(std::string name);
  /// Convenience: append a text child.
  void add_text(std::string content);

  /// First element child with the given tag name, or nullptr.
  [[nodiscard]] const XmlNode* find_child(std::string_view name) const noexcept;
  /// All element children with the given tag name, in order.
  [[nodiscard]] std::vector<const XmlNode*> find_children(std::string_view name) const;
  /// All element children regardless of name.
  [[nodiscard]] std::vector<const XmlNode*> element_children() const;
  /// First element child with the given name; throws glva::ParseError when
  /// absent.
  [[nodiscard]] const XmlNode& required_child(std::string_view name) const;

  /// Concatenated character data of direct text children, whitespace-trimmed.
  [[nodiscard]] std::string text_content() const;

  /// Deep copy of this subtree.
  [[nodiscard]] XmlNodePtr clone() const;

private:
  XmlNode(Kind kind, std::string name_or_text);

  Kind kind_;
  std::string name_;  // element tag name
  std::string text_;  // character data / comment body
  std::vector<XmlAttribute> attributes_;
  std::vector<XmlNodePtr> children_;
};

}  // namespace glva::xml
