#include "exec/seed_sequence.h"

namespace glva::exec {

std::uint64_t derive_seed(std::uint64_t base_seed,
                          std::uint64_t job_index) noexcept {
  std::uint64_t state = base_seed;
  const std::uint64_t mixed_base = sim::splitmix64_next(state);
  state = mixed_base ^ job_index;
  return sim::splitmix64_next(state);
}

std::vector<std::uint64_t> SeedSequence::first(std::size_t count) const {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(seed_for(i));
  return seeds;
}

}  // namespace glva::exec
