#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"

/// Deterministic per-job seed derivation for the parallel runtime. Every
/// job of a fan-out gets its own `sim::Rng` stream derived from
/// `(base_seed, job_index)` — never a shared generator, never the raw base
/// seed — so results are independent of how many workers execute the jobs
/// and replicates draw statistically independent sample paths.
namespace glva::exec {

/// Derive the seed for one job. Pure function of (base_seed, job_index):
/// two chained splitmix64 finalizations — the first avalanches the base
/// seed, the second mixes in the job index — so `(base, i)` and
/// `(base, i+1)` land in unrelated regions of seed space, and distinct
/// indices can never collide for a fixed base (the finalizer is a
/// bijection). This is the same splitmix64 machinery `sim::Rng` seeds its
/// xoshiro state with.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::uint64_t job_index) noexcept;

/// A base seed plus the derivation scheme, as an object the schedulers can
/// pass around. Random access: `seed_for(i)` is O(1) and independent of any
/// other call, which is what lets jobs be seeded before the fan-out and
/// committed in index order afterwards.
class SeedSequence {
public:
  explicit SeedSequence(std::uint64_t base_seed) noexcept
      : base_seed_(base_seed) {}

  [[nodiscard]] std::uint64_t base_seed() const noexcept { return base_seed_; }

  /// The derived seed for job `job_index`.
  [[nodiscard]] std::uint64_t seed_for(std::uint64_t job_index) const noexcept {
    return derive_seed(base_seed_, job_index);
  }

  /// An Rng already seeded for job `job_index`.
  [[nodiscard]] sim::Rng rng_for(std::uint64_t job_index) const noexcept {
    return sim::Rng(seed_for(job_index));
  }

  /// The first `count` derived seeds, in job order.
  [[nodiscard]] std::vector<std::uint64_t> first(std::size_t count) const;

private:
  std::uint64_t base_seed_;
};

}  // namespace glva::exec
