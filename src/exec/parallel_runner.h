#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"

/// The job-scheduler layer of the execution subsystem: deterministic
/// indexed fan-out over a fixed-size ThreadPool.
///
/// Determinism contract (the property `tests/test_exec.cpp` pins):
/// running the same job set with any worker count produces bit-identical
/// results, because
///   1. each job is a pure function of its index — per-job RNG streams are
///      derived from `(base_seed, job_index)` by exec::SeedSequence before
///      the fan-out, never drawn from a shared generator;
///   2. every job commits its result into the slot its index names, so the
///      assembled output is in job-index order regardless of completion
///      order;
///   3. failures are deterministic too: the exception of the *lowest* failed
///      job index is rethrown, whichever job happened to fail first on the
///      wall clock.
///
/// Trace storage composes with this contract unchanged: every job owns its
/// private `store::TraceSink` (its own spill file / bit-planes / trace),
/// so sinks never need cross-job synchronization and the ordered commit
/// stays byte-identical whichever sink kind a run selects.
namespace glva::exec {

/// Resolve a user-facing `--jobs` request: 0 means "one per hardware
/// thread"; anything else is taken literally. Never returns 0.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested) noexcept;

class ParallelRunner {
public:
  /// A runner executing up to `jobs` jobs concurrently (0 = one per
  /// hardware thread). `jobs == 1` runs everything inline on the calling
  /// thread — no pool, no synchronization — which is the reference the
  /// parallel path is bit-identical to. Each fan-out spins up (and joins)
  /// its own private ThreadPool.
  explicit ParallelRunner(std::size_t jobs = 1) noexcept;

  /// A runner borrowing `pool` for every fan-out instead of constructing
  /// one per call: the persistent-pool mode long-lived processes (the
  /// `glva serve` daemon) use so worker threads are spawned once for the
  /// process lifetime. The pool is not owned and must outlive the runner.
  /// Concurrency is pool.thread_count(); determinism is unchanged — the
  /// ordered-commit contract is per-call state, so multiple runners (or
  /// concurrent fan-outs of one runner) may share a pool. The FIFO
  /// progress argument still holds per fan-out: a fan-out's lowest
  /// uncommitted job was enqueued before any of its window-gated jobs, so
  /// it is always dequeued first and the head never blocks.
  explicit ParallelRunner(ThreadPool& pool) noexcept;

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// The borrowed pool, or nullptr when this runner owns per-call pools.
  [[nodiscard]] ThreadPool* shared_pool() const noexcept {
    return shared_pool_;
  }

  /// Run `body(i)` for every i in [0, count). Blocks until all jobs finish
  /// (even when one throws — stragglers are drained, not abandoned), then
  /// rethrows the exception of the lowest failed index, if any.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& body) const;

  /// Fan `make(i)` out over [0, count) and return the results in job-index
  /// order. T must be default-constructible (slots are pre-created so each
  /// job commits into its own).
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(std::size_t count, Fn&& make) const {
    std::vector<T> results(count);
    for_each_index(count, [&](std::size_t i) { results[i] = make(i); });
    return results;
  }

  /// Streaming reduce with ordered commits: fan `make(i)` out over
  /// [0, count) like `map`, but instead of materializing all results,
  /// `commit(i, std::move(result))` is invoked on the *calling* thread in
  /// strict index order as soon as each result's turn arrives — result i
  /// is destroyed after its commit, so resident memory is bounded by the
  /// in-flight window, not by `count`. This is what makes 10^3-replicate
  /// ensembles O(1) memory per replicate (see core::run_ensemble).
  ///
  /// Bounded-window backpressure: workers stall before *starting* job i
  /// until i < committed + window (window = 2 · jobs), so at most ~window
  /// uncommitted results ever exist even when the commit head lags.
  /// Progress is guaranteed because the pool is FIFO: the head job is
  /// always dequeued before any job its window could wait on.
  ///
  /// Determinism matches `map`: commits happen in index order whatever the
  /// completion order, so any reduction that folds commits sequentially is
  /// bit-identical across worker counts; `jobs == 1` runs
  /// make(0), commit(0), make(1), ... inline — the reference path.
  ///
  /// Failure contract: commits form a prefix [0, f) where f is the lowest
  /// failed index; that job's exception (or the commit's own, if a commit
  /// throws) is rethrown after every in-flight job drains. Jobs past a
  /// detected failure that have not started yet are skipped (their results
  /// could never be committed).
  template <typename T, typename Make, typename Commit>
  void run_reduce(std::size_t count, Make&& make, Commit&& commit) const {
    if (count == 0) return;
    if (jobs_ == 1 || count == 1) {
      for (std::size_t i = 0; i < count; ++i) commit(i, make(i));
      return;
    }

    const std::size_t window = 2 * jobs_;
    std::mutex mutex;
    std::condition_variable produced;  // a result (or failure) landed
    std::condition_variable released;  // the commit head advanced
    std::map<std::size_t, T> ready;
    std::map<std::size_t, std::exception_ptr> failed;
    std::size_t committed = 0;
    bool draining = false;

    std::optional<ThreadPool> local_pool;
    if (shared_pool_ == nullptr) local_pool.emplace(std::min(jobs_, count));
    ThreadPool& pool = shared_pool_ ? *shared_pool_ : *local_pool;
    std::vector<std::future<void>> pending;
    pending.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      pending.push_back(pool.submit([&, i] {
        {
          std::unique_lock lock(mutex);
          if (!draining && i >= committed + window) {
            // Backpressure stall: the commit head is more than one window
            // behind this job. Time spent parked here is the cost of the
            // bounded-memory contract, surfaced as exec.reduce.stall_us.
            const auto stall_start = std::chrono::steady_clock::now();
            released.wait(lock,
                          [&] { return draining || i < committed + window; });
            static obs::Counter& stall_us =
                obs::counter("exec.reduce.stall_us");
            stall_us.add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - stall_start)
                    .count()));
          }
          if (draining) return;  // a failure upstream: this result is moot
        }
        try {
          T result = make(i);
          const std::lock_guard lock(mutex);
          ready.emplace(i, std::move(result));
        } catch (...) {
          const std::lock_guard lock(mutex);
          failed.emplace(i, std::current_exception());
        }
        produced.notify_all();
      }));
    }

    std::exception_ptr failure;
    {
      std::unique_lock lock(mutex);
      for (std::size_t i = 0; i < count && !failure; ++i) {
        produced.wait(lock, [&] {
          return ready.count(i) != 0 || failed.count(i) != 0;
        });
        if (const auto f = failed.find(i); f != failed.end()) {
          failure = f->second;
          break;
        }
        T result = std::move(ready.at(i));
        ready.erase(i);
        lock.unlock();
        try {
          commit(i, std::move(result));
        } catch (...) {
          failure = std::current_exception();
        }
        lock.lock();
        ++committed;
        released.notify_all();
      }
      draining = true;  // wake gated workers so the pool can drain
      released.notify_all();
    }
    for (auto& job : pending) {
      try {
        job.get();
      } catch (...) {
        // Exceptions were already captured per index; the rethrow below
        // reports the lowest one.
      }
    }
    if (failure) std::rethrow_exception(failure);
  }

private:
  std::size_t jobs_;
  ThreadPool* shared_pool_ = nullptr;  ///< borrowed, never owned
};

}  // namespace glva::exec
