#pragma once

#include <cstddef>
#include <functional>
#include <vector>

/// The job-scheduler layer of the execution subsystem: deterministic
/// indexed fan-out over a fixed-size ThreadPool.
///
/// Determinism contract (the property `tests/test_exec.cpp` pins):
/// running the same job set with any worker count produces bit-identical
/// results, because
///   1. each job is a pure function of its index — per-job RNG streams are
///      derived from `(base_seed, job_index)` by exec::SeedSequence before
///      the fan-out, never drawn from a shared generator;
///   2. every job commits its result into the slot its index names, so the
///      assembled output is in job-index order regardless of completion
///      order;
///   3. failures are deterministic too: the exception of the *lowest* failed
///      job index is rethrown, whichever job happened to fail first on the
///      wall clock.
///
/// Trace storage composes with this contract unchanged: every job owns its
/// private `store::TraceSink` (its own spill file / bit-planes / trace),
/// so sinks never need cross-job synchronization and the ordered commit
/// stays byte-identical whichever sink kind a run selects.
namespace glva::exec {

/// Resolve a user-facing `--jobs` request: 0 means "one per hardware
/// thread"; anything else is taken literally. Never returns 0.
[[nodiscard]] std::size_t resolve_jobs(std::size_t requested) noexcept;

class ParallelRunner {
public:
  /// A runner executing up to `jobs` jobs concurrently (0 = one per
  /// hardware thread). `jobs == 1` runs everything inline on the calling
  /// thread — no pool, no synchronization — which is the reference the
  /// parallel path is bit-identical to.
  explicit ParallelRunner(std::size_t jobs = 1) noexcept;

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Run `body(i)` for every i in [0, count). Blocks until all jobs finish
  /// (even when one throws — stragglers are drained, not abandoned), then
  /// rethrows the exception of the lowest failed index, if any.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& body) const;

  /// Fan `make(i)` out over [0, count) and return the results in job-index
  /// order. T must be default-constructible (slots are pre-created so each
  /// job commits into its own).
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(std::size_t count, Fn&& make) const {
    std::vector<T> results(count);
    for_each_index(count, [&](std::size_t i) { results[i] = make(i); });
    return results;
  }

private:
  std::size_t jobs_;
};

}  // namespace glva::exec
