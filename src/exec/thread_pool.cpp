#include "exec/thread_pool.h"

#include "obs/metrics.h"

namespace glva::exec {

namespace {

// Shared across every pool in the process: the exec/ layer is one
// subsystem from the observability point of view, and serve/ deliberately
// runs a single long-lived pool.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("exec.pool.queue_depth");
  return g;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) thread_count = 1;
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  queue_depth_gauge().add(1);
  work_available_.notify_one();
  return future;
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_gauge().add(-1);
    static obs::Counter& tasks = obs::counter("exec.pool.tasks");
    static obs::Histogram& task_us = obs::histogram("exec.pool.task_us");
    tasks.increment();
    const obs::ScopedLatency latency(task_us);
    // packaged_task catches whatever the callable throws and stores it in
    // the shared state, so nothing propagates to the worker thread.
    task();
  }
}

}  // namespace glva::exec
