#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// The execution subsystem: a deterministic parallel runtime for the
/// embarrassingly parallel experiment workloads (one SSA run per input
/// combination, per threshold point, per circuit, per replicate).
///
/// Layering: ThreadPool (this header) is a plain fixed-size worker pool
/// with no scheduling policy of its own; ParallelRunner adds the
/// deterministic indexed fan-out and ordered-commit contract; SeedSequence
/// pins the per-job RNG derivation. Nothing in exec/ depends on core/ —
/// the dependency points the other way.
namespace glva::exec {

/// A fixed-size, work-stealing-free thread pool. Tasks are executed in FIFO
/// submission order (no reordering, no priorities), each on whichever worker
/// frees up first. Exceptions thrown by a task never reach the worker thread
/// (which would `std::terminate`); they are captured into the task's future
/// and rethrown — as the original exception — from `std::future::get()`.
///
/// Destruction drains the queue: every submitted task runs to completion
/// before the workers join, so a future obtained from submit() is always
/// eventually satisfied.
class ThreadPool {
public:
  /// Spin up `thread_count` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t thread_count);

  /// Waits for all queued tasks to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. The returned future is satisfied when the task
  /// finishes; if the task threw, get() rethrows the original exception.
  [[nodiscard]] std::future<void> submit(std::function<void()> task);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// std::thread::hardware_concurrency(), never 0.
  [[nodiscard]] static std::size_t hardware_threads() noexcept;

private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;  // last: workers start after all state
};

}  // namespace glva::exec
