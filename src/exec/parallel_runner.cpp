#include "exec/parallel_runner.h"

#include <algorithm>
#include <exception>
#include <future>

#include "exec/thread_pool.h"

namespace glva::exec {

std::size_t resolve_jobs(std::size_t requested) noexcept {
  return requested == 0 ? ThreadPool::hardware_threads() : requested;
}

ParallelRunner::ParallelRunner(std::size_t jobs) noexcept
    : jobs_(resolve_jobs(jobs)) {}

ParallelRunner::ParallelRunner(ThreadPool& pool) noexcept
    : jobs_(std::max<std::size_t>(pool.thread_count(), 1)),
      shared_pool_(&pool) {}

void ParallelRunner::for_each_index(
    std::size_t count, const std::function<void(std::size_t)>& body) const {
  if (count == 0) return;

  if (jobs_ == 1 || count == 1) {
    // Inline reference path: index order, exceptions propagate directly
    // (the first failing index is also the lowest, matching the pool path).
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::optional<ThreadPool> local_pool;
  if (shared_pool_ == nullptr) local_pool.emplace(std::min(jobs_, count));
  ThreadPool& pool = shared_pool_ ? *shared_pool_ : *local_pool;
  std::vector<std::future<void>> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pending.push_back(pool.submit([&body, i] { body(i); }));
  }

  // Drain every job before reporting: get() in index order, keeping the
  // first (= lowest-index) failure. Later jobs still run to completion so
  // no result slot is left mid-write.
  std::exception_ptr first_failure;
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!first_failure) first_failure = std::current_exception();
    }
  }
  if (first_failure) std::rethrow_exception(first_failure);
}

}  // namespace glva::exec
