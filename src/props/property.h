#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

/// Bounded temporal-property monitors over digitized logic planes — the
/// timing/robustness scenario class of the formal-methods treatments of
/// genetic circuits (Yordanov & Belta; Abed & Rashid) applied to the
/// reproduction's packed bit-streams.
///
/// A property is a small bounded-LTL formula over *plane atoms* (the
/// digitized input/output species streams): boolean combinators, the
/// unbounded `G`/`F`, the bounded `F[0,k]` / `G[0,k]` / `U[0,k]` window
/// operators, and two derived timing idioms — `settle[k]` (the signal
/// reaches its final value within k samples) and `noglitch[k]` (no
/// constant run shorter than k samples, trace-boundary runs exempt).
/// Every operator has two evaluators pinned bit-identical to each other:
/// a naive per-sample reference (`reference.h`, the executable spec) and
/// a word-parallel packed monitor (`monitor.h`, the production path).
/// See docs/PROPERTIES.md for the grammar and the finite-trace semantics.
namespace glva::props {

/// AST node kinds. The bounded operators carry their window bound `k`;
/// `kAtom` carries the plane name.
enum class PropertyKind : std::uint8_t {
  kAtom,              ///< plane name (input/output species)
  kNot,               ///< !p
  kAnd,               ///< p & q
  kOr,                ///< p | q
  kImplies,           ///< p -> q (right-associative)
  kGlobally,          ///< G p        — p at every remaining sample
  kEventually,        ///< F p        — p at some remaining sample
  kGloballyBounded,   ///< G[0,k] p   — p throughout the next k samples
  kEventuallyBounded, ///< F[0,k] p   — p within the next k samples
  kUntilBounded,      ///< p U[0,k] q — q within k samples, p up to it
  kSettle,            ///< settle[k] p — p constant from sample j+k on
  kNoGlitch,          ///< noglitch[k] p — no interior run shorter than k
};

struct Property;
/// Nodes are immutable and shared — subtrees may be reused freely (the
/// random-property fuzz generator does).
using PropertyPtr = std::shared_ptr<const Property>;

/// One immutable AST node. Use the factory functions below; they keep the
/// child/field population consistent with `kind`.
struct Property {
  PropertyKind kind = PropertyKind::kAtom;
  std::string atom;       ///< kAtom only: the plane name
  std::size_t bound = 0;  ///< bounded operators only: the window bound k
  PropertyPtr left;       ///< unary child, or binary lhs
  PropertyPtr right;      ///< binary rhs
};

[[nodiscard]] PropertyPtr make_atom(std::string name);
[[nodiscard]] PropertyPtr make_not(PropertyPtr p);
[[nodiscard]] PropertyPtr make_and(PropertyPtr a, PropertyPtr b);
[[nodiscard]] PropertyPtr make_or(PropertyPtr a, PropertyPtr b);
[[nodiscard]] PropertyPtr make_implies(PropertyPtr a, PropertyPtr b);
[[nodiscard]] PropertyPtr make_globally(PropertyPtr p);
[[nodiscard]] PropertyPtr make_eventually(PropertyPtr p);
[[nodiscard]] PropertyPtr make_globally_bounded(std::size_t k, PropertyPtr p);
[[nodiscard]] PropertyPtr make_eventually_bounded(std::size_t k, PropertyPtr p);
[[nodiscard]] PropertyPtr make_until_bounded(PropertyPtr a, std::size_t k,
                                             PropertyPtr b);
[[nodiscard]] PropertyPtr make_settle(std::size_t k, PropertyPtr p);
[[nodiscard]] PropertyPtr make_noglitch(std::size_t k, PropertyPtr p);

/// Canonical text form with minimal parentheses — `parse_property`
/// round-trips it (parse(to_string(p)) is structurally equal to p), and
/// the canonical string is what requests carry, so spelling variants of
/// one property share a cache line in the daemon.
[[nodiscard]] std::string to_string(const Property& property);

/// Every atom name in the formula, in first-appearance order, without
/// duplicates — what the evaluators bind against plane names.
[[nodiscard]] std::vector<std::string> collect_atoms(const Property& property);

/// Throws glva::InvalidArgument naming the offending atom when the
/// formula references a plane not in `plane_names` (the bind-time check
/// both evaluators run first).
void validate_atoms(const Property& property,
                    const std::vector<std::string>& plane_names);

}  // namespace glva::props
