#pragma once

#include <string>
#include <vector>

#include "props/property.h"

namespace glva::props {

/// Named boolean planes, one verdict per sample — the reference
/// evaluator's input. All planes must share one length.
struct NamedPlanes {
  std::vector<std::string> names;
  std::vector<std::vector<bool>> planes;
};

/// The executable spec: evaluates `property` at every sample position by
/// the naive finite-trace semantics of docs/PROPERTIES.md, one verdict
/// per sample. Deliberately simple — linear scans, no bit tricks — so it
/// can be audited against the prose semantics; the packed monitor
/// (monitor.h) is pinned bit-identical to this function by
/// tests/test_props.cpp.
///
/// Throws glva::InvalidArgument on an unknown atom or mismatched plane
/// lengths.
[[nodiscard]] std::vector<bool> evaluate_reference(const Property& property,
                                                   const NamedPlanes& planes);

}  // namespace glva::props
