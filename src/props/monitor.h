#pragma once

#include <string>
#include <vector>

#include "logic/bit_stream.h"
#include "props/property.h"

namespace glva::props {

/// Named packed planes — the monitor's input. Non-owning: the streams
/// stay with the caller (check.cpp points straight at the digitized
/// ensemble planes). All planes must share one length.
struct PackedNamedPlanes {
  std::vector<std::string> names;
  std::vector<const logic::BitStream*> planes;
};

/// The production evaluator: computes the same per-sample verdict vector
/// as `evaluate_reference`, but word-parallel on the packed planes —
/// boolean combinators as word ops, G/F as carry-propagating suffix
/// scans, the bounded windows as doubling shift/OR (shift/AND) cascades
/// through the active simd::KernelSet, settle/noglitch from
/// run-constancy scans and a morphological opening. Bit-identical to the
/// reference by construction and pinned so by tests/test_props.cpp.
/// See docs/PROPERTIES.md for the compilation sketch and cost model.
///
/// Throws glva::InvalidArgument on an unknown atom or mismatched plane
/// lengths.
[[nodiscard]] logic::BitStream evaluate_packed(const Property& property,
                                               const PackedNamedPlanes& planes);

}  // namespace glva::props
