#pragma once

#include <string>

#include "props/property.h"

namespace glva::props {

/// Parses the property language of docs/PROPERTIES.md:
///
///   property := or_expr ('->' property)?          (right-associative)
///   or_expr  := and_expr ('|' and_expr)*
///   and_expr := until ('&' until)*
///   until    := unary ('U' '[0,k]' until)?        (right-associative)
///   unary    := '!' unary
///             | 'G' bounds? unary | 'F' bounds? unary
///             | 'settle' '[' k ']' unary | 'noglitch' '[' k ']' unary
///             | '(' property ')'
///             | atom
///   bounds   := '[' 0 ',' k ']'
///
/// Atoms are identifiers ([A-Za-z_][A-Za-z0-9_]*) naming digitized planes;
/// `G`, `F`, `U`, `settle`, `noglitch` are reserved. Whitespace is
/// insignificant — `G(C->F[0,80]GFP)` and `G (C -> F[0,80] GFP)` parse the
/// same, which is what lets golden-test command lines avoid quoting.
///
/// Throws glva::ParseError (with a 1-based column) on malformed input:
/// unbalanced bounds, an empty interval (hi < lo), a non-zero lower bound,
/// an unexpected token, or trailing garbage.
[[nodiscard]] PropertyPtr parse_property(const std::string& text);

}  // namespace glva::props
