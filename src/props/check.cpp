#include "props/check.h"

#include <bit>
#include <filesystem>
#include <sstream>
#include <utility>

#include "core/adc.h"
#include "core/logic_analyzer.h"
#include "exec/seed_sequence.h"
#include "logic/combination_index.h"
#include "props/monitor.h"
#include "props/reference.h"
#include "sim/virtual_lab.h"
#include "store/digitizing_sink.h"
#include "store/spill_reader.h"
#include "store/spill_sink.h"
#include "util/errors.h"
#include "util/string_util.h"
#include "util/text_table.h"

namespace glva::props {

namespace {

std::vector<std::string> plane_names(const circuits::CircuitSpec& spec) {
  std::vector<std::string> names = spec.input_ids;
  names.push_back(spec.output_id);
  return names;
}

sim::VirtualLab make_lab(const circuits::CircuitSpec& spec,
                         const core::ExperimentConfig& config) {
  sim::LabOptions lab_options;
  lab_options.sampling_period = config.sampling_period;
  lab_options.seed = config.seed;
  lab_options.method = config.method;

  sim::VirtualLab lab(spec.model, lab_options);
  lab.declare_inputs(spec.input_ids);
  return lab;
}

/// The spill acquisition: stream the sweep to its .glvt (one file per
/// replicate, same naming as the ensemble runner) and hand back the file
/// path. What happens next depends on the backend — see run_one.
std::string spill_sweep(const circuits::CircuitSpec& spec,
                        const core::ExperimentConfig& config) {
  sim::VirtualLab lab = make_lab(spec, config);
  std::filesystem::create_directories(config.spill_dir);
  const std::string path = (std::filesystem::path(config.spill_dir) /
                            (core::spill_stem_for(spec, config) + ".glvt"))
                               .string();
  store::SpillSink::Options spill_options;
  spill_options.seed = config.seed;
  spill_options.sampling_period = config.sampling_period;
  store::SpillSink sink(path, spill_options);
  // The schedule is not needed here: combination masks are rebuilt from
  // the packed input planes by CombinationIndex.
  static_cast<void>(
      lab.run_combination_sweep_into(config.total_time, config.high_level(),
                                     sink));
  return path;
}

/// Packed evaluation of one replicate: one monitor pass per property,
/// then per-combination reduction through the CombinationIndex masks —
/// satisfaction counts via and_popcount, the first violation via the
/// first nonzero word of mask & ~verdict.
CheckReplicate evaluate_packed_replicate(
    const core::PackedDigitalData& data, const std::vector<std::string>& names,
    const std::vector<PropertyPtr>& properties, std::uint64_t seed) {
  CheckReplicate replicate;
  replicate.seed = seed;
  replicate.sample_count = data.sample_count();

  const logic::CombinationIndex index(data.inputs);
  PackedNamedPlanes planes;
  planes.names = names;
  for (const logic::BitStream& input : data.inputs) {
    planes.planes.push_back(&input);
  }
  planes.planes.push_back(&data.output);

  for (const PropertyPtr& property : properties) {
    const logic::BitStream verdict = evaluate_packed(*property, planes);
    const std::span<const std::uint64_t> v = verdict.words();

    PropertyCheck check;
    check.property = to_string(*property);
    check.samples = data.sample_count();
    for (std::size_t c = 0; c < index.combination_count(); ++c) {
      const logic::BitStream& mask = index.mask(c);
      const std::span<const std::uint64_t> m = mask.words();
      CombinationCheck comb;
      comb.combination = c;
      comb.samples = index.count(c);
      comb.satisfied = logic::and_popcount(mask, verdict);
      for (std::size_t w = 0; w < m.size(); ++w) {
        // ~v has ones in the tail, but the mask's zero tail kills them.
        const std::uint64_t bad = m[w] & ~v[w];
        if (bad != 0) {
          comb.first_violation =
              w * 64 + static_cast<std::size_t>(std::countr_zero(bad));
          break;
        }
      }
      check.satisfied += comb.satisfied;
      if (comb.first_violation < check.first_violation) {
        check.first_violation = comb.first_violation;
      }
      check.combinations.push_back(comb);
    }
    replicate.properties.push_back(std::move(check));
  }
  return replicate;
}

/// Reference evaluation of one replicate: the per-sample loop over the
/// naive verdict vector. Bit-identical to the packed path (the masks
/// partition the samples, so the per-combination counts and the first
/// violating index agree exactly).
CheckReplicate evaluate_reference_replicate(
    const core::DigitalData& data, const std::vector<std::string>& names,
    const std::vector<PropertyPtr>& properties, std::uint64_t seed) {
  CheckReplicate replicate;
  replicate.seed = seed;
  const std::size_t n = data.sample_count();
  replicate.sample_count = n;
  const std::size_t input_count = data.input_count();

  // Combination id per sample, MSB-first input order.
  std::vector<std::size_t> id(n, 0);
  for (std::size_t i = 0; i < input_count; ++i) {
    const std::vector<bool>& input = data.inputs[i];
    const std::size_t bit = input_count - 1 - i;
    for (std::size_t j = 0; j < n; ++j) {
      if (input[j]) id[j] |= std::size_t{1} << bit;
    }
  }

  NamedPlanes planes;
  planes.names = names;
  planes.planes = data.inputs;
  planes.planes.push_back(data.output);

  const std::size_t combinations = std::size_t{1} << input_count;
  for (const PropertyPtr& property : properties) {
    const std::vector<bool> verdict = evaluate_reference(*property, planes);

    PropertyCheck check;
    check.property = to_string(*property);
    check.samples = n;
    check.combinations.resize(combinations);
    for (std::size_t c = 0; c < combinations; ++c) {
      check.combinations[c].combination = c;
    }
    for (std::size_t j = 0; j < n; ++j) {
      CombinationCheck& comb = check.combinations[id[j]];
      ++comb.samples;
      if (verdict[j]) {
        ++comb.satisfied;
        ++check.satisfied;
      } else {
        if (comb.first_violation == kNoViolation) comb.first_violation = j;
        if (check.first_violation == kNoViolation) check.first_violation = j;
      }
    }
    replicate.properties.push_back(std::move(check));
  }
  return replicate;
}

/// One replicate end to end: simulate under the configured sink, digitize
/// into the configured representation, evaluate every property.
CheckReplicate run_one(const circuits::CircuitSpec& spec,
                       const core::ExperimentConfig& config,
                       const std::vector<std::string>& names,
                       const std::vector<PropertyPtr>& properties) {
  if (config.sink == store::SinkKind::kDigitize) {
    std::vector<std::string> tracked = spec.input_ids;
    tracked.push_back(spec.output_id);
    sim::VirtualLab lab = make_lab(spec, config);
    // With a spill directory, the digitized replicate also leaves a
    // replayable bit-plane .glvt artifact, per-replicate stem — the same
    // tee run_experiment's digitize path uses.
    store::DigitizingSink sink = [&] {
      if (config.spill_dir.empty()) {
        return store::DigitizingSink(std::move(tracked), config.threshold);
      }
      std::filesystem::create_directories(config.spill_dir);
      store::DigitizingSink::SpillOptions spill;
      spill.path = (std::filesystem::path(config.spill_dir) /
                    (core::spill_stem_for(spec, config) + ".glvt"))
                       .string();
      spill.seed = config.seed;
      spill.sampling_period = config.sampling_period;
      return store::DigitizingSink(std::move(tracked), config.threshold,
                                   std::move(spill));
    }();
    static_cast<void>(lab.run_combination_sweep_into(
        config.total_time, config.high_level(), sink));
    const core::PackedDigitalData data =
        core::take_digitized(sink, spec.input_ids.size());
    return evaluate_packed_replicate(data, names, properties, config.seed);
  }

  // Same auto-fallback as the analyzer: past the packed limit the 2^N
  // masks stop paying for themselves — the reference path is bit-identical.
  const bool packed = config.backend == core::AnalysisBackend::kPacked &&
                      spec.input_ids.size() <= core::kPackedAutoInputLimit;

  if (config.sink == store::SinkKind::kSpill) {
    const std::string path = spill_sweep(spec, config);
    store::SpillReader reader(path);
    if (packed) {
      // Out of core: replay the spill chunk-by-chunk into the streaming
      // ADC, so resident memory stays one chunk of doubles plus the bit
      // planes — the full trace is never re-materialized. Bit-identical
      // to digitizing a read_all() trace (the DigitizingSink contract).
      std::vector<std::string> tracked = spec.input_ids;
      tracked.push_back(spec.output_id);
      store::DigitizingSink digitizer(std::move(tracked), config.threshold);
      reader.replay(digitizer);
      const core::PackedDigitalData data =
          core::take_digitized(digitizer, spec.input_ids.size());
      return evaluate_packed_replicate(data, names, properties, config.seed);
    }
    const sim::Trace trace = reader.read_all();
    const core::DigitalData data = core::digitize(
        trace, spec.input_ids, spec.output_id, config.threshold);
    return evaluate_reference_replicate(data, names, properties, config.seed);
  }

  sim::VirtualLab lab = make_lab(spec, config);
  const sim::Trace trace = std::move(
      lab.run_combination_sweep(config.total_time, config.high_level()).trace);
  if (packed) {
    const core::PackedDigitalData data = core::digitize_packed(
        trace, spec.input_ids, spec.output_id, config.threshold);
    return evaluate_packed_replicate(data, names, properties, config.seed);
  }
  const core::DigitalData data =
      core::digitize(trace, spec.input_ids, spec.output_id, config.threshold);
  return evaluate_reference_replicate(data, names, properties, config.seed);
}

std::string violation_label(std::size_t index, double sampling_period) {
  if (index == kNoViolation) return "-";
  return "t=" +
         util::format_double(static_cast<double>(index) * sampling_period, 6);
}

}  // namespace

CheckResult run_check(const circuits::CircuitSpec& spec,
                      const core::ExperimentConfig& config,
                      const std::vector<PropertyPtr>& properties,
                      std::size_t replicates,
                      const exec::ParallelRunner& runner,
                      const CheckObserver& observer) {
  if (replicates == 0) {
    throw InvalidArgument("run_check: need at least one replicate");
  }
  if (properties.empty()) {
    throw InvalidArgument("run_check: need at least one property (--property)");
  }
  const std::vector<std::string> names = plane_names(spec);
  for (const PropertyPtr& property : properties) {
    if (!property) throw InvalidArgument("run_check: null property");
    validate_atoms(*property, names);
  }
  // Mirror run_experiment's sink/backend validation up front, before any
  // replicate simulates.
  if (config.sink == store::SinkKind::kDigitize) {
    if (config.backend != core::AnalysisBackend::kPacked) {
      throw InvalidArgument(
          "run_check: sink 'digitize' requires the packed analysis backend "
          "(it produces bit-planes, not a trace)");
    }
    if (spec.input_ids.size() > core::kPackedAutoInputLimit) {
      throw InvalidArgument(
          "run_check: sink 'digitize' supports up to " +
          std::to_string(core::kPackedAutoInputLimit) +
          " inputs (packed-analysis limit); use sink 'mem' or 'spill' for "
          "wider circuits");
    }
  }
  if (config.sink == store::SinkKind::kSpill && config.spill_dir.empty()) {
    throw InvalidArgument(
        "run_check: sink 'spill' requires a spill directory (--spill-dir)");
  }

  CheckResult result;
  result.circuit_name = spec.name;
  result.base_config = config;
  result.replicate_count = replicates;
  result.input_count = spec.input_ids.size();
  result.input_names = spec.input_ids;
  result.output_name = spec.output_id;

  const exec::SeedSequence seeds(config.seed);
  result.replicate_seeds = seeds.first(replicates);

  struct Accumulator {
    util::RunningStats fraction;
    std::size_t violated = 0;
    std::vector<util::RunningStats> combination;
  };
  std::vector<Accumulator> accumulators(properties.size());

  runner.run_reduce<CheckReplicate>(
      replicates,
      [&](std::size_t r) {
        core::ExperimentConfig replicate_config = config;
        replicate_config.seed = result.replicate_seeds[r];
        if (replicate_config.sink == store::SinkKind::kSpill ||
            (replicate_config.sink == store::SinkKind::kDigitize &&
             !replicate_config.spill_dir.empty())) {
          replicate_config.spill_stem =
              core::spill_stem_for(spec, config) + "-r" + std::to_string(r);
        }
        return run_one(spec, replicate_config, names, properties);
      },
      [&](std::size_t r, CheckReplicate&& replicate) {
        if (r == 0) {
          result.sample_count = replicate.sample_count;
          result.first = replicate;
        }
        for (std::size_t i = 0; i < properties.size(); ++i) {
          const PropertyCheck& check = replicate.properties[i];
          Accumulator& accumulator = accumulators[i];
          accumulator.fraction.add(check.fraction());
          if (check.first_violation != kNoViolation) ++accumulator.violated;
          if (accumulator.combination.size() < check.combinations.size()) {
            accumulator.combination.resize(check.combinations.size());
          }
          for (std::size_t c = 0; c < check.combinations.size(); ++c) {
            accumulator.combination[c].add(check.combinations[c].fraction());
          }
        }
        if (observer) observer(r, replicate);
      });

  for (std::size_t i = 0; i < properties.size(); ++i) {
    PropertyCheckStats stats;
    stats.property = to_string(*properties[i]);
    stats.fraction = core::mean_confidence(accumulators[i].fraction);
    stats.violated_replicates = accumulators[i].violated;
    for (const util::RunningStats& comb : accumulators[i].combination) {
      stats.combination_fraction.push_back(core::mean_confidence(comb));
    }
    result.properties.push_back(std::move(stats));
  }
  return result;
}

CheckResult run_check(const circuits::CircuitSpec& spec,
                      const core::ExperimentConfig& config,
                      const std::vector<PropertyPtr>& properties,
                      std::size_t replicates, std::size_t jobs,
                      const CheckObserver& observer) {
  return run_check(spec, config, properties, replicates,
                   exec::ParallelRunner(jobs), observer);
}

std::string render_check_summary(const CheckResult& result,
                                 double min_satisfaction) {
  std::ostringstream out;
  out << "circuit:    " << result.circuit_name << "\n"
      << "replicates: " << result.replicate_count << " (base seed "
      << result.base_config.seed << ", per-replicate streams)\n"
      << "samples:    " << result.sample_count << " per replicate\n"
      << "properties: " << result.properties.size() << "\n";

  const logic::TruthTable labels(result.input_count);
  const double period = result.base_config.sampling_period;
  for (std::size_t i = 0; i < result.properties.size(); ++i) {
    const PropertyCheckStats& stats = result.properties[i];
    const PropertyCheck& first = result.first.properties[i];
    out << "\nproperty:   " << stats.property << "\n";

    util::TextTable table(
        {"comb", "samples", "satisfied", "fraction", "first violation"});
    table.set_align(1, util::TextTable::Align::kRight);
    table.set_align(2, util::TextTable::Align::kRight);
    table.set_align(3, util::TextTable::Align::kRight);
    table.set_align(4, util::TextTable::Align::kRight);
    for (const CombinationCheck& comb : first.combinations) {
      table.add_row({labels.combination_label(comb.combination),
                     std::to_string(comb.samples),
                     std::to_string(comb.satisfied),
                     util::format_double(comb.fraction(), 6),
                     violation_label(comb.first_violation, period)});
    }
    table.add_row({"all", std::to_string(first.samples),
                   std::to_string(first.satisfied),
                   util::format_double(first.fraction(), 6),
                   violation_label(first.first_violation, period)});
    out << table.str();

    if (result.replicate_count > 1) {
      out << "across replicates: fraction "
          << util::format_double(stats.fraction.mean, 6) << " ± "
          << util::format_double(stats.fraction.half_width, 6)
          << " (95% normal CI, stddev "
          << util::format_double(stats.fraction.stddev, 6)
          << "), violations in " << stats.violated_replicates << "/"
          << result.replicate_count << " replicate(s)\n";
    }
  }

  out << "\nverdict:    "
      << (result.satisfied(min_satisfaction) ? "PASS" : "FAIL")
      << " (min satisfaction " << util::format_double(min_satisfaction, 6)
      << ")\n";
  return out.str();
}

}  // namespace glva::props
