#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuits/circuit_spec.h"
#include "core/ensemble.h"
#include "core/experiment.h"
#include "exec/parallel_runner.h"
#include "props/property.h"

/// `glva check` — temporal-property monitoring of simulated circuits.
/// Simulates the usual input-combination sweep (same sinks, seeds, and
/// digitization as `run_experiment`), then evaluates each property's
/// per-sample verdict stream with the packed monitor (or the reference
/// evaluator under --backend reference — results are bit-identical) and
/// reduces it to per-input-combination satisfaction statistics. Replicate
/// ensembles stream through exec::ParallelRunner::run_reduce exactly like
/// core::run_ensemble: O(1) resident memory per replicate, an ordered
/// observer tap for CSV export, and job-count-independent results.
namespace glva::props {

/// Sentinel for "no violation observed".
inline constexpr std::size_t kNoViolation = static_cast<std::size_t>(-1);

/// Verdict of one property restricted to the samples of one input
/// combination (one replicate).
struct CombinationCheck {
  std::size_t combination = 0;
  std::size_t samples = 0;    ///< samples observed under the combination
  std::size_t satisfied = 0;  ///< of those, samples whose verdict is 1
  /// Lowest violating sample index, or kNoViolation.
  std::size_t first_violation = kNoViolation;

  /// Satisfaction fraction; a never-observed combination is vacuously 1.
  [[nodiscard]] double fraction() const noexcept {
    return samples == 0 ? 1.0
                        : static_cast<double>(satisfied) /
                              static_cast<double>(samples);
  }
};

/// Verdict of one property over one replicate's whole trace.
struct PropertyCheck {
  std::string property;  ///< canonical text (props::to_string)
  std::size_t samples = 0;
  std::size_t satisfied = 0;
  std::size_t first_violation = kNoViolation;
  std::vector<CombinationCheck> combinations;  ///< indexed by combination

  [[nodiscard]] double fraction() const noexcept {
    return samples == 0 ? 1.0
                        : static_cast<double>(satisfied) /
                              static_cast<double>(samples);
  }
};

/// One replicate's full check detail.
struct CheckReplicate {
  std::uint64_t seed = 0;
  std::size_t sample_count = 0;
  std::vector<PropertyCheck> properties;  ///< one per requested property
};

/// Cross-replicate statistics for one property.
struct PropertyCheckStats {
  std::string property;  ///< canonical text
  /// Overall satisfaction fraction across replicates (mean/stddev/95% CI).
  core::MeanConfidence fraction;
  /// Replicates with at least one violating sample.
  std::size_t violated_replicates = 0;
  /// Per-combination satisfaction fraction across replicates.
  std::vector<core::MeanConfidence> combination_fraction;
};

/// Everything a check run produces. Replicate 0 is kept in full detail
/// (the single-replicate report); the rest collapse into the statistics.
struct CheckResult {
  std::string circuit_name;
  core::ExperimentConfig base_config;  ///< seed here is the *base* seed
  std::size_t replicate_count = 0;
  std::vector<std::uint64_t> replicate_seeds;

  std::size_t input_count = 0;
  std::vector<std::string> input_names;
  std::string output_name;
  std::size_t sample_count = 0;  ///< samples per replicate

  CheckReplicate first;  ///< replicate 0, full detail
  std::vector<PropertyCheckStats> properties;

  /// True when every property's mean overall satisfaction fraction is at
  /// least `min_satisfaction` — the CLI exit-status predicate.
  [[nodiscard]] bool satisfied(double min_satisfaction) const noexcept {
    for (const PropertyCheckStats& p : properties) {
      if (p.fraction.mean < min_satisfaction) return false;
    }
    return true;
  }
};

/// Tap on the check's ordered commit stream (see core::ReplicateObserver):
/// invoked once per replicate, in replicate order, on the calling thread.
using CheckObserver =
    std::function<void(std::size_t replicate, const CheckReplicate& result)>;

/// Run `replicates` independent simulate→digitize→monitor replicates,
/// seeded from (config.seed, replicate) via exec::SeedSequence. Properties
/// are evaluated with the backend selected by config.backend; both
/// backends produce bit-identical counts. Throws glva::InvalidArgument on
/// zero replicates, an empty property list, a property referencing an
/// unknown plane, or the sink/backend combinations run_experiment rejects.
[[nodiscard]] CheckResult run_check(const circuits::CircuitSpec& spec,
                                    const core::ExperimentConfig& config,
                                    const std::vector<PropertyPtr>& properties,
                                    std::size_t replicates,
                                    const exec::ParallelRunner& runner,
                                    const CheckObserver& observer = {});

/// Convenience overload owning a per-call runner of `jobs` workers.
[[nodiscard]] CheckResult run_check(const circuits::CircuitSpec& spec,
                                    const core::ExperimentConfig& config,
                                    const std::vector<PropertyPtr>& properties,
                                    std::size_t replicates,
                                    std::size_t jobs = 1,
                                    const CheckObserver& observer = {});

/// Deterministic text report: per-property combination table for
/// replicate 0, cross-replicate statistics when replicates > 1, and a
/// PASS/FAIL verdict line against `min_satisfaction`. No wall-clock
/// timings — byte-stable for a fixed seed (the golden test relies on it).
[[nodiscard]] std::string render_check_summary(const CheckResult& result,
                                               double min_satisfaction);

}  // namespace glva::props
