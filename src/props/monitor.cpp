#include "props/monitor.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "logic/simd/kernel_set.h"
#include "util/errors.h"

namespace glva::props {

namespace {

using Words = std::vector<std::uint64_t>;

/// One monitor run: fixed trace length, fixed plane set, every
/// intermediate a Words array of the same word count kept in canonical
/// form (zero bits past n). The word passes that need ones past the end
/// (the truncated-window AND semantics) fill the ragged tail locally and
/// re-mask before returning; past the word array itself the shift
/// kernels' fill convention (or: zeros, and: ones) takes over.
class Monitor {
public:
  Monitor(const PackedNamedPlanes& planes, std::size_t n)
      : planes_(planes),
        n_(n),
        word_count_((n + 63) / 64),
        kernels_(logic::simd::active()) {}

  Words eval(const Property& p) {
    switch (p.kind) {
      case PropertyKind::kAtom: {
        const std::span<const std::uint64_t> w = lookup(p.atom).words();
        return Words(w.begin(), w.end());
      }
      case PropertyKind::kNot: {
        Words v = eval(*p.left);
        for (std::uint64_t& w : v) w = ~w;
        mask_tail(v);
        return v;
      }
      case PropertyKind::kAnd: {
        Words a = eval(*p.left);
        const Words b = eval(*p.right);
        for (std::size_t w = 0; w < word_count_; ++w) a[w] &= b[w];
        return a;
      }
      case PropertyKind::kOr: {
        Words a = eval(*p.left);
        const Words b = eval(*p.right);
        for (std::size_t w = 0; w < word_count_; ++w) a[w] |= b[w];
        return a;
      }
      case PropertyKind::kImplies: {
        Words a = eval(*p.left);
        const Words b = eval(*p.right);
        for (std::size_t w = 0; w < word_count_; ++w) a[w] = ~a[w] | b[w];
        mask_tail(a);
        return a;
      }
      case PropertyKind::kGlobally:
        return suffix_all(eval(*p.left));
      case PropertyKind::kEventually:
        return suffix_any(eval(*p.left));
      case PropertyKind::kGloballyBounded:
        return bounded_and(eval(*p.left), p.bound);
      case PropertyKind::kEventuallyBounded:
        return bounded_or(eval(*p.left), p.bound);
      case PropertyKind::kUntilBounded:
        return until_bounded(eval(*p.left), p.bound, eval(*p.right));
      case PropertyKind::kSettle:
        return settle(eval(*p.left), p.bound);
      case PropertyKind::kNoGlitch:
        return noglitch(eval(*p.left), p.bound);
    }
    throw InvalidArgument("property: unknown node kind");
  }

private:
  const logic::BitStream& lookup(const std::string& atom) const {
    for (std::size_t i = 0; i < planes_.names.size(); ++i) {
      if (planes_.names[i] == atom) return *planes_.planes[i];
    }
    throw InvalidArgument("property: unknown atom '" + atom + "'");
  }

  [[nodiscard]] std::uint64_t tail_mask() const {
    const std::size_t rem = n_ % 64;
    return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
  }

  void mask_tail(Words& v) const {
    if (!v.empty()) v.back() &= tail_mask();
  }

  void fill_tail_ones(Words& v) const {
    if (!v.empty()) v.back() |= ~tail_mask();
  }

  /// G: out[j] = AND over [j, n). Backward word pass — within a word the
  /// suffix-AND mask is the run of leading ones, across words a one-bit
  /// carry ("everything from the next word on holds").
  Words suffix_all(Words v) const {
    if (v.empty()) return v;
    fill_tail_ones(v);
    bool carry = true;
    for (std::size_t w = word_count_; w-- > 0;) {
      std::uint64_t res = 0;
      if (carry) {
        const int t = std::countl_one(v[w]);
        res = t == 0 ? 0 : ~std::uint64_t{0} << (64 - t);
      }
      carry = (res & 1U) != 0;
      v[w] = res;
    }
    mask_tail(v);
    return v;
  }

  /// F: out[j] = OR over [j, n). Same backward pass with OR semantics —
  /// the suffix-OR mask runs up to the highest set bit.
  Words suffix_any(Words v) const {
    bool carry = false;
    for (std::size_t w = word_count_; w-- > 0;) {
      std::uint64_t res;
      if (carry) {
        res = ~std::uint64_t{0};
      } else if (v[w] == 0) {
        res = 0;
      } else {
        res = ~std::uint64_t{0} >> std::countl_zero(v[w]);
        carry = true;
      }
      v[w] = res;
    }
    mask_tail(v);
    return v;
  }

  /// Prefix-AND (forward twin of suffix_all): out[j] = AND over [0, j].
  Words prefix_all(Words v) const {
    bool carry = true;
    for (std::size_t w = 0; w < word_count_; ++w) {
      std::uint64_t res = 0;
      if (carry) {
        const int t = std::countr_one(v[w]);
        res = t == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << t) - 1;
        carry = t == 64;
      } else {
        carry = false;
      }
      v[w] = res;
    }
    mask_tail(v);
    return v;
  }

  /// F[0,k]: doubling OR cascade — after each step out[j] covers a
  /// window of `covered` samples, and ORing in a copy shifted down by
  /// min(covered, remaining) doubles the window until it reaches k+1.
  /// O(W log k) words instead of O(W k). Truncation at the trace end is
  /// free: the shift kernel zero-fills past the array and the canonical
  /// zero tail ORs in nothing.
  Words bounded_or(Words v, std::size_t k) const {
    const std::size_t target = std::min(k, n_) + 1;
    std::size_t covered = 1;
    while (covered < target) {
      const std::size_t shift = std::min(covered, target - covered);
      kernels_.or_shift_down_words(v.data(), word_count_, shift, v.data());
      covered += shift;
    }
    return v;
  }

  /// G[0,k]: the AND cascade. Truncated windows must not fail, so the
  /// ragged tail is one-filled first (the kernel already one-fills past
  /// the array) and re-masked after.
  Words bounded_and(Words v, std::size_t k) const {
    if (v.empty()) return v;
    fill_tail_ones(v);
    const std::size_t target = std::min(k, n_) + 1;
    std::size_t covered = 1;
    while (covered < target) {
      const std::size_t shift = std::min(covered, target - covered);
      kernels_.and_shift_down_words(v.data(), word_count_, shift, v.data());
      covered += shift;
    }
    mask_tail(v);
    return v;
  }

  /// p U[0,k] q: the textbook expansion U_m = q | (p & U_{m-1}>>1),
  /// iterated min(k, n) times with an early exit at the fixpoint (the
  /// iteration count is really bounded by the longest p-run).
  Words until_bounded(const Words& p, std::size_t k, Words q) const {
    const std::size_t iterations = std::min(k, n_);
    Words shifted(word_count_);
    for (std::size_t m = 0; m < iterations; ++m) {
      std::fill(shifted.begin(), shifted.end(), 0);
      kernels_.or_shift_down_words(q.data(), word_count_, 1, shifted.data());
      bool changed = false;
      for (std::size_t w = 0; w < word_count_; ++w) {
        const std::uint64_t next = q[w] | (p[w] & shifted[w]);
        changed = changed || next != q[w];
        q[w] = next;
      }
      if (!changed) break;
    }
    return q;
  }

  /// Constancy plane: eq[j] = (v[j] == v[j+1]), eq[n-1] = 1.
  Words eq_next(const Words& v) const {
    Words shifted(word_count_, 0);
    kernels_.or_shift_down_words(v.data(), word_count_, 1, shifted.data());
    Words eq(word_count_);
    for (std::size_t w = 0; w < word_count_; ++w) eq[w] = ~(v[w] ^ shifted[w]);
    set_bit(eq, n_ - 1);
    mask_tail(eq);
    return eq;
  }

  /// Constancy plane: eq[j] = (v[j] == v[j-1]), eq[0] = 1.
  Words eq_prev(const Words& v) const {
    Words shifted(word_count_, 0);
    kernels_.or_shift_up_words(v.data(), word_count_, 1, shifted.data());
    mask_tail(shifted);
    Words eq(word_count_);
    for (std::size_t w = 0; w < word_count_; ++w) eq[w] = ~(v[w] ^ shifted[w]);
    eq[0] |= 1U;
    mask_tail(eq);
    return eq;
  }

  /// settle[k]: stable[j] = "constant from j on" = suffix_all(eq_next);
  /// out[j] = stable[min(j+k, n-1)], i.e. a plain down-shift by k with
  /// one-fill (stable[n-1] is identically 1, so holding past the end and
  /// holding the last sample agree).
  Words settle(const Words& v, std::size_t k) const {
    if (v.empty()) return {};
    Words stable = suffix_all(eq_next(v));
    fill_tail_ones(stable);
    Words out(word_count_, ~std::uint64_t{0});
    kernels_.and_shift_down_words(stable.data(), word_count_, k, out.data());
    mask_tail(out);
    return out;
  }

  /// noglitch[k]: a sample is good when its maximal constant run is at
  /// least k long or touches a trace boundary. Interior long-enough runs
  /// are the morphological opening (erode-then-dilate by a k-sample
  /// window) of the plane and of its complement; the boundary runs are
  /// the prefix/suffix constancy masks.
  Words noglitch(const Words& v, std::size_t k) const {
    if (v.empty()) return {};
    if (k <= 1) {  // every run has length >= 1
      Words out(word_count_, ~std::uint64_t{0});
      mask_tail(out);
      return out;
    }
    Words inverted(word_count_);
    for (std::size_t w = 0; w < word_count_; ++w) inverted[w] = ~v[w];
    mask_tail(inverted);
    const Words long_ones = opening(v, k);
    const Words long_zeros = opening(inverted, k);
    const Words first_run = prefix_all(eq_prev(v));
    const Words last_run = suffix_all(eq_next(v));
    Words out(word_count_);
    for (std::size_t w = 0; w < word_count_; ++w) {
      out[w] = (v[w] & long_ones[w]) | (inverted[w] & long_zeros[w]) |
               first_run[w] | last_run[w];
    }
    mask_tail(out);
    return out;
  }

  /// Opening with a k-sample window: erode (AND cascade down, window k)
  /// then dilate (OR cascade up, window k). Marks every sample lying in a
  /// run of ones at least k long — plus end-touching runs, which the
  /// erode's one-fill truncation admits; those are boundary-exempt in
  /// noglitch anyway, so the shortcut never changes a verdict.
  Words opening(const Words& v, std::size_t k) const {
    Words e = bounded_and(Words(v), k - 1);
    const std::size_t target = std::min(k - 1, n_) + 1;
    std::size_t covered = 1;
    while (covered < target) {
      const std::size_t shift = std::min(covered, target - covered);
      kernels_.or_shift_up_words(e.data(), word_count_, shift, e.data());
      covered += shift;
    }
    mask_tail(e);
    return e;
  }

  static void set_bit(Words& v, std::size_t bit) {
    v[bit / 64] |= std::uint64_t{1} << (bit % 64);
  }

  const PackedNamedPlanes& planes_;
  std::size_t n_;
  std::size_t word_count_;
  const logic::simd::KernelSet& kernels_;
};

}  // namespace

logic::BitStream evaluate_packed(const Property& property,
                                 const PackedNamedPlanes& planes) {
  if (planes.names.size() != planes.planes.size()) {
    throw InvalidArgument(
        "property: plane name/data count mismatch in packed monitor");
  }
  validate_atoms(property, planes.names);
  const std::size_t n =
      planes.planes.empty() ? 0 : planes.planes.front()->size();
  for (const logic::BitStream* plane : planes.planes) {
    if (plane->size() != n) {
      throw InvalidArgument(
          "property: planes of mismatched length in packed monitor");
    }
  }
  if (n == 0) return logic::BitStream{};
  Monitor monitor(planes, n);
  return logic::BitStream::from_words(n, monitor.eval(property));
}

}  // namespace glva::props
