#include "props/parser.h"

#include <cctype>
#include <cstdint>
#include <string>

#include "util/errors.h"

namespace glva::props {

namespace {

enum class TokenKind : std::uint8_t {
  kEnd,
  kIdent,    // identifier or keyword; text carries the spelling
  kNumber,   // decimal integer; value carries it
  kNot,      // !
  kAnd,      // &
  kOr,       // |
  kImplies,  // ->
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t value = 0;
  std::size_t column = 0;  // 1-based start of the token
};

[[noreturn]] void fail(const std::string& message, std::size_t column) {
  throw ParseError("property: " + message, 1, column);
}

/// What a token looks like in an error message.
std::string describe(const Token& t) {
  switch (t.kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kNumber:
      return "'" + std::to_string(t.value) + "'";
    default:
      return "'" + t.text + "'";
  }
}

class Lexer {
public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.column = pos_ + 1;
    if (pos_ >= text_.size()) return;  // kEnd
    const char c = text_[pos_];
    if (c == '_' || std::isalpha(static_cast<unsigned char>(c))) {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (text_[pos_] == '_' ||
              std::isalnum(static_cast<unsigned char>(text_[pos_])))) {
        ++pos_;
      }
      current_.kind = TokenKind::kIdent;
      current_.text = text_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t value = 0;
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        const std::size_t digit =
            static_cast<std::size_t>(text_[pos_] - '0');
        if (value > (SIZE_MAX - digit) / 10) {
          fail("bound out of range", start + 1);
        }
        value = value * 10 + digit;
        ++pos_;
      }
      current_.kind = TokenKind::kNumber;
      current_.value = value;
      current_.text = text_.substr(start, pos_ - start);
      return;
    }
    switch (c) {
      case '!':
        single(TokenKind::kNot, "!");
        return;
      case '&':
        single(TokenKind::kAnd, "&");
        return;
      case '|':
        single(TokenKind::kOr, "|");
        return;
      case '(':
        single(TokenKind::kLParen, "(");
        return;
      case ')':
        single(TokenKind::kRParen, ")");
        return;
      case '[':
        single(TokenKind::kLBracket, "[");
        return;
      case ']':
        single(TokenKind::kRBracket, "]");
        return;
      case ',':
        single(TokenKind::kComma, ",");
        return;
      case '-':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          current_.kind = TokenKind::kImplies;
          current_.text = "->";
          pos_ += 2;
          return;
        }
        fail("unexpected character '-' (did you mean '->'?)", pos_ + 1);
      default:
        fail(std::string("unexpected character '") + c + "'", pos_ + 1);
    }
  }

  void single(TokenKind kind, const char* text) {
    current_.kind = kind;
    current_.text = text;
    ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  Token current_;
};

class Parser {
public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  PropertyPtr parse() {
    PropertyPtr p = parse_implies();
    const Token& t = lexer_.peek();
    if (t.kind != TokenKind::kEnd) {
      fail("trailing input after property, starting at " + describe(t),
           t.column);
    }
    return p;
  }

private:
  // property := or_expr ('->' property)?   — right-associative.
  PropertyPtr parse_implies() {
    PropertyPtr left = parse_or();
    if (lexer_.peek().kind == TokenKind::kImplies) {
      lexer_.take();
      return make_implies(std::move(left), parse_implies());
    }
    return left;
  }

  PropertyPtr parse_or() {
    PropertyPtr left = parse_and();
    while (lexer_.peek().kind == TokenKind::kOr) {
      lexer_.take();
      left = make_or(std::move(left), parse_and());
    }
    return left;
  }

  PropertyPtr parse_and() {
    PropertyPtr left = parse_until();
    while (lexer_.peek().kind == TokenKind::kAnd) {
      lexer_.take();
      left = make_and(std::move(left), parse_until());
    }
    return left;
  }

  // until := unary ('U' '[0,k]' until)?   — right-associative.
  PropertyPtr parse_until() {
    PropertyPtr left = parse_unary();
    const Token& t = lexer_.peek();
    if (t.kind == TokenKind::kIdent && t.text == "U") {
      const Token op = lexer_.take();
      if (lexer_.peek().kind != TokenKind::kLBracket) {
        fail("'U' requires explicit bounds: p U[0,k] q", op.column);
      }
      const std::size_t k = parse_interval();
      return make_until_bounded(std::move(left), k, parse_until());
    }
    return left;
  }

  PropertyPtr parse_unary() {
    const Token t = lexer_.take();
    switch (t.kind) {
      case TokenKind::kNot:
        return make_not(parse_unary());
      case TokenKind::kLParen: {
        PropertyPtr inner = parse_implies();
        const Token close = lexer_.take();
        if (close.kind != TokenKind::kRParen) {
          fail("expected ')' to close '(', got " + describe(close),
               close.column);
        }
        return inner;
      }
      case TokenKind::kIdent:
        if (t.text == "G" || t.text == "F") {
          const bool globally = t.text == "G";
          if (lexer_.peek().kind == TokenKind::kLBracket) {
            const std::size_t k = parse_interval();
            return globally ? make_globally_bounded(k, parse_unary())
                            : make_eventually_bounded(k, parse_unary());
          }
          return globally ? make_globally(parse_unary())
                          : make_eventually(parse_unary());
        }
        if (t.text == "settle" || t.text == "noglitch") {
          const std::size_t k = parse_single_bound(t);
          return t.text == "settle" ? make_settle(k, parse_unary())
                                    : make_noglitch(k, parse_unary());
        }
        if (t.text == "U") {
          fail("'U' is an infix operator and cannot begin a property",
               t.column);
        }
        return make_atom(t.text);
      default:
        fail("expected an atom, a prefix operator, or '(', got " +
                 describe(t),
             t.column);
    }
  }

  /// Parses '[lo,hi]' after G/F/U, enforcing lo == 0, and returns hi.
  std::size_t parse_interval() {
    const Token open = lexer_.take();  // already peeked as '['
    const Token lo = lexer_.take();
    if (lo.kind != TokenKind::kNumber) {
      fail("expected a number as the interval lower bound, got " +
               describe(lo),
           lo.column);
    }
    const Token comma = lexer_.take();
    if (comma.kind != TokenKind::kComma) {
      fail("expected ',' between interval bounds, got " + describe(comma),
           comma.column);
    }
    const Token hi = lexer_.take();
    if (hi.kind != TokenKind::kNumber) {
      fail("expected a number as the interval upper bound, got " +
               describe(hi),
           hi.column);
    }
    const Token close = lexer_.take();
    if (close.kind != TokenKind::kRBracket) {
      fail("unbalanced bounds: expected ']', got " + describe(close),
           close.column);
    }
    if (hi.value < lo.value) {
      fail("empty interval [" + std::to_string(lo.value) + "," +
               std::to_string(hi.value) + "]",
           open.column);
    }
    if (lo.value != 0) {
      fail("only [0,k] intervals are supported (lower bound must be 0)",
           lo.column);
    }
    return hi.value;
  }

  /// Parses '[k]' after settle/noglitch and returns k.
  std::size_t parse_single_bound(const Token& op) {
    const Token open = lexer_.take();
    if (open.kind != TokenKind::kLBracket) {
      fail("'" + op.text + "' requires a bound: " + op.text + "[k]",
           op.column);
    }
    const Token k = lexer_.take();
    if (k.kind != TokenKind::kNumber) {
      fail("expected a number as the '" + op.text + "' bound, got " +
               describe(k),
           k.column);
    }
    const Token close = lexer_.take();
    if (close.kind != TokenKind::kRBracket) {
      fail("unbalanced bounds: expected ']', got " + describe(close),
           close.column);
    }
    return k.value;
  }

  Lexer lexer_;
};

}  // namespace

PropertyPtr parse_property(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace glva::props
