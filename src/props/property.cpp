#include "props/property.h"

#include <algorithm>
#include <utility>

#include "util/errors.h"
#include "util/string_util.h"

namespace glva::props {

namespace {

PropertyPtr node(PropertyKind kind, std::string atom, std::size_t bound,
                 PropertyPtr left, PropertyPtr right) {
  auto p = std::make_shared<Property>();
  p->kind = kind;
  p->atom = std::move(atom);
  p->bound = bound;
  p->left = std::move(left);
  p->right = std::move(right);
  return p;
}

/// Binding strength, tightest first: atoms and the prefix operators
/// (!, G, F, settle, noglitch) bind tighter than U[0,k], which binds
/// tighter than &, then |, then ->. The parser and the printer share
/// these levels, which is what makes the round-trip exact.
enum Precedence : int {
  kPrecImplies = 1,
  kPrecOr = 2,
  kPrecAnd = 3,
  kPrecUntil = 4,
  kPrecUnary = 5,
};

int precedence(PropertyKind kind) {
  switch (kind) {
    case PropertyKind::kImplies:
      return kPrecImplies;
    case PropertyKind::kOr:
      return kPrecOr;
    case PropertyKind::kAnd:
      return kPrecAnd;
    case PropertyKind::kUntilBounded:
      return kPrecUntil;
    default:
      return kPrecUnary;
  }
}

void print(const Property& p, int min_precedence, std::string& out) {
  const int prec = precedence(p.kind);
  const bool parens = prec < min_precedence;
  if (parens) out += '(';
  switch (p.kind) {
    case PropertyKind::kAtom:
      out += p.atom;
      break;
    case PropertyKind::kNot:
      out += '!';
      print(*p.left, kPrecUnary, out);
      break;
    case PropertyKind::kGlobally:
      out += "G ";
      print(*p.left, kPrecUnary, out);
      break;
    case PropertyKind::kEventually:
      out += "F ";
      print(*p.left, kPrecUnary, out);
      break;
    case PropertyKind::kGloballyBounded:
      out += "G[0," + std::to_string(p.bound) + "] ";
      print(*p.left, kPrecUnary, out);
      break;
    case PropertyKind::kEventuallyBounded:
      out += "F[0," + std::to_string(p.bound) + "] ";
      print(*p.left, kPrecUnary, out);
      break;
    case PropertyKind::kSettle:
      out += "settle[" + std::to_string(p.bound) + "] ";
      print(*p.left, kPrecUnary, out);
      break;
    case PropertyKind::kNoGlitch:
      out += "noglitch[" + std::to_string(p.bound) + "] ";
      print(*p.left, kPrecUnary, out);
      break;
    case PropertyKind::kUntilBounded:
      // Right-associative: the rhs may be another until at this level,
      // the lhs only a unary-level item (a nested until needs parens).
      print(*p.left, kPrecUnary, out);
      out += " U[0," + std::to_string(p.bound) + "] ";
      print(*p.right, kPrecUntil, out);
      break;
    case PropertyKind::kAnd:
      print(*p.left, kPrecAnd, out);
      out += " & ";
      print(*p.right, kPrecAnd + 1, out);
      break;
    case PropertyKind::kOr:
      print(*p.left, kPrecOr, out);
      out += " | ";
      print(*p.right, kPrecOr + 1, out);
      break;
    case PropertyKind::kImplies:
      print(*p.left, kPrecImplies + 1, out);
      out += " -> ";
      print(*p.right, kPrecImplies, out);
      break;
  }
  if (parens) out += ')';
}

void collect(const Property& p, std::vector<std::string>& atoms) {
  if (p.kind == PropertyKind::kAtom) {
    if (std::find(atoms.begin(), atoms.end(), p.atom) == atoms.end()) {
      atoms.push_back(p.atom);
    }
    return;
  }
  if (p.left) collect(*p.left, atoms);
  if (p.right) collect(*p.right, atoms);
}

}  // namespace

PropertyPtr make_atom(std::string name) {
  return node(PropertyKind::kAtom, std::move(name), 0, nullptr, nullptr);
}
PropertyPtr make_not(PropertyPtr p) {
  return node(PropertyKind::kNot, {}, 0, std::move(p), nullptr);
}
PropertyPtr make_and(PropertyPtr a, PropertyPtr b) {
  return node(PropertyKind::kAnd, {}, 0, std::move(a), std::move(b));
}
PropertyPtr make_or(PropertyPtr a, PropertyPtr b) {
  return node(PropertyKind::kOr, {}, 0, std::move(a), std::move(b));
}
PropertyPtr make_implies(PropertyPtr a, PropertyPtr b) {
  return node(PropertyKind::kImplies, {}, 0, std::move(a), std::move(b));
}
PropertyPtr make_globally(PropertyPtr p) {
  return node(PropertyKind::kGlobally, {}, 0, std::move(p), nullptr);
}
PropertyPtr make_eventually(PropertyPtr p) {
  return node(PropertyKind::kEventually, {}, 0, std::move(p), nullptr);
}
PropertyPtr make_globally_bounded(std::size_t k, PropertyPtr p) {
  return node(PropertyKind::kGloballyBounded, {}, k, std::move(p), nullptr);
}
PropertyPtr make_eventually_bounded(std::size_t k, PropertyPtr p) {
  return node(PropertyKind::kEventuallyBounded, {}, k, std::move(p), nullptr);
}
PropertyPtr make_until_bounded(PropertyPtr a, std::size_t k, PropertyPtr b) {
  return node(PropertyKind::kUntilBounded, {}, k, std::move(a), std::move(b));
}
PropertyPtr make_settle(std::size_t k, PropertyPtr p) {
  return node(PropertyKind::kSettle, {}, k, std::move(p), nullptr);
}
PropertyPtr make_noglitch(std::size_t k, PropertyPtr p) {
  return node(PropertyKind::kNoGlitch, {}, k, std::move(p), nullptr);
}

std::string to_string(const Property& property) {
  std::string out;
  print(property, 0, out);
  return out;
}

std::vector<std::string> collect_atoms(const Property& property) {
  std::vector<std::string> atoms;
  collect(property, atoms);
  return atoms;
}

void validate_atoms(const Property& property,
                    const std::vector<std::string>& plane_names) {
  for (const std::string& atom : collect_atoms(property)) {
    if (std::find(plane_names.begin(), plane_names.end(), atom) ==
        plane_names.end()) {
      throw InvalidArgument("property: unknown atom '" + atom +
                            "' (available planes: " +
                            util::join(plane_names, ", ") + ")");
    }
  }
}

}  // namespace glva::props
