#include "props/reference.h"

#include <algorithm>

#include "util/errors.h"

namespace glva::props {

namespace {

const std::vector<bool>& lookup(const NamedPlanes& planes,
                                const std::string& atom) {
  for (std::size_t i = 0; i < planes.names.size(); ++i) {
    if (planes.names[i] == atom) return planes.planes[i];
  }
  throw InvalidArgument("property: unknown atom '" + atom + "'");
}

std::vector<bool> eval(const Property& p, const NamedPlanes& planes,
                       std::size_t n) {
  switch (p.kind) {
    case PropertyKind::kAtom:
      return lookup(planes, p.atom);
    case PropertyKind::kNot: {
      std::vector<bool> v = eval(*p.left, planes, n);
      v.flip();
      return v;
    }
    case PropertyKind::kAnd: {
      std::vector<bool> a = eval(*p.left, planes, n);
      const std::vector<bool> b = eval(*p.right, planes, n);
      for (std::size_t j = 0; j < n; ++j) a[j] = a[j] && b[j];
      return a;
    }
    case PropertyKind::kOr: {
      std::vector<bool> a = eval(*p.left, planes, n);
      const std::vector<bool> b = eval(*p.right, planes, n);
      for (std::size_t j = 0; j < n; ++j) a[j] = a[j] || b[j];
      return a;
    }
    case PropertyKind::kImplies: {
      std::vector<bool> a = eval(*p.left, planes, n);
      const std::vector<bool> b = eval(*p.right, planes, n);
      for (std::size_t j = 0; j < n; ++j) a[j] = !a[j] || b[j];
      return a;
    }
    case PropertyKind::kGlobally: {
      // out[j] = p holds at every i >= j: backward AND scan.
      std::vector<bool> v = eval(*p.left, planes, n);
      for (std::size_t j = n; j-- > 1;) {
        if (!v[j]) v[j - 1] = false;
      }
      return v;
    }
    case PropertyKind::kEventually: {
      std::vector<bool> v = eval(*p.left, planes, n);
      for (std::size_t j = n; j-- > 1;) {
        if (v[j]) v[j - 1] = true;
      }
      return v;
    }
    case PropertyKind::kGloballyBounded: {
      // out[j] = AND over the truncated window [j, min(j+k, n-1)].
      const std::vector<bool> v = eval(*p.left, planes, n);
      std::vector<bool> out(n);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t end = std::min(j + p.bound, n - 1);
        bool all = true;
        for (std::size_t i = j; i <= end; ++i) {
          if (!v[i]) {
            all = false;
            break;
          }
        }
        out[j] = all;
      }
      return out;
    }
    case PropertyKind::kEventuallyBounded: {
      const std::vector<bool> v = eval(*p.left, planes, n);
      std::vector<bool> out(n);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t end = std::min(j + p.bound, n - 1);
        bool any = false;
        for (std::size_t i = j; i <= end; ++i) {
          if (v[i]) {
            any = true;
            break;
          }
        }
        out[j] = any;
      }
      return out;
    }
    case PropertyKind::kUntilBounded: {
      // out[j] = exists i in the window with q[i] and p on [j, i).
      const std::vector<bool> a = eval(*p.left, planes, n);
      const std::vector<bool> b = eval(*p.right, planes, n);
      std::vector<bool> out(n);
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t end = std::min(j + p.bound, n - 1);
        bool holds = false;
        for (std::size_t i = j; i <= end; ++i) {
          if (b[i]) {
            holds = true;
            break;
          }
          if (!a[i]) break;
        }
        out[j] = holds;
      }
      return out;
    }
    case PropertyKind::kSettle: {
      // stable[j] = the operand is constant on [j, n-1]; settle[k] samples
      // it at the (truncated) window end: out[j] = stable[min(j+k, n-1)].
      const std::vector<bool> v = eval(*p.left, planes, n);
      std::vector<bool> stable(n);
      stable[n - 1] = true;
      for (std::size_t j = n - 1; j-- > 0;) {
        stable[j] = stable[j + 1] && v[j] == v[j + 1];
      }
      std::vector<bool> out(n);
      for (std::size_t j = 0; j < n; ++j) {
        out[j] = stable[std::min(j + p.bound, n - 1)];
      }
      return out;
    }
    case PropertyKind::kNoGlitch: {
      // Split the operand into maximal constant runs [a, b]; a run is a
      // glitch when it is shorter than k samples AND interior (does not
      // touch either trace boundary). out is constant over each run.
      const std::vector<bool> v = eval(*p.left, planes, n);
      std::vector<bool> out(n);
      std::size_t a = 0;
      while (a < n) {
        std::size_t b = a;
        while (b + 1 < n && v[b + 1] == v[a]) ++b;
        const bool ok = (b - a + 1 >= p.bound) || a == 0 || b == n - 1;
        for (std::size_t i = a; i <= b; ++i) out[i] = ok;
        a = b + 1;
      }
      return out;
    }
  }
  throw InvalidArgument("property: unknown node kind");
}

}  // namespace

std::vector<bool> evaluate_reference(const Property& property,
                                     const NamedPlanes& planes) {
  if (planes.names.size() != planes.planes.size()) {
    throw InvalidArgument(
        "property: plane name/data count mismatch in reference evaluator");
  }
  validate_atoms(property, planes.names);
  const std::size_t n =
      planes.planes.empty() ? 0 : planes.planes.front().size();
  for (const std::vector<bool>& plane : planes.planes) {
    if (plane.size() != n) {
      throw InvalidArgument(
          "property: planes of mismatched length in reference evaluator");
    }
  }
  if (n == 0) return {};
  return eval(property, planes, n);
}

}  // namespace glva::props
