#include "sbol/design.h"

#include <set>

#include "util/errors.h"

namespace glva::sbol {

const char* part_type_name(PartType type) noexcept {
  switch (type) {
    case PartType::kPromoter: return "promoter";
    case PartType::kRbs: return "rbs";
    case PartType::kCds: return "cds";
    case PartType::kTerminator: return "terminator";
    case PartType::kProtein: return "protein";
    case PartType::kSmallMolecule: return "small-molecule";
  }
  return "?";
}

PartType parse_part_type(const std::string& name) {
  for (const PartType type :
       {PartType::kPromoter, PartType::kRbs, PartType::kCds,
        PartType::kTerminator, PartType::kProtein, PartType::kSmallMolecule}) {
    if (name == part_type_name(type)) return type;
  }
  throw ParseError("SBOL: unknown part type '" + name + "'");
}

const Part* Design::find_part(const std::string& part_id) const noexcept {
  for (const auto& part : parts) {
    if (part.id == part_id) return &part;
  }
  return nullptr;
}

const TranscriptionUnit* Design::find_unit(
    const std::string& unit_id) const noexcept {
  for (const auto& unit : units) {
    if (unit.id == unit_id) return &unit;
  }
  return nullptr;
}

std::vector<std::string> Design::unit_promoters(
    const TranscriptionUnit& unit) const {
  std::vector<std::string> promoters;
  for (const auto& part_id : unit.dna_parts) {
    const Part* part = find_part(part_id);
    if (part != nullptr && part->type == PartType::kPromoter) {
      promoters.push_back(part_id);
    }
  }
  return promoters;
}

std::vector<std::string> Design::promoter_repressors(
    const std::string& promoter_id) const {
  std::vector<std::string> repressors;
  for (const auto& interaction : interactions) {
    if (interaction.kind == InteractionKind::kRepression &&
        interaction.object == promoter_id) {
      repressors.push_back(interaction.subject);
    }
  }
  return repressors;
}

void Design::check() const {
  const auto fail = [&](const std::string& message) {
    throw ValidationError("SBOL design '" + id + "': " + message);
  };

  std::set<std::string> ids;
  for (const auto& part : parts) {
    if (part.id.empty()) fail("part with empty id");
    if (!ids.insert(part.id).second) fail("duplicate part id '" + part.id + "'");
  }

  std::set<std::string> unit_ids;
  for (const auto& unit : units) {
    if (!unit_ids.insert(unit.id).second) {
      fail("duplicate transcription unit '" + unit.id + "'");
    }
    // Cassette shape: one or more promoters, then RBS, CDS, terminator.
    std::size_t promoter_count = 0;
    std::vector<PartType> tail;
    for (const auto& part_id : unit.dna_parts) {
      const Part* part = find_part(part_id);
      if (part == nullptr) {
        fail("unit '" + unit.id + "' references unknown part '" + part_id + "'");
      }
      if (part->type == PartType::kPromoter && tail.empty()) {
        ++promoter_count;
      } else {
        tail.push_back(part->type);
      }
    }
    if (promoter_count == 0) {
      fail("unit '" + unit.id + "' has no promoter");
    }
    const std::vector<PartType> expected_tail{PartType::kRbs, PartType::kCds,
                                              PartType::kTerminator};
    if (tail != expected_tail) {
      fail("unit '" + unit.id +
           "' must be promoter+, rbs, cds, terminator in order");
    }
    const Part* product = find_part(unit.product);
    if (product == nullptr || product->type != PartType::kProtein) {
      fail("unit '" + unit.id + "' product must be a declared protein part");
    }
  }

  for (const auto& interaction : interactions) {
    const Part* subject = find_part(interaction.subject);
    const Part* object = find_part(interaction.object);
    switch (interaction.kind) {
      case InteractionKind::kRepression:
        if (subject == nullptr || (subject->type != PartType::kProtein &&
                                   subject->type != PartType::kSmallMolecule)) {
          fail("repression '" + interaction.id +
               "' subject must be a protein or small molecule");
        }
        if (object == nullptr || object->type != PartType::kPromoter) {
          fail("repression '" + interaction.id +
               "' object must be a promoter");
        }
        break;
      case InteractionKind::kGeneticProduction:
        if (find_unit(interaction.subject) == nullptr) {
          fail("production '" + interaction.id +
               "' subject must be a transcription unit");
        }
        if (object == nullptr || object->type != PartType::kProtein) {
          fail("production '" + interaction.id +
               "' object must be a protein");
        }
        break;
    }
  }

  for (const auto& input : inputs) {
    const Part* part = find_part(input);
    if (part == nullptr || part->type != PartType::kSmallMolecule) {
      fail("input '" + input + "' must be a declared small-molecule part");
    }
  }
  if (output.empty() || find_part(output) == nullptr ||
      find_part(output)->type != PartType::kProtein) {
    fail("output must be a declared protein part");
  }
}

}  // namespace glva::sbol
