#pragma once

#include <string>
#include <string_view>

#include "sbol/design.h"

namespace glva::sbol {

/// Serialize a design as an SBOL-lite XML document:
///
/// ```xml
/// <sbolLite id="...">
///   <part id="pPhlF" type="promoter"/>
///   <transcriptionUnit id="u_PhlF" product="PhlF">
///     <dnaPart ref="pSrpR"/>...
///   </transcriptionUnit>
///   <interaction id="i1" kind="repression" subject="SrpR" object="pPhlF"/>
///   <io inputs="A,B" output="GFP"/>
/// </sbolLite>
/// ```
[[nodiscard]] std::string write_design(const Design& design);

/// Parse an SBOL-lite document. Throws glva::ParseError on malformed input;
/// run Design::check() afterwards for semantic validation.
[[nodiscard]] Design read_design(std::string_view document_text);

/// File variants; throw glva::Error on I/O failure.
void write_design_file(const Design& design, const std::string& path);
[[nodiscard]] Design read_design_file(const std::string& path);

}  // namespace glva::sbol
