#pragma once

#include "gates/gate_library.h"
#include "gates/netlist.h"
#include "gates/netlist_to_sbml.h"
#include "sbml/model.h"
#include "sbol/design.h"

/// Structural ↔ behavioural conversion: GLVA's reimplementation of the
/// SBOL→SBML step the paper performs with the Roehner et al. converter
/// [14] ("Unlike SBML, the SBOL representation does not describe the
/// behavior of a biological model"). A Cello-style netlist can be emitted
/// as structure (design_from_netlist), exchanged as SBOL-lite XML, and
/// turned back into a simulatable SBML model (design_to_model).
namespace glva::sbol {

/// Emit the structural design of a gate netlist: one transcription unit
/// per gate (promoters named after their repressing species and shared
/// across units, one RBS/CDS/terminator each), repression and
/// genetic-production interactions, small-molecule inputs, and the
/// reporter protein as output.
[[nodiscard]] Design design_from_netlist(const gates::Netlist& netlist,
                                         const std::string& design_id,
                                         const std::string& reporter_id = "GFP");

/// Reconstruct the gate netlist from a structural design: each
/// transcription unit becomes a NOT/NOR gate whose fan-ins are the
/// repressors of its promoters; units are ordered topologically. Throws
/// glva::ValidationError for designs that are not a NOT/NOR combinational
/// circuit (cycles, >2 fan-ins, missing reporter).
[[nodiscard]] gates::Netlist netlist_from_design(const Design& design);

/// The full conversion: structure → behaviour. Response parameters come
/// from `library`, looked up by each unit's `gate` name (falling back to
/// its product protein name).
[[nodiscard]] sbml::Model design_to_model(
    const Design& design, const gates::GateLibrary& library,
    const gates::ModelOptions& options = {});

}  // namespace glva::sbol
