#include "sbol/sbol_io.h"

#include <fstream>
#include <sstream>

#include "util/errors.h"
#include "util/string_util.h"
#include "xml/xml_node.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace glva::sbol {

namespace {

const char* interaction_kind_name(InteractionKind kind) {
  return kind == InteractionKind::kRepression ? "repression"
                                              : "genetic-production";
}

InteractionKind parse_interaction_kind(const std::string& name) {
  if (name == "repression") return InteractionKind::kRepression;
  if (name == "genetic-production") return InteractionKind::kGeneticProduction;
  throw ParseError("SBOL: unknown interaction kind '" + name + "'");
}

}  // namespace

std::string write_design(const Design& design) {
  auto root = xml::XmlNode::element("sbolLite");
  root->set_attribute("id", design.id);
  if (!design.description.empty()) {
    root->set_attribute("description", design.description);
  }

  for (const auto& part : design.parts) {
    auto& node = root->add_element("part");
    node.set_attribute("id", part.id);
    node.set_attribute("type", part_type_name(part.type));
    if (!part.description.empty()) {
      node.set_attribute("description", part.description);
    }
  }
  for (const auto& unit : design.units) {
    auto& node = root->add_element("transcriptionUnit");
    node.set_attribute("id", unit.id);
    node.set_attribute("product", unit.product);
    if (!unit.gate.empty()) node.set_attribute("gate", unit.gate);
    for (const auto& part_id : unit.dna_parts) {
      node.add_element("dnaPart").set_attribute("ref", part_id);
    }
  }
  for (const auto& interaction : design.interactions) {
    auto& node = root->add_element("interaction");
    node.set_attribute("id", interaction.id);
    node.set_attribute("kind", interaction_kind_name(interaction.kind));
    node.set_attribute("subject", interaction.subject);
    node.set_attribute("object", interaction.object);
  }
  auto& io = root->add_element("io");
  io.set_attribute("inputs", util::join(design.inputs, ","));
  io.set_attribute("output", design.output);

  return xml::write_document(*root);
}

Design read_design(std::string_view document_text) {
  const xml::XmlNodePtr root = xml::parse_document(document_text);
  if (root->name() != "sbolLite") {
    throw ParseError("SBOL: document root is <" + root->name() +
                     ">, expected <sbolLite>");
  }
  Design design;
  design.id = root->attribute("id").value_or("");
  design.description = root->attribute("description").value_or("");

  for (const auto* node : root->find_children("part")) {
    Part part;
    part.id = node->required_attribute("id");
    part.type = parse_part_type(node->required_attribute("type"));
    part.description = node->attribute("description").value_or("");
    design.parts.push_back(std::move(part));
  }
  for (const auto* node : root->find_children("transcriptionUnit")) {
    TranscriptionUnit unit;
    unit.id = node->required_attribute("id");
    unit.product = node->required_attribute("product");
    unit.gate = node->attribute("gate").value_or("");
    for (const auto* ref : node->find_children("dnaPart")) {
      unit.dna_parts.push_back(ref->required_attribute("ref"));
    }
    design.units.push_back(std::move(unit));
  }
  for (const auto* node : root->find_children("interaction")) {
    Interaction interaction;
    interaction.id = node->required_attribute("id");
    interaction.kind = parse_interaction_kind(node->required_attribute("kind"));
    interaction.subject = node->required_attribute("subject");
    interaction.object = node->required_attribute("object");
    design.interactions.push_back(std::move(interaction));
  }
  if (const auto* io = root->find_child("io")) {
    for (const auto& field :
         util::split(io->attribute("inputs").value_or(""), ',')) {
      const auto trimmed = util::trim(field);
      if (!trimmed.empty()) design.inputs.emplace_back(trimmed);
    }
    design.output = io->attribute("output").value_or("");
  }
  return design;
}

void write_design_file(const Design& design, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open SBOL output file: " + path);
  f << write_design(design);
  if (!f) throw Error("failed writing SBOL output file: " + path);
}

Design read_design_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open SBOL file: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return read_design(buffer.str());
}

}  // namespace glva::sbol
