#include "sbol/converter.h"

#include <map>
#include <set>

#include "util/errors.h"

namespace glva::sbol {

namespace {

/// The species carried by a netlist net (input name, repressor name, or
/// the reporter for the output gate).
std::string net_species(const gates::Netlist& netlist,
                        const std::string& reporter_id, gates::Net net) {
  if (net.kind == gates::Net::Kind::kInput) {
    return netlist.input_names()[net.index];
  }
  if (net.index == netlist.output().index) return reporter_id;
  return netlist.gates()[net.index].repressor;
}

}  // namespace

Design design_from_netlist(const gates::Netlist& netlist,
                           const std::string& design_id,
                           const std::string& reporter_id) {
  netlist.check();

  Design design;
  design.id = design_id;
  design.description = "structural design generated from a gate netlist";

  std::set<std::string> declared;
  const auto declare = [&](const std::string& id, PartType type,
                           const std::string& description = "") {
    if (declared.insert(id).second) {
      design.parts.push_back(Part{id, type, description});
    }
  };

  for (const auto& input : netlist.input_names()) {
    declare(input, PartType::kSmallMolecule, "circuit input signal");
    design.inputs.push_back(input);
  }

  std::set<std::pair<std::string, std::string>> repressions;
  for (std::size_t g = 0; g < netlist.gate_count(); ++g) {
    const gates::GateInstance& gate = netlist.gates()[g];
    const std::string protein =
        net_species(netlist, reporter_id, gates::Net::gate(g));
    declare(protein, PartType::kProtein,
            protein == reporter_id ? "reporter protein" : "repressor protein");

    TranscriptionUnit unit;
    unit.id = "tu_" + protein;
    unit.product = protein;
    unit.gate = gate.repressor;

    for (const gates::Net& fanin : gate.fanin) {
      const std::string signal = net_species(netlist, reporter_id, fanin);
      const std::string promoter = "p" + signal;
      declare(promoter, PartType::kPromoter,
              "promoter repressed by " + signal);
      unit.dna_parts.push_back(promoter);
      if (repressions.insert({signal, promoter}).second) {
        design.interactions.push_back(Interaction{
            "rep_" + signal + "_" + promoter, InteractionKind::kRepression,
            signal, promoter});
      }
    }
    const std::string rbs = "rbs_" + protein;
    const std::string cds = "cds_" + protein;
    const std::string terminator = "ter_" + protein;
    declare(rbs, PartType::kRbs);
    declare(cds, PartType::kCds);
    declare(terminator, PartType::kTerminator);
    unit.dna_parts.push_back(rbs);
    unit.dna_parts.push_back(cds);
    unit.dna_parts.push_back(terminator);

    design.interactions.push_back(
        Interaction{"prod_" + protein, InteractionKind::kGeneticProduction,
                    unit.id, protein});
    design.units.push_back(std::move(unit));
  }

  design.output = reporter_id;
  design.check();
  return design;
}

gates::Netlist netlist_from_design(const Design& design) {
  design.check();
  if (design.inputs.empty()) {
    throw ValidationError("SBOL design '" + design.id + "' declares no inputs");
  }

  gates::Netlist netlist(design.inputs);

  // Signal name -> net, seeded with the primary inputs.
  std::map<std::string, gates::Net> net_of;
  for (std::size_t i = 0; i < design.inputs.size(); ++i) {
    net_of[design.inputs[i]] = gates::Net::input(i);
  }

  // Fan-in signals per unit.
  std::map<std::string, std::vector<std::string>> fanins_of;
  for (const auto& unit : design.units) {
    std::vector<std::string> fanins;
    for (const auto& promoter : design.unit_promoters(unit)) {
      for (const auto& repressor : design.promoter_repressors(promoter)) {
        fanins.push_back(repressor);
      }
    }
    if (fanins.empty() || fanins.size() > 2) {
      throw ValidationError("SBOL design '" + design.id + "': unit '" +
                            unit.id + "' has " +
                            std::to_string(fanins.size()) +
                            " fan-ins; NOT/NOR gates need 1 or 2");
    }
    fanins_of[unit.id] = std::move(fanins);
  }

  // Kahn-style scheduling: emit a unit once all its fan-in signals exist.
  std::set<std::string> pending;
  for (const auto& unit : design.units) pending.insert(unit.id);
  while (!pending.empty()) {
    bool progress = false;
    for (const auto& unit : design.units) {
      if (pending.count(unit.id) == 0) continue;
      const auto& fanins = fanins_of[unit.id];
      bool ready = true;
      for (const auto& signal : fanins) {
        ready = ready && net_of.count(signal) != 0;
      }
      if (!ready) continue;

      const std::string repressor =
          unit.gate.empty() ? unit.product : unit.gate;
      gates::Net net = fanins.size() == 1
                           ? netlist.add_not(repressor, net_of.at(fanins[0]))
                           : netlist.add_nor(repressor, net_of.at(fanins[0]),
                                             net_of.at(fanins[1]));
      net_of[unit.product] = net;
      pending.erase(unit.id);
      progress = true;
    }
    if (!progress) {
      throw ValidationError(
          "SBOL design '" + design.id +
          "' is not a combinational circuit (feedback cycle or a repressor "
          "with no producing unit)");
    }
  }

  const auto output_net = net_of.find(design.output);
  if (output_net == net_of.end()) {
    throw ValidationError("SBOL design '" + design.id + "': output '" +
                          design.output + "' is not produced by any unit");
  }
  netlist.set_output(output_net->second);
  netlist.check();
  return netlist;
}

sbml::Model design_to_model(const Design& design,
                            const gates::GateLibrary& library,
                            const gates::ModelOptions& options) {
  return gates::netlist_to_model(netlist_from_design(design), library, options);
}

}  // namespace glva::sbol
