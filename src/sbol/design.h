#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

/// A structural circuit description after the Synthetic Biology Open
/// Language (SBOL 2) [Bartley et al. 2015] — the format Cello emits and
/// the paper converts to SBML via Roehner et al. [14]. GLVA's "SBOL-lite"
/// keeps the concepts the conversion actually needs: typed genetic parts
/// (component definitions), transcription units (ordered sub-components),
/// and molecular interactions (repression / genetic production), and drops
/// RDF machinery.
namespace glva::sbol {

/// Sequence-ontology-style part roles.
enum class PartType {
  kPromoter,
  kRbs,
  kCds,
  kTerminator,
  kProtein,   // a functional (non-DNA) component: the expressed repressor
  kSmallMolecule,  // an external inducer signal (circuit input)
};

[[nodiscard]] const char* part_type_name(PartType type) noexcept;
/// Inverse of part_type_name; throws glva::ParseError for unknown names.
[[nodiscard]] PartType parse_part_type(const std::string& name);

/// A component definition.
struct Part {
  std::string id;
  PartType type = PartType::kCds;
  std::string description;
};

/// One transcription unit: an ordered cassette of DNA parts
/// (promoters..., RBS, CDS, terminator) expressing one protein.
struct TranscriptionUnit {
  std::string id;
  std::vector<std::string> dna_parts;  ///< part ids, 5'→3' order
  std::string product;                 ///< protein part id it expresses
  /// Gate-library repressor implementing this unit (Cello gate name); used
  /// by the SBML converter to look up response parameters. May be empty
  /// for hand-written designs, in which case `product` is tried.
  std::string gate;
};

/// Interaction kinds the converter understands.
enum class InteractionKind {
  kRepression,        ///< protein/small molecule represses a promoter
  kGeneticProduction, ///< transcription unit produces its protein
};

/// A molecular interaction between named parts.
struct Interaction {
  std::string id;
  InteractionKind kind = InteractionKind::kRepression;
  std::string subject;  ///< the acting species (repressor) or TU id
  std::string object;   ///< the promoter acted on, or the protein produced
};

/// A module definition: the whole circuit design.
class Design {
public:
  std::string id;
  std::string description;
  std::vector<Part> parts;
  std::vector<TranscriptionUnit> units;
  std::vector<Interaction> interactions;
  std::vector<std::string> inputs;   ///< part ids of input signals, MSB first
  std::string output;                ///< part id of the reporter protein

  [[nodiscard]] const Part* find_part(const std::string& part_id) const noexcept;
  [[nodiscard]] const TranscriptionUnit* find_unit(
      const std::string& unit_id) const noexcept;

  /// Promoters of `unit` (its repression targets), in cassette order.
  [[nodiscard]] std::vector<std::string> unit_promoters(
      const TranscriptionUnit& unit) const;

  /// Repressors acting on a given promoter part.
  [[nodiscard]] std::vector<std::string> promoter_repressors(
      const std::string& promoter_id) const;

  /// Structural sanity: unique part ids; units reference declared DNA parts
  /// in promoter*,RBS,CDS,terminator order; products and interaction
  /// endpoints resolve; inputs/output declared; every unit has at least one
  /// promoter. Throws glva::ValidationError on violations.
  void check() const;
};

}  // namespace glva::sbol
