#include "timing/threshold_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/errors.h"
#include "util/stats.h"

namespace glva::timing {

ThresholdAnalysis estimate_threshold(std::span<const double> samples) {
  if (samples.empty()) {
    throw InvalidArgument("estimate_threshold: empty sample");
  }
  ThresholdAnalysis analysis;
  analysis.threshold = util::otsu_threshold(samples);

  util::RunningStats off;
  util::RunningStats on;
  for (double x : samples) {
    (x < analysis.threshold ? off : on).add(x);
  }
  analysis.off_mean = off.mean();
  analysis.on_mean = on.count() > 0 ? on.mean() : off.mean();

  // Separation: plateau gap normalized by gap + twice the pooled spread
  // (roughly "how many ±1σ bands fit in the gap"). A clean bimodal signal
  // scores near 1; a unimodal or overlapping one scores low.
  const double gap = std::max(0.0, analysis.on_mean - analysis.off_mean);
  const double spread = 2.0 * (off.stddev() + on.stddev());
  analysis.separation = (gap + spread) > 0.0 ? gap / (gap + spread) : 0.0;
  if (on.count() == 0 || off.count() == 0) analysis.separation = 0.0;
  return analysis;
}

ThresholdAnalysis estimate_threshold(sim::VirtualLab& lab,
                                     const std::string& species_id,
                                     double probe_level, double total_time) {
  const sim::SweepResult sweep = lab.run_combination_sweep(total_time, probe_level);
  const auto& series = sweep.trace.series(species_id);
  return estimate_threshold(std::span<const double>(series.data(), series.size()));
}

}  // namespace glva::timing
