#include "timing/delay_estimator.h"

#include <algorithm>

#include "util/errors.h"
#include "util/stats.h"

namespace glva::timing {

namespace {

/// Index of the first sample at or after `t`.
std::size_t first_sample_at(const std::vector<double>& times, double t) {
  return static_cast<std::size_t>(
      std::lower_bound(times.begin(), times.end(), t) - times.begin());
}

/// True when `series[k] >= threshold` equals `level` for `persistence`
/// samples starting at k (clipped at the end of the range).
bool holds_level(const std::vector<double>& series, std::size_t k,
                 std::size_t end, bool level, double threshold,
                 std::size_t persistence) {
  const std::size_t stop = std::min(end, k + persistence);
  for (std::size_t i = k; i < stop; ++i) {
    if ((series[i] >= threshold) != level) return false;
  }
  return true;
}

}  // namespace

DelayAnalysis estimate_delays(const sim::Trace& trace,
                              const sim::InputSchedule& schedule,
                              const std::string& output_id, double threshold,
                              std::size_t persistence) {
  if (threshold <= 0.0) {
    throw InvalidArgument("estimate_delays: threshold must be positive");
  }
  if (trace.sample_count() == 0) {
    throw InvalidArgument("estimate_delays: empty trace");
  }
  const auto& times = trace.times();
  const auto& output = trace.series(output_id);
  const auto& phases = schedule.phases();

  DelayAnalysis analysis;
  util::RunningStats rise;
  util::RunningStats fall;

  for (std::size_t p = 0; p < phases.size(); ++p) {
    const double t_begin = phases[p].start_time;
    const double t_end =
        p + 1 < phases.size() ? phases[p + 1].start_time : times.back();
    const std::size_t k_begin = first_sample_at(times, t_begin);
    const std::size_t k_end = first_sample_at(times, t_end);
    if (k_begin >= k_end || k_begin >= output.size()) continue;

    // Level at the boundary vs the settled level at the end of the phase
    // (median of the final quarter, robust to flicker).
    const bool level_at_boundary = output[k_begin] >= threshold;
    const std::size_t tail_start = k_begin + (k_end - k_begin) * 3 / 4;
    std::size_t high_count = 0;
    for (std::size_t k = tail_start; k < k_end; ++k) {
      if (output[k] >= threshold) ++high_count;
    }
    const bool settled_level = high_count * 2 > (k_end - tail_start);
    if (settled_level == level_at_boundary) continue;  // no transition here

    // First persistent crossing in the settled direction.
    for (std::size_t k = k_begin; k < k_end; ++k) {
      if ((output[k] >= threshold) == settled_level &&
          holds_level(output, k, k_end, settled_level, threshold, persistence)) {
        DelayEvent event;
        event.phase_index = p;
        event.input_change_time = t_begin;
        event.crossing_time = times[k];
        event.rising = settled_level;
        analysis.events.push_back(event);
        (settled_level ? rise : fall).add(event.delay());
        analysis.max_delay = std::max(analysis.max_delay, event.delay());
        break;
      }
    }
  }

  analysis.mean_rise_delay = rise.mean();
  analysis.mean_fall_delay = fall.mean();
  analysis.recommended_hold_time = analysis.max_delay * 1.25;
  return analysis;
}

}  // namespace glva::timing
