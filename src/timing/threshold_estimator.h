#pragma once

#include <span>
#include <string>

#include "sim/virtual_lab.h"

/// Threshold-value analysis, reproducing the D-VASim capability the paper
/// leans on ("D-VASim supports the capability of analyzing the threshold
/// value and propagation delays" — Baig & Madsen, IWBDA 2016). The
/// threshold is the amount separating the OFF and ON expression plateaus of
/// a species; the logic analyzer uses it to digitize analog traces.
namespace glva::timing {

/// Result of a threshold estimation.
struct ThresholdAnalysis {
  double threshold = 0.0;   ///< estimated logic threshold (molecules)
  double off_mean = 0.0;    ///< mean amount over the OFF-classified samples
  double on_mean = 0.0;     ///< mean amount over the ON-classified samples
  /// Separation quality in [0, 1]: 0 when plateaus touch, toward 1 when the
  /// gap dwarfs the plateau spread. Circuits near 0 will digitize noisily
  /// (the paper's threshold-40 regime on circuit 0x0B).
  double separation = 0.0;
};

/// Estimate the logic threshold of a sample distribution (Otsu's method on
/// the amount histogram). Throws glva::InvalidArgument on an empty sample.
[[nodiscard]] ThresholdAnalysis estimate_threshold(std::span<const double> samples);

/// Run a full input-combination sweep on the lab at `probe_level` molecules
/// per asserted input and estimate the threshold of `species_id` from the
/// resulting trace. This is the push-button flow a D-VASim user performs
/// before logic analysis.
[[nodiscard]] ThresholdAnalysis estimate_threshold(sim::VirtualLab& lab,
                                                   const std::string& species_id,
                                                   double probe_level,
                                                   double total_time);

}  // namespace glva::timing
