#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/input_schedule.h"
#include "sim/trace.h"

/// Propagation-delay analysis (the second D-VASim capability the paper
/// uses). The propagation delay bounds how long each input combination
/// must be held: combinations changed faster than the delay produce wrong
/// output states (Section II of the paper).
namespace glva::timing {

/// One observed output transition following an input-combination change.
struct DelayEvent {
  std::size_t phase_index = 0;  ///< schedule phase whose onset triggered it
  double input_change_time = 0.0;
  double crossing_time = 0.0;   ///< when the output settled past threshold
  bool rising = false;          ///< low->high (true) or high->low
  [[nodiscard]] double delay() const noexcept {
    return crossing_time - input_change_time;
  }
};

/// Aggregate delay statistics over a sweep.
struct DelayAnalysis {
  std::vector<DelayEvent> events;
  double mean_rise_delay = 0.0;
  double mean_fall_delay = 0.0;
  double max_delay = 0.0;
  /// Suggested hold time per combination: max observed delay with a 25%
  /// safety margin (the paper holds each combination >= 1000 time units).
  double recommended_hold_time = 0.0;
};

/// Scan a sweep trace for output transitions caused by input phase changes.
///
/// For each phase boundary where the output's settled digital level differs
/// from its level at the boundary, the crossing time is the first sample
/// after the boundary at which the output crosses `threshold` in the
/// settled direction and stays there for `persistence` consecutive samples
/// (filtering the stochastic flicker the paper's Figure 2 shows around the
/// threshold).
[[nodiscard]] DelayAnalysis estimate_delays(const sim::Trace& trace,
                                            const sim::InputSchedule& schedule,
                                            const std::string& output_id,
                                            double threshold,
                                            std::size_t persistence = 25);

}  // namespace glva::timing
