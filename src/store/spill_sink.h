#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "store/glvt.h"
#include "store/trace_sink.h"

namespace glva::store {

/// Disk-spilling sink: rows accumulate in a fixed-capacity chunk buffer
/// and are flushed to a `.glvt` file every `chunk_samples` samples, so
/// resident memory is O(chunk_samples · species) however long the run —
/// the enabling path for 10^7–10^8-sample realizations. `finish()` writes
/// the trailing partial chunk, the chunk index, and patches the header's
/// sample/chunk counts; a file without that patch (crash, truncation) is
/// rejected by `SpillReader`.
class SpillSink final : public TraceSink {
public:
  struct Options {
    /// Samples buffered per chunk; must be a positive multiple of 64 (the
    /// BitStream word size — keeps replayed chunks word-aligned).
    std::uint32_t chunk_samples = glvt::kDefaultChunkSamples;
    /// Recorded in the header so a spill file is self-describing: the RNG
    /// seed that produced the trace and its sampling period.
    std::uint64_t seed = 0;
    double sampling_period = 1.0;
  };

  /// Throws glva::InvalidArgument for a zero or non-multiple-of-64 chunk
  /// size. The file is created in begin(), not here.
  explicit SpillSink(std::string path);  // default Options
  SpillSink(std::string path, Options options);

  /// Creates/truncates the file and writes the header. Throws
  /// glva::StorageError when the path cannot be opened.
  void begin(const std::vector<std::string>& species_names) override;

  /// Buffer one row, flushing a full chunk to disk. Throws
  /// glva::InvalidArgument on a row narrower than the species list and
  /// glva::StorageError on write failure.
  void append(double time, const std::vector<double>& values) override;

  /// Buffer a column-wise block, flushing every chunk it fills — one bulk
  /// copy per column per chunk instead of a row loop, and the file bytes
  /// are identical to the row path's however the samples were sliced.
  /// Throws glva::InvalidArgument on a block narrower than the species
  /// list and glva::StorageError on write failure.
  void append_block(std::span<const double> times,
                    std::span<const std::span<const double>> series) override;

  /// Flush the tail chunk, write the chunk index, patch the header, and
  /// close the file. Throws glva::StorageError on write failure.
  void finish() override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t sample_count() const noexcept {
    return sample_count_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunk_offsets_.size();
  }

private:
  void flush_chunk();

  std::string path_;
  Options options_;
  std::fstream file_;
  std::vector<std::string> species_names_;
  std::vector<double> times_;                ///< buffered chunk column
  std::vector<std::vector<double>> series_;  ///< [species][buffered sample]
  std::vector<std::uint64_t> chunk_offsets_;
  std::uint64_t sample_count_ = 0;
  bool finished_ = false;
};

}  // namespace glva::store
