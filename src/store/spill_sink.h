#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "store/glvt.h"
#include "store/trace_sink.h"

namespace glva::store {

/// Disk-spilling sink: rows accumulate in a fixed-capacity chunk buffer
/// and are flushed to a `.glvt` file every `chunk_samples` samples, so
/// resident memory is O(chunk_samples · species) however long the run —
/// the enabling path for 10^7–10^8-sample realizations. `finish()` writes
/// the trailing partial chunk, the chunk index, and patches the header's
/// sample/chunk counts; a file without that patch (crash, truncation) is
/// rejected by `SpillReader`.
///
/// Chunk flushes are double-buffered onto a dedicated writer thread: the
/// sampler encodes the next chunk while the previous one is on disk's
/// time, blocking only when both queue slots are full (that stall is what
/// the `spill.flush_wait_us` histogram measures). On POSIX the writer
/// preallocates file extents ahead of itself (`posix_fallocate`, trimmed
/// back on finish). A writer-side I/O error is latched and rethrown from
/// the next `append`/`append_block`/`finish` call, so producers see the
/// same glva::StorageError contract as the synchronous path — which is
/// still available via the `GLVA_SYNC_SPILL=1` environment escape hatch
/// (same bytes, no thread; for debugging and single-threaded profiling).
class SpillSink final : public TraceSink {
public:
  struct Options {
    /// Samples buffered per chunk; must be a positive multiple of 64 (the
    /// BitStream word size — keeps replayed chunks word-aligned).
    std::uint32_t chunk_samples = glvt::kDefaultChunkSamples;
    /// Recorded in the header so a spill file is self-describing: the RNG
    /// seed that produced the trace and its sampling period.
    std::uint64_t seed = 0;
    double sampling_period = 1.0;
    /// On-disk format to emit: glvt::kVersion (current, grid-time capable)
    /// or 1 (the pre-grid layout, kept writable for the backward-compat
    /// goldens and v1-vs-v2 benches). The sampling_period above doubles as
    /// the v2 grid baseline: chunks whose times are bit-identical to
    /// `sample_index · sampling_period` collapse to kGrid sections.
    std::uint32_t format_version = glvt::kVersion;
  };

  /// Throws glva::InvalidArgument for a zero or non-multiple-of-64 chunk
  /// size or an unwritable format version. The file is created in
  /// begin(), not here.
  explicit SpillSink(std::string path);  // default Options
  SpillSink(std::string path, Options options);

  /// Joins the writer thread if `finish()` was never reached (exception
  /// unwinding); the file is left unfinished and `SpillReader` rejects it.
  ~SpillSink() override;

  /// Creates/truncates the file, writes the header, and starts the writer
  /// thread (unless GLVA_SYNC_SPILL is set). Throws glva::StorageError
  /// when the path cannot be opened.
  void begin(const std::vector<std::string>& species_names) override;

  /// Buffer one row, flushing a full chunk to disk. Throws
  /// glva::InvalidArgument on a row narrower than the species list and
  /// glva::StorageError on write failure (including a failure latched by
  /// the writer thread since the previous call).
  void append(double time, const std::vector<double>& values) override;

  /// Buffer a column-wise block, flushing every chunk it fills — one bulk
  /// copy per column per chunk instead of a row loop, and the file bytes
  /// are identical to the row path's however the samples were sliced.
  /// Throws glva::InvalidArgument on a block narrower than the species
  /// list and glva::StorageError on write failure.
  void append_block(std::span<const double> times,
                    std::span<const std::span<const double>> series) override;

  /// Flush the tail chunk, drain and join the writer thread, write the
  /// chunk index, patch the header, and close the file. Throws
  /// glva::StorageError on any write failure, the producer's or the
  /// writer's.
  void finish() override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t sample_count() const noexcept {
    return sample_count_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunk_offsets_.size();
  }

private:
  void flush_chunk();
  /// Hand one encoded chunk to the writer thread, blocking while both
  /// queue slots are in flight; synchronous write when no thread runs.
  void submit(std::string&& chunk);
  /// Rethrow a latched writer-thread error as glva::StorageError.
  void throw_if_writer_failed();
  /// Stop and join the writer thread after its queue drains.
  void join_writer();
  void writer_main();
  /// Extend the file's allocation ahead of `needed` bytes (POSIX, writer
  /// thread only; advisory — failure just disables preallocation).
  void preallocate(std::uint64_t needed);

  std::string path_;
  Options options_;
  std::fstream file_;
  std::vector<std::string> species_names_;
  std::vector<double> times_;                ///< buffered chunk column
  std::vector<std::vector<double>> series_;  ///< [species][buffered sample]
  std::vector<std::uint64_t> chunk_offsets_;
  std::uint64_t sample_count_ = 0;
  std::uint64_t write_offset_ = 0;  ///< file offset of the next chunk
  bool finished_ = false;

  // Double-buffered writer state. The fstream is handed off wholesale:
  // the producer touches it before the thread starts (header) and after
  // join_writer() (index + header patch), the writer thread in between —
  // thread start/join are the synchronization edges, so no lock guards the
  // stream itself. Everything below IS guarded by mu_ except written_ and
  // allocated_ (writer-thread-only) and async_ (set once in begin()).
  bool async_ = false;
  std::thread writer_;
  std::mutex mu_;
  std::condition_variable queue_has_space_;
  std::condition_variable queue_has_data_;
  std::deque<std::string> queue_;        ///< in-flight chunks, ≤ 2
  std::vector<std::string> free_bufs_;   ///< recycled chunk buffers
  bool stop_ = false;
  /// Set (under mu_) when the writer hits an I/O error; read with a
  /// relaxed load on the append fast path so rows fail fast without
  /// taking the lock. The message itself stays under mu_.
  std::atomic<bool> writer_failed_{false};
  std::string writer_error_;
  std::uint64_t written_ = 0;    ///< writer-thread file position
  std::uint64_t allocated_ = 0;  ///< bytes preallocated so far
  int prealloc_fd_ = -1;         ///< POSIX fd for fallocate/ftruncate
};

}  // namespace glva::store
