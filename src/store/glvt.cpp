#include "store/glvt.h"

#include <cstring>

#include "util/errors.h"

namespace glva::store::glvt {

namespace {

template <typename T>
void append_pod(std::string& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
T read_pod(std::string_view buffer, std::size_t& offset, const char* what) {
  if (buffer.size() - offset < sizeof(T) || offset > buffer.size()) {
    throw StorageError(std::string(what) + ": truncated section");
  }
  T value;
  std::memcpy(&value, buffer.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace

void append_u32(std::string& out, std::uint32_t value) {
  append_pod(out, value);
}
void append_u64(std::string& out, std::uint64_t value) {
  append_pod(out, value);
}
void append_f64(std::string& out, double value) { append_pod(out, value); }

void encode_section(const std::vector<double>& values, std::string& out) {
  // One pass to size the RLE alternative: runs of bit-identical doubles.
  std::size_t runs = 0;
  for (std::size_t k = 0; k < values.size();) {
    const std::uint64_t bits = double_bits(values[k]);
    std::size_t j = k + 1;
    while (j < values.size() && double_bits(values[j]) == bits) ++j;
    ++runs;
    k = j;
  }
  const std::size_t raw_bytes = values.size() * sizeof(double);
  const std::size_t rle_bytes = runs * (sizeof(std::uint32_t) + sizeof(double));

  if (rle_bytes < raw_bytes) {
    out.push_back(static_cast<char>(SectionEncoding::kRle));
    append_u32(out, static_cast<std::uint32_t>(rle_bytes));
    for (std::size_t k = 0; k < values.size();) {
      const std::uint64_t bits = double_bits(values[k]);
      std::size_t j = k + 1;
      while (j < values.size() && double_bits(values[j]) == bits) ++j;
      append_u32(out, static_cast<std::uint32_t>(j - k));
      append_u64(out, bits);
      k = j;
    }
  } else {
    out.push_back(static_cast<char>(SectionEncoding::kRaw));
    append_u32(out, static_cast<std::uint32_t>(raw_bytes));
    for (const double value : values) append_f64(out, value);
  }
}

void decode_section_into(std::string_view buffer, std::size_t& offset,
                         std::size_t count, std::vector<double>& values) {
  const auto tag = read_pod<std::uint8_t>(buffer, offset, "glvt section");
  const auto payload_bytes =
      read_pod<std::uint32_t>(buffer, offset, "glvt section");
  if (buffer.size() - offset < payload_bytes) {
    throw StorageError("glvt section: truncated payload");
  }
  const std::size_t payload_end = offset + payload_bytes;

  values.clear();
  if (tag == static_cast<std::uint8_t>(SectionEncoding::kRaw)) {
    if (payload_bytes != count * sizeof(double)) {
      throw StorageError("glvt section: raw payload size mismatch");
    }
    // Doubles are stored bit-exactly in file order: one bulk copy.
    values.resize(count);
    std::memcpy(values.data(), buffer.data() + offset, payload_bytes);
    offset = payload_end;
  } else if (tag == static_cast<std::uint8_t>(SectionEncoding::kRle)) {
    values.reserve(count);
    while (offset < payload_end) {
      const auto run = read_pod<std::uint32_t>(buffer, offset, "glvt section");
      const auto bits = read_pod<std::uint64_t>(buffer, offset, "glvt section");
      if (run == 0 || values.size() + run > count) {
        throw StorageError("glvt section: RLE run overflows sample count");
      }
      values.insert(values.end(), run, bits_double(bits));
    }
    if (values.size() != count) {
      throw StorageError("glvt section: RLE runs do not cover the chunk");
    }
  } else {
    throw StorageError("glvt section: unknown encoding tag");
  }
  if (offset != payload_end) {
    throw StorageError("glvt section: payload size mismatch");
  }
}

std::vector<double> decode_section(std::string_view buffer,
                                   std::size_t& offset, std::size_t count) {
  std::vector<double> values;
  decode_section_into(buffer, offset, count, values);
  return values;
}

}  // namespace glva::store::glvt
