#include "store/glvt.h"

#include <cstring>

#include "util/errors.h"

namespace glva::store::glvt {

namespace {

template <typename T>
void append_pod(std::string& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
T read_pod(std::string_view buffer, std::size_t& offset, const char* what) {
  if (buffer.size() - offset < sizeof(T) || offset > buffer.size()) {
    throw StorageError(std::string(what) + ": truncated section");
  }
  T value;
  std::memcpy(&value, buffer.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace

void append_u32(std::string& out, std::uint32_t value) {
  append_pod(out, value);
}
void append_u64(std::string& out, std::uint64_t value) {
  append_pod(out, value);
}
void append_f64(std::string& out, double value) { append_pod(out, value); }

void encode_section(const std::vector<double>& values, std::string& out) {
  // One pass to size the RLE alternative: runs of bit-identical doubles.
  std::size_t runs = 0;
  for (std::size_t k = 0; k < values.size();) {
    const std::uint64_t bits = double_bits(values[k]);
    std::size_t j = k + 1;
    while (j < values.size() && double_bits(values[j]) == bits) ++j;
    ++runs;
    k = j;
  }
  const std::size_t raw_bytes = values.size() * sizeof(double);
  const std::size_t rle_bytes = runs * (sizeof(std::uint32_t) + sizeof(double));

  if (rle_bytes < raw_bytes) {
    out.push_back(static_cast<char>(SectionEncoding::kRle));
    append_u32(out, static_cast<std::uint32_t>(rle_bytes));
    for (std::size_t k = 0; k < values.size();) {
      const std::uint64_t bits = double_bits(values[k]);
      std::size_t j = k + 1;
      while (j < values.size() && double_bits(values[j]) == bits) ++j;
      append_u32(out, static_cast<std::uint32_t>(j - k));
      append_u64(out, bits);
      k = j;
    }
  } else {
    out.push_back(static_cast<char>(SectionEncoding::kRaw));
    append_u32(out, static_cast<std::uint32_t>(raw_bytes));
    for (const double value : values) append_f64(out, value);
  }
}

void decode_section_into(std::string_view buffer, std::size_t& offset,
                         std::size_t count, std::vector<double>& values) {
  const auto tag = read_pod<std::uint8_t>(buffer, offset, "glvt section");
  const auto payload_bytes =
      read_pod<std::uint32_t>(buffer, offset, "glvt section");
  if (buffer.size() - offset < payload_bytes) {
    throw StorageError("glvt section: truncated payload");
  }
  const std::size_t payload_end = offset + payload_bytes;

  values.clear();
  if (tag == static_cast<std::uint8_t>(SectionEncoding::kRaw)) {
    if (payload_bytes != count * sizeof(double)) {
      throw StorageError("glvt section: raw payload size mismatch");
    }
    // Doubles are stored bit-exactly in file order: one bulk copy.
    values.resize(count);
    std::memcpy(values.data(), buffer.data() + offset, payload_bytes);
    offset = payload_end;
  } else if (tag == static_cast<std::uint8_t>(SectionEncoding::kRle)) {
    values.reserve(count);
    while (offset < payload_end) {
      const auto run = read_pod<std::uint32_t>(buffer, offset, "glvt section");
      const auto bits = read_pod<std::uint64_t>(buffer, offset, "glvt section");
      if (run == 0 || values.size() + run > count) {
        throw StorageError("glvt section: RLE run overflows sample count");
      }
      values.insert(values.end(), run, bits_double(bits));
    }
    if (values.size() != count) {
      throw StorageError("glvt section: RLE runs do not cover the chunk");
    }
  } else {
    throw StorageError("glvt section: unknown encoding tag");
  }
  if (offset != payload_end) {
    throw StorageError("glvt section: payload size mismatch");
  }
}

std::vector<double> decode_section(std::string_view buffer,
                                   std::size_t& offset, std::size_t count) {
  std::vector<double> values;
  decode_section_into(buffer, offset, count, values);
  return values;
}

bool encode_time_section(const std::vector<double>& times,
                         std::uint64_t first_sample, double sampling_period,
                         std::string& out) {
  bool grid = sampling_period > 0.0 && !times.empty();
  for (std::size_t j = 0; grid && j < times.size(); ++j) {
    // Bit comparison, not ==: the grid claim must survive replay exactly,
    // and a NaN or -0.0 anywhere must force the fallback.
    const double expected =
        static_cast<double>(first_sample + j) * sampling_period;
    grid = double_bits(times[j]) == double_bits(expected);
  }
  if (!grid) {
    encode_section(times, out);
    return false;
  }
  out.push_back(static_cast<char>(SectionEncoding::kGrid));
  append_u32(out, sizeof(double));
  append_f64(out, static_cast<double>(first_sample) * sampling_period);
  return true;
}

void decode_time_section_into(std::string_view buffer, std::size_t& offset,
                              std::size_t count, std::uint64_t first_sample,
                              double sampling_period,
                              std::vector<double>& values) {
  if (offset >= buffer.size() ||
      buffer[offset] != static_cast<char>(SectionEncoding::kGrid)) {
    decode_section_into(buffer, offset, count, values);
    return;
  }
  ++offset;  // tag
  const auto payload_bytes =
      read_pod<std::uint32_t>(buffer, offset, "glvt grid section");
  if (payload_bytes != sizeof(double)) {
    throw StorageError("glvt grid section: payload size mismatch");
  }
  const auto t0 = read_pod<double>(buffer, offset, "glvt grid section");
  const double expected = static_cast<double>(first_sample) * sampling_period;
  if (double_bits(t0) != double_bits(expected)) {
    throw StorageError(
        "glvt grid section: start time disagrees with the chunk position");
  }
  values.clear();
  values.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    values.push_back(static_cast<double>(first_sample + j) * sampling_period);
  }
}

void encode_words_section(const std::uint64_t* words, std::size_t word_count,
                          std::string& out) {
  out.push_back(static_cast<char>(SectionEncoding::kWords));
  const std::size_t payload_bytes = word_count * sizeof(std::uint64_t);
  append_u32(out, static_cast<std::uint32_t>(payload_bytes));
  const std::size_t start = out.size();
  out.resize(start + payload_bytes);
  std::memcpy(out.data() + start, words, payload_bytes);
}

void decode_words_section(std::string_view buffer, std::size_t& offset,
                          std::size_t word_count,
                          std::vector<std::uint64_t>& words) {
  const auto tag = read_pod<std::uint8_t>(buffer, offset, "glvt words section");
  if (tag != static_cast<std::uint8_t>(SectionEncoding::kWords)) {
    throw StorageError("glvt words section: unexpected encoding tag");
  }
  const auto payload_bytes =
      read_pod<std::uint32_t>(buffer, offset, "glvt words section");
  if (payload_bytes != word_count * sizeof(std::uint64_t)) {
    throw StorageError("glvt words section: payload size mismatch");
  }
  if (buffer.size() - offset < payload_bytes) {
    throw StorageError("glvt words section: truncated payload");
  }
  const std::size_t start = words.size();
  words.resize(start + word_count);
  std::memcpy(words.data() + start, buffer.data() + offset, payload_bytes);
  offset += payload_bytes;
}

}  // namespace glva::store::glvt
