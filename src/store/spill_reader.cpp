#include "store/spill_reader.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define GLVA_SPILL_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "store/glvt.h"
#include "store/memory_sink.h"
#include "util/csv.h"
#include "util/errors.h"
#include "util/string_util.h"

namespace glva::store {

namespace {

std::string read_bytes(std::ifstream& file, std::size_t count,
                       const char* what) {
  std::string buffer(count, '\0');
  file.read(buffer.data(), static_cast<std::streamsize>(count));
  if (static_cast<std::size_t>(file.gcount()) != count) {
    throw StorageError(std::string("SpillReader: truncated ") + what);
  }
  return buffer;
}

template <typename T>
T take(std::string_view buffer, std::size_t& offset) {
  T value;
  std::memcpy(&value, buffer.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

SpillReader::SpillReader(std::string path) : path_(std::move(path)) {
  file_.open(path_, std::ios::binary);
  if (!file_) {
    throw StorageError("SpillReader: cannot open spill file: " + path_);
  }
  file_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(file_.tellg());
  file_.seekg(0);

  if (file_size < glvt::kHeaderFixedBytes) {
    throw StorageError("SpillReader: truncated header: " + path_);
  }
  const std::string header =
      read_bytes(file_, glvt::kHeaderFixedBytes, "header");
  std::size_t offset = 0;
  if (std::memcmp(header.data(), glvt::kMagic, sizeof glvt::kMagic) != 0) {
    throw StorageError("SpillReader: not a .glvt file (bad magic): " + path_);
  }
  offset += sizeof glvt::kMagic;
  version_ = take<std::uint32_t>(header, offset);
  if (version_ < glvt::kMinVersion || version_ > glvt::kVersion) {
    throw StorageError("SpillReader: unsupported .glvt version " +
                       std::to_string(version_) + ": " + path_);
  }
  seed_ = take<std::uint64_t>(header, offset);
  sampling_period_ = take<double>(header, offset);
  const auto species_count = take<std::uint32_t>(header, offset);
  chunk_capacity_ = take<std::uint32_t>(header, offset);
  sample_count_ = take<std::uint64_t>(header, offset);
  const auto chunk_count = take<std::uint64_t>(header, offset);
  index_offset_ = take<std::uint64_t>(header, offset);

  if (version_ >= 2) {
    // The v2 header tail: what the chunks carry, and the ADC threshold a
    // bit-plane file was digitized at.
    if (file_size < glvt::kHeaderFixedBytesV2) {
      throw StorageError("SpillReader: truncated header: " + path_);
    }
    const std::string tail = read_bytes(
        file_, glvt::kHeaderFixedBytesV2 - glvt::kHeaderFixedBytes, "header");
    std::size_t tail_offset = 0;
    const auto content = take<std::uint32_t>(tail, tail_offset);
    if (content > static_cast<std::uint32_t>(glvt::ContentKind::kBits)) {
      throw StorageError("SpillReader: unknown content kind: " + path_);
    }
    content_kind_ = static_cast<glvt::ContentKind>(content);
    threshold_ = take<double>(tail, tail_offset);
    if (content_kind_ == glvt::ContentKind::kBits && !(threshold_ > 0.0)) {
      throw StorageError(
          "SpillReader: bit-plane file with a non-positive threshold: " +
          path_);
    }
  }

  if (index_offset_ == 0) {
    throw StorageError(
        "SpillReader: unfinished or truncated spill file (no chunk index): " +
        path_);
  }
  if (chunk_capacity_ == 0 || chunk_capacity_ % 64 != 0) {
    throw StorageError("SpillReader: corrupt chunk capacity: " + path_);
  }
  // Division, not multiplication: a crafted chunk_count near 2^61 would
  // wrap `chunk_count * 8` and slip past the fit check, then blow up in
  // reserve() below with the wrong exception type.
  if (index_offset_ > file_size ||
      (file_size - index_offset_) % sizeof(std::uint64_t) != 0 ||
      chunk_count != (file_size - index_offset_) / sizeof(std::uint64_t)) {
    throw StorageError("SpillReader: chunk index does not fit the file: " +
                       path_);
  }

  species_names_.reserve(species_count);
  for (std::uint32_t s = 0; s < species_count; ++s) {
    const std::string len_bytes =
        read_bytes(file_, sizeof(std::uint32_t), "species name");
    std::size_t len_offset = 0;
    const auto len = take<std::uint32_t>(len_bytes, len_offset);
    // Bound the allocation before read_bytes trusts the length field.
    if (len > file_size) {
      throw StorageError("SpillReader: corrupt species-name length: " +
                         path_);
    }
    species_names_.push_back(read_bytes(file_, len, "species name"));
  }

  file_.seekg(static_cast<std::streamoff>(index_offset_));
  const std::string index =
      read_bytes(file_, chunk_count * sizeof(std::uint64_t), "chunk index");
  offset = 0;
  chunk_offsets_.reserve(chunk_count);
  for (std::uint64_t c = 0; c < chunk_count; ++c) {
    const auto chunk_offset = take<std::uint64_t>(index, offset);
    if (chunk_offset >= index_offset_) {
      throw StorageError("SpillReader: chunk offset past the index: " + path_);
    }
    chunk_offsets_.push_back(chunk_offset);
  }

#if GLVA_SPILL_MMAP
  // Map the (validated) file read-only: chunk decodes then run zero-copy
  // out of the page cache. Failure is not an error — reads fall back to
  // the ifstream path byte for byte.
  if (file_size > 0) {
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(file_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping outlives the descriptor
      if (map != MAP_FAILED) {
        map_ = static_cast<const char*>(map);
        map_size_ = static_cast<std::size_t>(file_size);
      }
    }
  }
#endif
}

SpillReader::~SpillReader() {
#if GLVA_SPILL_MMAP
  if (map_ != nullptr) ::munmap(const_cast<char*>(map_), map_size_);
#endif
}

std::string_view SpillReader::file_bytes(std::uint64_t begin,
                                         std::uint64_t end) {
  if (map_ != nullptr) {
    return std::string_view(map_ + begin, static_cast<std::size_t>(end - begin));
  }
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(begin));
  chunk_buffer_.resize(static_cast<std::size_t>(end - begin));
  file_.read(chunk_buffer_.data(),
             static_cast<std::streamsize>(chunk_buffer_.size()));
  if (static_cast<std::size_t>(file_.gcount()) != chunk_buffer_.size()) {
    throw StorageError("SpillReader: truncated chunk");
  }
  return chunk_buffer_;
}

void SpillReader::require_content(glvt::ContentKind want,
                                  const char* api) const {
  if (content_kind_ == want) return;
  if (want == glvt::ContentKind::kAnalog) {
    throw StorageError(std::string("SpillReader::") + api +
                       ": bit-plane file holds no analog samples "
                       "(use read_planes): " +
                       path_);
  }
  throw StorageError(std::string("SpillReader::") + api +
                     ": analog file holds no bit planes "
                     "(replay into a DigitizingSink instead): " +
                     path_);
}

void SpillReader::read_chunk_into(std::size_t index, Chunk& chunk) {
  require_content(glvt::ContentKind::kAnalog, "read_chunk");
  if (index >= chunk_offsets_.size()) {
    throw InvalidArgument("SpillReader::read_chunk: index out of range");
  }
  const std::uint64_t begin = chunk_offsets_[index];
  const std::uint64_t end = index + 1 < chunk_offsets_.size()
                                ? chunk_offsets_[index + 1]
                                : index_offset_;
  if (end <= begin) {
    throw StorageError("SpillReader: corrupt chunk index: " + path_);
  }
  const std::string_view bytes = file_bytes(begin, end);

  std::size_t offset = 0;
  if (bytes.size() < 2 * sizeof(std::uint32_t) ||
      take<std::uint32_t>(bytes, offset) != glvt::kChunkMagic) {
    throw StorageError("SpillReader: bad chunk magic: " + path_);
  }
  const auto samples = take<std::uint32_t>(bytes, offset);
  if (samples == 0 || samples > chunk_capacity_) {
    throw StorageError("SpillReader: corrupt chunk sample count: " + path_);
  }

  chunk.first_sample =
      static_cast<std::uint64_t>(index) * chunk_capacity_;
  if (version_ >= 2) {
    glvt::decode_time_section_into(bytes, offset, samples, chunk.first_sample,
                                   sampling_period_, chunk.times);
  } else {
    glvt::decode_section_into(bytes, offset, samples, chunk.times);
  }
  chunk.series.resize(species_names_.size());
  for (std::size_t s = 0; s < species_names_.size(); ++s) {
    glvt::decode_section_into(bytes, offset, samples, chunk.series[s]);
  }
  if (offset != bytes.size()) {
    throw StorageError("SpillReader: trailing bytes in chunk: " + path_);
  }
}

SpillReader::Chunk SpillReader::read_chunk(std::size_t index) {
  Chunk chunk;
  read_chunk_into(index, chunk);
  return chunk;
}

void SpillReader::replay(TraceSink& sink) {
  require_content(glvt::ContentKind::kAnalog, "replay");
  sink.begin(species_names_);
  Chunk chunk;  // decode buffers reused across every chunk
  std::vector<std::span<const double>> columns(species_names_.size());
  for (std::size_t c = 0; c < chunk_offsets_.size(); ++c) {
    read_chunk_into(c, chunk);
    for (std::size_t s = 0; s < columns.size(); ++s) {
      columns[s] = chunk.series[s];
    }
    sink.append_block(chunk.times, columns);
  }
  sink.finish();
}

void SpillReader::replay_rows(TraceSink& sink) {
  // The pre-block-path replay, preserved as the reference the block path
  // must be bit-identical to and the baseline `bench_trace_io` measures
  // against: buffered ifstream reads (no mapping), a freshly allocated
  // decode per chunk, and one append per sample row. (Time decode is
  // version-dispatched like the block path — a v2 grid column must
  // reconstruct identically whichever replay runs.)
  require_content(glvt::ContentKind::kAnalog, "replay_rows");
  sink.begin(species_names_);
  std::vector<double> row(species_names_.size());
  for (std::size_t c = 0; c < chunk_offsets_.size(); ++c) {
    const std::uint64_t begin = chunk_offsets_[c];
    const std::uint64_t end = c + 1 < chunk_offsets_.size()
                                  ? chunk_offsets_[c + 1]
                                  : index_offset_;
    if (end <= begin) {
      throw StorageError("SpillReader: corrupt chunk index: " + path_);
    }
    file_.clear();
    file_.seekg(static_cast<std::streamoff>(begin));
    const std::string buffer =
        read_bytes(file_, static_cast<std::size_t>(end - begin), "chunk");

    std::size_t offset = 0;
    if (buffer.size() < 2 * sizeof(std::uint32_t) ||
        take<std::uint32_t>(buffer, offset) != glvt::kChunkMagic) {
      throw StorageError("SpillReader: bad chunk magic: " + path_);
    }
    const auto samples = take<std::uint32_t>(buffer, offset);
    if (samples == 0 || samples > chunk_capacity_) {
      throw StorageError("SpillReader: corrupt chunk sample count: " + path_);
    }
    std::vector<double> times;
    if (version_ >= 2) {
      glvt::decode_time_section_into(
          buffer, offset, samples,
          static_cast<std::uint64_t>(c) * chunk_capacity_, sampling_period_,
          times);
    } else {
      glvt::decode_section_into(buffer, offset, samples, times);
    }
    std::vector<std::vector<double>> series;
    series.reserve(species_names_.size());
    for (std::size_t s = 0; s < species_names_.size(); ++s) {
      series.push_back(glvt::decode_section(buffer, offset, samples));
    }
    if (offset != buffer.size()) {
      throw StorageError("SpillReader: trailing bytes in chunk: " + path_);
    }

    for (std::size_t k = 0; k < times.size(); ++k) {
      for (std::size_t s = 0; s < row.size(); ++s) {
        row[s] = series[s][k];
      }
      sink.append(times[k], row);
    }
  }
  sink.finish();
}

sim::Trace SpillReader::read_all() {
  MemorySink sink;
  replay(sink);
  return sink.take();
}

std::vector<logic::BitStream> SpillReader::read_planes() {
  require_content(glvt::ContentKind::kBits, "read_planes");
  const std::size_t total_words =
      static_cast<std::size_t>((sample_count_ + 63) / 64);
  std::vector<std::vector<std::uint64_t>> words(species_names_.size());
  for (auto& plane : words) plane.reserve(total_words);

  std::uint64_t seen = 0;
  for (std::size_t c = 0; c < chunk_offsets_.size(); ++c) {
    const std::uint64_t begin = chunk_offsets_[c];
    const std::uint64_t end = c + 1 < chunk_offsets_.size()
                                  ? chunk_offsets_[c + 1]
                                  : index_offset_;
    if (end <= begin) {
      throw StorageError("SpillReader: corrupt chunk index: " + path_);
    }
    const std::string_view bytes = file_bytes(begin, end);

    std::size_t offset = 0;
    if (bytes.size() < 2 * sizeof(std::uint32_t) ||
        take<std::uint32_t>(bytes, offset) != glvt::kChunkMagic) {
      throw StorageError("SpillReader: bad chunk magic: " + path_);
    }
    const auto samples = take<std::uint32_t>(bytes, offset);
    // Planes concatenate across chunks, so every chunk but the last must
    // be exactly full — a short interior chunk would shift every later
    // sample (the analog replay tolerates it; word alignment cannot).
    const bool last = c + 1 == chunk_offsets_.size();
    if (samples == 0 || samples > chunk_capacity_ ||
        (!last && samples != chunk_capacity_)) {
      throw StorageError("SpillReader: corrupt chunk sample count: " + path_);
    }
    const std::size_t chunk_words = (samples + 63) / 64;
    for (std::size_t s = 0; s < species_names_.size(); ++s) {
      glvt::decode_words_section(bytes, offset, chunk_words, words[s]);
    }
    if (offset != bytes.size()) {
      throw StorageError("SpillReader: trailing bytes in chunk: " + path_);
    }
    seen += samples;
  }
  if (seen != sample_count_) {
    throw StorageError(
        "SpillReader: chunk samples do not cover the header count: " + path_);
  }

  std::vector<logic::BitStream> planes;
  planes.reserve(words.size());
  for (auto& plane : words) {
    // from_words re-masks the tail word, so a corrupt tail cannot break
    // the BitStream zero-tail invariant downstream kernels rely on.
    planes.push_back(logic::BitStream::from_words(
        static_cast<std::size_t>(sample_count_), std::move(plane)));
  }
  return planes;
}

void SpillReader::write_csv(std::ostream& out) {
  require_content(glvt::ContentKind::kAnalog, "write_csv");
  {
    util::CsvWriter header;
    std::vector<std::string> fields{"time"};
    fields.insert(fields.end(), species_names_.begin(), species_names_.end());
    header.add_row(fields);
    out << header.str();
  }
  Chunk chunk;  // decode buffers reused across every chunk
  for (std::size_t c = 0; c < chunk_offsets_.size(); ++c) {
    read_chunk_into(c, chunk);
    util::CsvWriter rows;
    std::vector<std::string> row;
    for (std::size_t k = 0; k < chunk.times.size(); ++k) {
      row.clear();
      row.reserve(1 + species_names_.size());
      row.push_back(util::format_double(chunk.times[k]));
      for (std::size_t s = 0; s < species_names_.size(); ++s) {
        row.push_back(util::format_double(chunk.series[s][k]));
      }
      rows.add_row(row);
    }
    out << rows.str();
  }
}

}  // namespace glva::store
