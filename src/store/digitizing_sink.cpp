#include "store/digitizing_sink.h"

#include <algorithm>

#include "util/errors.h"

namespace glva::store {

DigitizingSink::DigitizingSink(std::vector<std::string> species_ids,
                               double threshold)
    : species_ids_(std::move(species_ids)), threshold_(threshold) {
  if (threshold_ <= 0.0) {
    throw InvalidArgument("DigitizingSink: threshold must be positive");
  }
  if (species_ids_.empty()) {
    throw InvalidArgument("DigitizingSink: no species to track");
  }
}

void DigitizingSink::begin(const std::vector<std::string>& species_names) {
  columns_.clear();
  columns_.reserve(species_ids_.size());
  min_row_width_ = 0;
  for (const auto& id : species_ids_) {
    std::size_t column = species_names.size();
    for (std::size_t s = 0; s < species_names.size(); ++s) {
      if (species_names[s] == id) {
        column = s;
        break;
      }
    }
    if (column == species_names.size()) {
      throw InvalidArgument("DigitizingSink: unknown species '" + id + "'");
    }
    columns_.push_back(column);
    min_row_width_ = std::max(min_row_width_, column + 1);
  }
  planes_.assign(species_ids_.size(), logic::BitStream());
  samples_ = 0;
}

void DigitizingSink::append(double /*time*/,
                            const std::vector<double>& values) {
  if (values.size() < min_row_width_) {
    throw InvalidArgument(
        "DigitizingSink::append: value row narrower than the tracked "
        "species columns");
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    planes_[i].push_back(values[columns_[i]] >= threshold_);
  }
  ++samples_;
}

logic::BitStream DigitizingSink::take_plane(std::size_t i) {
  if (i >= planes_.size()) {
    throw InvalidArgument("DigitizingSink::take_plane: index out of range");
  }
  return std::move(planes_[i]);
}

}  // namespace glva::store
