#include "store/digitizing_sink.h"

#include <algorithm>

#include "logic/word_pack.h"
#include "obs/metrics.h"
#include "util/errors.h"

namespace glva::store {

DigitizingSink::DigitizingSink(std::vector<std::string> species_ids,
                               double threshold)
    : species_ids_(std::move(species_ids)), threshold_(threshold) {
  if (threshold_ <= 0.0) {
    throw InvalidArgument("DigitizingSink: threshold must be positive");
  }
  if (species_ids_.empty()) {
    throw InvalidArgument("DigitizingSink: no species to track");
  }
}

DigitizingSink::DigitizingSink(std::vector<std::string> species_ids,
                               double threshold, SpillOptions spill)
    : DigitizingSink(std::move(species_ids), threshold) {
  if (spill.path.empty()) {
    throw InvalidArgument("DigitizingSink: spill path must not be empty");
  }
  if (spill.chunk_samples == 0 || spill.chunk_samples % 64 != 0) {
    throw InvalidArgument(
        "DigitizingSink: spill chunk_samples must be a positive multiple "
        "of 64");
  }
  spill_ = std::move(spill);
}

void DigitizingSink::begin(const std::vector<std::string>& species_names) {
  columns_.clear();
  columns_.reserve(species_ids_.size());
  min_row_width_ = 0;
  for (const auto& id : species_ids_) {
    std::size_t column = species_names.size();
    for (std::size_t s = 0; s < species_names.size(); ++s) {
      if (species_names[s] == id) {
        column = s;
        break;
      }
    }
    if (column == species_names.size()) {
      throw InvalidArgument("DigitizingSink: unknown species '" + id + "'");
    }
    columns_.push_back(column);
    min_row_width_ = std::max(min_row_width_, column + 1);
  }
  planes_.assign(species_ids_.size(), logic::BitStream());
  pending_.assign(species_ids_.size(), 0);
  samples_ = 0;
  tail_committed_ = false;

  if (!spill_.path.empty()) {
    spill_offsets_.clear();
    spilled_samples_ = 0;
    spill_file_.open(spill_.path, std::ios::binary | std::ios::in |
                                      std::ios::out | std::ios::trunc);
    if (!spill_file_) {
      throw StorageError("DigitizingSink: cannot open spill file: " +
                         spill_.path);
    }
    // The v2 bit-plane header: same prefix as an analog file, content
    // kind kBits, and the ADC threshold the planes were digitized at —
    // the self-description a replay needs to refuse a ThVAL mismatch.
    std::string header;
    header.append(glvt::kMagic, sizeof glvt::kMagic);
    glvt::append_u32(header, glvt::kVersion);
    glvt::append_u64(header, spill_.seed);
    glvt::append_f64(header, spill_.sampling_period);
    glvt::append_u32(header, static_cast<std::uint32_t>(species_ids_.size()));
    glvt::append_u32(header, spill_.chunk_samples);
    glvt::append_u64(header, 0);  // sample_count, patched in finish()
    glvt::append_u64(header, 0);  // chunk_count, patched in finish()
    glvt::append_u64(header, 0);  // index_offset, patched in finish()
    glvt::append_u32(header,
                     static_cast<std::uint32_t>(glvt::ContentKind::kBits));
    glvt::append_f64(header, threshold_);
    for (const auto& id : species_ids_) {
      glvt::append_u32(header, static_cast<std::uint32_t>(id.size()));
      header.append(id);
    }
    spill_file_.write(header.data(),
                      static_cast<std::streamsize>(header.size()));
    if (!spill_file_) {
      throw StorageError("DigitizingSink: header write failed: " +
                         spill_.path);
    }
    spill_write_offset_ = header.size();
  }
}

void DigitizingSink::spill_chunks(bool final) {
  if (spill_.path.empty()) return;
  // Only whole committed words spill (pending bits stay in their
  // registers); the tail chunk on `final` picks up the ragged end after
  // finish() commits it.
  const std::uint64_t committed =
      final ? samples_ : samples_ - samples_ % logic::BitStream::kWordBits;
  for (;;) {
    const std::uint64_t available = committed - spilled_samples_;
    if (available == 0) break;
    std::uint64_t take = std::min<std::uint64_t>(available,
                                                 spill_.chunk_samples);
    if (take < spill_.chunk_samples && !final) break;
    const std::size_t first_word =
        static_cast<std::size_t>(spilled_samples_ / 64);
    const std::size_t chunk_words = static_cast<std::size_t>((take + 63) / 64);

    spill_chunk_.clear();
    glvt::append_u32(spill_chunk_, glvt::kChunkMagic);
    glvt::append_u32(spill_chunk_, static_cast<std::uint32_t>(take));
    for (const logic::BitStream& plane : planes_) {
      glvt::encode_words_section(plane.words().data() + first_word,
                                 chunk_words, spill_chunk_);
    }
    spill_offsets_.push_back(spill_write_offset_);
    spill_file_.write(spill_chunk_.data(),
                      static_cast<std::streamsize>(spill_chunk_.size()));
    if (!spill_file_) {
      throw StorageError("DigitizingSink: chunk write failed: " + spill_.path);
    }
    spill_write_offset_ += spill_chunk_.size();
    spilled_samples_ += take;

    static obs::Counter& bytes_written =
        obs::counter("store.spill.bytes_written");
    static obs::Counter& chunks_flushed =
        obs::counter("store.spill.chunks_flushed");
    bytes_written.add(spill_chunk_.size());
    chunks_flushed.increment();
  }
}

void DigitizingSink::commit_words() {
  for (std::size_t i = 0; i < planes_.size(); ++i) {
    planes_[i].append_word(pending_[i]);
    pending_[i] = 0;
  }
}

void DigitizingSink::append(double /*time*/,
                            const std::vector<double>& values) {
  if (values.size() < min_row_width_) {
    throw InvalidArgument(
        "DigitizingSink::append: value row narrower than the tracked "
        "species columns");
  }
  const std::size_t bit = samples_ % logic::BitStream::kWordBits;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    pending_[i] |=
        static_cast<std::uint64_t>(values[columns_[i]] >= threshold_) << bit;
  }
  ++samples_;
  if (samples_ % logic::BitStream::kWordBits == 0) {
    commit_words();
    spill_chunks(false);
  }
}

void DigitizingSink::append_block(
    std::span<const double> times,
    std::span<const std::span<const double>> series) {
  constexpr std::size_t kWordBits = logic::BitStream::kWordBits;
  if (series.size() < min_row_width_) {
    throw InvalidArgument(
        "DigitizingSink::append_block: block narrower than the tracked "
        "species columns");
  }
  for (const std::size_t column : columns_) {
    if (series[column].size() != times.size()) {
      throw InvalidArgument(
          "DigitizingSink::append_block: column length differs from time "
          "column");
    }
  }
  const std::size_t n = times.size();
  std::size_t k = 0;
  while (k < n) {
    const std::size_t bit = samples_ % kWordBits;
    if (bit != 0 || n - k < kWordBits) {
      // Fill the pending word up to the next boundary (or the block end).
      const std::size_t m = std::min(kWordBits - bit, n - k);
      for (std::size_t i = 0; i < columns_.size(); ++i) {
        const std::span<const double> column = series[columns_[i]];
        pending_[i] |=
            logic::pack_threshold_bits(column.data() + k, m, threshold_) << bit;
      }
      samples_ += m;
      k += m;
      if (samples_ % kWordBits == 0) commit_words();
    } else {
      // Word-aligned bulk: one dispatched pack_threshold_block call fills
      // each batch (64 comparisons per word, 2/4/8 doubles per compare on
      // the SIMD tiers), committed to the plane with one bulk insert.
      constexpr std::size_t kBatchWords = 64;  // 4096 samples per commit
      std::uint64_t batch[kBatchWords];
      const std::size_t words = (n - k) / kWordBits;
      const logic::simd::KernelSet& kernels = logic::simd::active();
      for (std::size_t i = 0; i < columns_.size(); ++i) {
        const double* base = series[columns_[i]].data() + k;
        for (std::size_t w = 0; w < words;) {
          const std::size_t take = std::min(kBatchWords, words - w);
          kernels.pack_threshold_block(base + w * kWordBits, take, threshold_,
                                       batch);
          planes_[i].append_words(std::span<const std::uint64_t>(batch, take));
          w += take;
        }
      }
      samples_ += words * kWordBits;
      k += words * kWordBits;
    }
  }
  spill_chunks(false);
}

void DigitizingSink::finish() {
  if (tail_committed_) return;
  const std::size_t rem = samples_ % logic::BitStream::kWordBits;
  if (rem != 0) {
    for (std::size_t i = 0; i < planes_.size(); ++i) {
      planes_[i].append_bits(pending_[i], rem);
      pending_[i] = 0;
    }
  }
  tail_committed_ = true;
  if (samples_ > 0) {
    static obs::Counter& samples = obs::counter("store.digitize.samples");
    samples.add(samples_);
  }

  if (!spill_.path.empty()) {
    spill_chunks(true);
    const std::uint64_t index_offset = spill_write_offset_;
    std::string index;
    for (const std::uint64_t offset : spill_offsets_) {
      glvt::append_u64(index, offset);
    }
    spill_file_.write(index.data(),
                      static_cast<std::streamsize>(index.size()));
    // Same crash-safety patch order as SpillSink: counts first,
    // index_offset (the finished-file sentinel) last.
    std::string patch;
    glvt::append_u64(patch, static_cast<std::uint64_t>(samples_));
    glvt::append_u64(patch, static_cast<std::uint64_t>(spill_offsets_.size()));
    spill_file_.seekp(static_cast<std::streamoff>(glvt::kSampleCountOffset));
    spill_file_.write(patch.data(), static_cast<std::streamsize>(patch.size()));
    patch.clear();
    glvt::append_u64(patch, index_offset);
    spill_file_.seekp(static_cast<std::streamoff>(glvt::kIndexOffsetOffset));
    spill_file_.write(patch.data(), static_cast<std::streamsize>(patch.size()));
    spill_file_.flush();
    if (!spill_file_) {
      throw StorageError("DigitizingSink: finalize failed: " + spill_.path);
    }
    spill_file_.close();
  }
}

logic::BitStream DigitizingSink::take_plane(std::size_t i) {
  if (i >= planes_.size()) {
    throw InvalidArgument("DigitizingSink::take_plane: index out of range");
  }
  return std::move(planes_[i]);
}

}  // namespace glva::store
