#include "store/digitizing_sink.h"

#include <algorithm>

#include "logic/word_pack.h"
#include "obs/metrics.h"
#include "util/errors.h"

namespace glva::store {

DigitizingSink::DigitizingSink(std::vector<std::string> species_ids,
                               double threshold)
    : species_ids_(std::move(species_ids)), threshold_(threshold) {
  if (threshold_ <= 0.0) {
    throw InvalidArgument("DigitizingSink: threshold must be positive");
  }
  if (species_ids_.empty()) {
    throw InvalidArgument("DigitizingSink: no species to track");
  }
}

void DigitizingSink::begin(const std::vector<std::string>& species_names) {
  columns_.clear();
  columns_.reserve(species_ids_.size());
  min_row_width_ = 0;
  for (const auto& id : species_ids_) {
    std::size_t column = species_names.size();
    for (std::size_t s = 0; s < species_names.size(); ++s) {
      if (species_names[s] == id) {
        column = s;
        break;
      }
    }
    if (column == species_names.size()) {
      throw InvalidArgument("DigitizingSink: unknown species '" + id + "'");
    }
    columns_.push_back(column);
    min_row_width_ = std::max(min_row_width_, column + 1);
  }
  planes_.assign(species_ids_.size(), logic::BitStream());
  pending_.assign(species_ids_.size(), 0);
  samples_ = 0;
  tail_committed_ = false;
}

void DigitizingSink::commit_words() {
  for (std::size_t i = 0; i < planes_.size(); ++i) {
    planes_[i].append_word(pending_[i]);
    pending_[i] = 0;
  }
}

void DigitizingSink::append(double /*time*/,
                            const std::vector<double>& values) {
  if (values.size() < min_row_width_) {
    throw InvalidArgument(
        "DigitizingSink::append: value row narrower than the tracked "
        "species columns");
  }
  const std::size_t bit = samples_ % logic::BitStream::kWordBits;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    pending_[i] |=
        static_cast<std::uint64_t>(values[columns_[i]] >= threshold_) << bit;
  }
  ++samples_;
  if (samples_ % logic::BitStream::kWordBits == 0) commit_words();
}

void DigitizingSink::append_block(
    std::span<const double> times,
    std::span<const std::span<const double>> series) {
  constexpr std::size_t kWordBits = logic::BitStream::kWordBits;
  if (series.size() < min_row_width_) {
    throw InvalidArgument(
        "DigitizingSink::append_block: block narrower than the tracked "
        "species columns");
  }
  for (const std::size_t column : columns_) {
    if (series[column].size() != times.size()) {
      throw InvalidArgument(
          "DigitizingSink::append_block: column length differs from time "
          "column");
    }
  }
  const std::size_t n = times.size();
  std::size_t k = 0;
  while (k < n) {
    const std::size_t bit = samples_ % kWordBits;
    if (bit != 0 || n - k < kWordBits) {
      // Fill the pending word up to the next boundary (or the block end).
      const std::size_t m = std::min(kWordBits - bit, n - k);
      for (std::size_t i = 0; i < columns_.size(); ++i) {
        const std::span<const double> column = series[columns_[i]];
        pending_[i] |=
            logic::pack_threshold_bits(column.data() + k, m, threshold_) << bit;
      }
      samples_ += m;
      k += m;
      if (samples_ % kWordBits == 0) commit_words();
    } else {
      // Word-aligned bulk: one dispatched pack_threshold_block call fills
      // each batch (64 comparisons per word, 2/4/8 doubles per compare on
      // the SIMD tiers), committed to the plane with one bulk insert.
      constexpr std::size_t kBatchWords = 64;  // 4096 samples per commit
      std::uint64_t batch[kBatchWords];
      const std::size_t words = (n - k) / kWordBits;
      const logic::simd::KernelSet& kernels = logic::simd::active();
      for (std::size_t i = 0; i < columns_.size(); ++i) {
        const double* base = series[columns_[i]].data() + k;
        for (std::size_t w = 0; w < words;) {
          const std::size_t take = std::min(kBatchWords, words - w);
          kernels.pack_threshold_block(base + w * kWordBits, take, threshold_,
                                       batch);
          planes_[i].append_words(std::span<const std::uint64_t>(batch, take));
          w += take;
        }
      }
      samples_ += words * kWordBits;
      k += words * kWordBits;
    }
  }
}

void DigitizingSink::finish() {
  if (tail_committed_) return;
  const std::size_t rem = samples_ % logic::BitStream::kWordBits;
  if (rem != 0) {
    for (std::size_t i = 0; i < planes_.size(); ++i) {
      planes_[i].append_bits(pending_[i], rem);
      pending_[i] = 0;
    }
  }
  tail_committed_ = true;
  if (samples_ > 0) {
    static obs::Counter& samples = obs::counter("store.digitize.samples");
    samples.add(samples_);
  }
}

logic::BitStream DigitizingSink::take_plane(std::size_t i) {
  if (i >= planes_.size()) {
    throw InvalidArgument("DigitizingSink::take_plane: index out of range");
  }
  return std::move(planes_[i]);
}

}  // namespace glva::store
