#pragma once

#include <span>
#include <string>
#include <vector>

/// Streaming trace storage — the bounded-memory I/O layer between the
/// stochastic simulators and everything that consumes their samples. The
/// simulator no longer has to materialize a full `sim::Trace` before the
/// analysis stage sees a single sample: `sim::TraceSampler` pushes every
/// grid row into a `TraceSink`, and the sink decides what to keep —
/// everything in RAM (`MemorySink`, the reference path), chunked on disk
/// (`SpillSink`, the `.glvt` format), or only the digitized bit-planes
/// (`DigitizingSink`, the fused sampler→ADC path for analysis-only runs).
/// See `docs/STORAGE.md` for the sink model and the memory budget of
/// 10^7-sample runs.
namespace glva::store {

/// Receiver of uniformly sampled simulation rows. The producer calls
/// `begin` exactly once, then any interleaving of `append` (one row) and
/// `append_block` (a column-wise run of rows) in time order, then `finish`
/// exactly once. Row and block deliveries are equivalent by contract: a
/// sink must produce bit-identical state for the same samples however they
/// were sliced into calls (the equivalence `tests/test_store.cpp` fuzzes).
/// Sinks are single-run, single-threaded objects: the exec/ runtime gives
/// every parallel job its own sink and commits results in job-index order,
/// so the determinism contract of `exec::ParallelRunner` is untouched by
/// where samples land.
class TraceSink {
public:
  virtual ~TraceSink() = default;

  /// Start a stream: one column per species, in network order. Called
  /// before the first `append` / `append_block`.
  virtual void begin(const std::vector<std::string>& species_names) = 0;

  /// One sample row on the uniform time grid. `values` holds at least one
  /// amount per declared species (extra trailing entries are ignored,
  /// mirroring `sim::Trace::append`).
  virtual void append(double time, const std::vector<double>& values) = 0;

  /// A block of consecutive grid samples, column-wise: `series` holds at
  /// least one column per declared species (extra trailing columns are
  /// ignored), each exactly `times.size()` values long. Semantically
  /// identical to `times.size()` `append` calls in order — the base
  /// implementation is exactly that row-wise loop — but sinks override it
  /// to move whole columns at once: `MemorySink` bulk-copies,
  /// `SpillSink` encodes full chunks, and `DigitizingSink` packs 64
  /// samples per BitStream word. This is the fast path `sim::TraceSampler`
  /// and `SpillReader::replay` drive.
  virtual void append_block(std::span<const double> times,
                            std::span<const std::span<const double>> series);

  /// Stream complete: flush buffers, seal files, release what can be
  /// released. No `append` / `append_block` may follow.
  virtual void finish() = 0;
};

/// The sink families selectable per experiment (`ExperimentConfig::sink`,
/// CLI `--sink mem|spill|digitize`). All three produce bit-identical
/// analysis results for the same seed; they differ in what they keep
/// resident and what survives the run on disk.
enum class SinkKind {
  kMemory,    ///< materialize a sim::Trace in RAM (reference path)
  kSpill,     ///< chunked .glvt file on disk, bounded RAM (SpillSink)
  kDigitize,  ///< threshold into bit-planes on the fly (DigitizingSink)
};

/// Stable name ("mem" / "spill" / "digitize") and its inverse; parse
/// accepts "memory" as an alias for "mem" and throws glva::InvalidArgument
/// for anything else.
[[nodiscard]] const char* sink_kind_name(SinkKind kind);
[[nodiscard]] SinkKind parse_sink_kind(const std::string& name);

}  // namespace glva::store
