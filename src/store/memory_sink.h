#pragma once

#include "sim/trace.h"
#include "store/trace_sink.h"

namespace glva::store {

/// The reference sink: materialize every row into a `sim::Trace`, exactly
/// as the pre-streaming simulator did. `run(...)` on every simulator is a
/// thin wrapper over this sink, so the memory path and the historical
/// "return a Trace" contract are one and the same — bit-identical by
/// construction, and the baseline the spill and digitizing sinks are
/// tested against.
class MemorySink final : public TraceSink {
public:
  void begin(const std::vector<std::string>& species_names) override {
    trace_ = sim::Trace(species_names);
  }

  void append(double time, const std::vector<double>& values) override {
    trace_.append(time, values);
  }

  void append_block(std::span<const double> times,
                    std::span<const std::span<const double>> series) override {
    trace_.append_block(times, series);
  }

  void finish() override {}

  /// The accumulated trace (valid after finish(); empty before begin()).
  [[nodiscard]] const sim::Trace& trace() const noexcept { return trace_; }

  /// Move the accumulated trace out.
  [[nodiscard]] sim::Trace take() noexcept { return std::move(trace_); }

private:
  sim::Trace trace_;
};

}  // namespace glva::store
