#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "logic/bit_stream.h"
#include "store/glvt.h"
#include "store/trace_sink.h"

namespace glva::store {

/// The fused sampler→ADC sink: each incoming sample is thresholded into
/// per-species `logic::BitStream` planes as it is produced, so an
/// analysis-only run never allocates the double-precision trace at all —
/// resident memory is samples / 8 bytes per tracked species instead of
/// samples · 8 bytes per *model* species. The comparison is the ADC's
/// (`value >= threshold`, inclusive; see `core::adc`), applied to exactly
/// the doubles the memory path would have stored, so the resulting planes
/// are bit-identical to `core::digitize_packed` over the materialized
/// trace — the equivalence `tests/test_store.cpp` pins.
///
/// Bits are word-buffered (the `adc_packed` trick): each plane accumulates
/// 64 comparisons in a pending register and commits whole BitStream words,
/// one store per 64 samples instead of a read-modify-write per bit;
/// `append_block` packs straight from the column spans. The partial tail
/// word is committed by `finish()`, so planes are complete only after the
/// stream is finished.
class DigitizingSink final : public TraceSink {
public:
  /// Optional spill tee: when configured, the committed plane words are
  /// also streamed chunk-wise into a v2 bit-plane `.glvt` file (header
  /// `content_kind = kBits`, `kWords` sections — see `store/glvt.h`), so
  /// a digitized run leaves a replayable artifact 64× smaller than the
  /// analog spill. The words are written straight from the in-memory
  /// planes — no re-encoding, no extra buffering — and `SpillReader::
  /// read_planes` hands them back bit-identically with no re-thresholding.
  struct SpillOptions {
    std::string path;
    /// Samples per chunk; must be a positive multiple of 64.
    std::uint32_t chunk_samples = glvt::kDefaultChunkSamples;
    /// Recorded in the header (self-describing file, like SpillSink's).
    std::uint64_t seed = 0;
    double sampling_period = 1.0;
  };

  /// Track `species_ids` (any order, duplicates allowed — each entry gets
  /// its own plane) at ThVAL `threshold` (molecules, must be positive;
  /// throws glva::InvalidArgument otherwise).
  DigitizingSink(std::vector<std::string> species_ids, double threshold);

  /// Same, with the spill tee enabled. Throws glva::InvalidArgument for a
  /// bad chunk size or an empty path; the file is created in begin().
  DigitizingSink(std::vector<std::string> species_ids, double threshold,
                 SpillOptions spill);

  /// Resolves the tracked ids against the stream's species columns;
  /// throws glva::InvalidArgument for an unknown id.
  void begin(const std::vector<std::string>& species_names) override;

  void append(double time, const std::vector<double>& values) override;

  /// Block fast path: packs each tracked column 64 samples per word
  /// directly from the spans, bit-identical to the row path. Throws
  /// glva::InvalidArgument on a block narrower than the tracked columns.
  void append_block(std::span<const double> times,
                    std::span<const std::span<const double>> series) override;

  /// Commits the pending partial word of every plane; with the spill tee,
  /// also flushes the tail chunk, writes the chunk index, and finalizes
  /// the `.glvt` file (throws glva::StorageError on write failure).
  /// Planes are complete (and word counts final) only after this.
  void finish() override;

  /// The spill tee's file path ("" when the tee is off).
  [[nodiscard]] const std::string& spill_path() const noexcept {
    return spill_.path;
  }

  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] const std::vector<std::string>& species_ids() const noexcept {
    return species_ids_;
  }

  /// The digitized planes, one per tracked id, in construction order
  /// (complete after finish(); mid-stream they hold only whole committed
  /// words).
  [[nodiscard]] const std::vector<logic::BitStream>& planes() const noexcept {
    return planes_;
  }

  /// Move plane `i` out (the zero-copy handoff into PackedDigitalData).
  /// Throws glva::InvalidArgument when i >= planes().size().
  [[nodiscard]] logic::BitStream take_plane(std::size_t i);

private:
  /// Commit every plane's pending word (precondition: samples_ % 64 == 0
  /// and 64 pending bits).
  void commit_words();

  /// Stream every complete chunk of committed plane words to the spill
  /// file; `final` also flushes the ragged tail chunk. No-op without the
  /// tee.
  void spill_chunks(bool final);

  std::vector<std::string> species_ids_;
  double threshold_;
  std::vector<std::size_t> columns_;  ///< tracked id -> species column
  std::size_t min_row_width_ = 0;     ///< 1 + max(columns_), row precondition
  std::vector<logic::BitStream> planes_;
  std::vector<std::uint64_t> pending_;  ///< one partial word per plane
  std::size_t samples_ = 0;  ///< total samples, committed + pending
  bool tail_committed_ = false;

  // Spill tee state (inactive when spill_.path is empty).
  SpillOptions spill_;
  std::fstream spill_file_;
  std::vector<std::uint64_t> spill_offsets_;  ///< chunk file offsets
  std::uint64_t spilled_samples_ = 0;  ///< samples already on disk
  std::uint64_t spill_write_offset_ = 0;
  std::string spill_chunk_;  ///< chunk build buffer, reused
};

}  // namespace glva::store
