#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "logic/bit_stream.h"
#include "store/trace_sink.h"

namespace glva::store {

/// The fused sampler→ADC sink: each incoming sample is thresholded into
/// per-species `logic::BitStream` planes as it is produced, so an
/// analysis-only run never allocates the double-precision trace at all —
/// resident memory is samples / 8 bytes per tracked species instead of
/// samples · 8 bytes per *model* species. The comparison is the ADC's
/// (`value >= threshold`, inclusive; see `core::adc`), applied to exactly
/// the doubles the memory path would have stored, so the resulting planes
/// are bit-identical to `core::digitize_packed` over the materialized
/// trace — the equivalence `tests/test_store.cpp` pins.
///
/// Bits are word-buffered (the `adc_packed` trick): each plane accumulates
/// 64 comparisons in a pending register and commits whole BitStream words,
/// one store per 64 samples instead of a read-modify-write per bit;
/// `append_block` packs straight from the column spans. The partial tail
/// word is committed by `finish()`, so planes are complete only after the
/// stream is finished.
class DigitizingSink final : public TraceSink {
public:
  /// Track `species_ids` (any order, duplicates allowed — each entry gets
  /// its own plane) at ThVAL `threshold` (molecules, must be positive;
  /// throws glva::InvalidArgument otherwise).
  DigitizingSink(std::vector<std::string> species_ids, double threshold);

  /// Resolves the tracked ids against the stream's species columns;
  /// throws glva::InvalidArgument for an unknown id.
  void begin(const std::vector<std::string>& species_names) override;

  void append(double time, const std::vector<double>& values) override;

  /// Block fast path: packs each tracked column 64 samples per word
  /// directly from the spans, bit-identical to the row path. Throws
  /// glva::InvalidArgument on a block narrower than the tracked columns.
  void append_block(std::span<const double> times,
                    std::span<const std::span<const double>> series) override;

  /// Commits the pending partial word of every plane. Planes are complete
  /// (and word counts final) only after this.
  void finish() override;

  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] const std::vector<std::string>& species_ids() const noexcept {
    return species_ids_;
  }

  /// The digitized planes, one per tracked id, in construction order
  /// (complete after finish(); mid-stream they hold only whole committed
  /// words).
  [[nodiscard]] const std::vector<logic::BitStream>& planes() const noexcept {
    return planes_;
  }

  /// Move plane `i` out (the zero-copy handoff into PackedDigitalData).
  /// Throws glva::InvalidArgument when i >= planes().size().
  [[nodiscard]] logic::BitStream take_plane(std::size_t i);

private:
  /// Commit every plane's pending word (precondition: samples_ % 64 == 0
  /// and 64 pending bits).
  void commit_words();

  std::vector<std::string> species_ids_;
  double threshold_;
  std::vector<std::size_t> columns_;  ///< tracked id -> species column
  std::size_t min_row_width_ = 0;     ///< 1 + max(columns_), row precondition
  std::vector<logic::BitStream> planes_;
  std::vector<std::uint64_t> pending_;  ///< one partial word per plane
  std::size_t samples_ = 0;  ///< total samples, committed + pending
  bool tail_committed_ = false;
};

}  // namespace glva::store
