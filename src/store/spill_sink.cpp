#include "store/spill_sink.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define GLVA_SPILL_FALLOCATE 1
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "util/errors.h"

namespace glva::store {

namespace {

/// The bounded queue depth: one chunk on disk's time, one encoded and
/// waiting, while the producer fills the third buffer — classic double
/// buffering. Deeper queues only add memory; the writer is either keeping
/// up (queue empty) or the disk is the bottleneck (queue full either way).
constexpr std::size_t kQueueDepth = 2;

/// Preallocation stride for the writer thread's fallocate pass: large
/// enough to amortize the syscall across many chunks, small enough that
/// the finish-time trim never strands much.
constexpr std::uint64_t kPreallocBytes = 8ull << 20;  // 8 MiB

bool sync_spill_requested() {
  const char* env = std::getenv("GLVA_SYNC_SPILL");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

}  // namespace

SpillSink::SpillSink(std::string path) : SpillSink(std::move(path), Options{}) {}

SpillSink::SpillSink(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  if (options_.chunk_samples == 0 || options_.chunk_samples % 64 != 0) {
    throw InvalidArgument(
        "SpillSink: chunk_samples must be a positive multiple of 64");
  }
  if (options_.format_version < glvt::kMinVersion ||
      options_.format_version > glvt::kVersion) {
    throw InvalidArgument("SpillSink: unwritable .glvt format version " +
                          std::to_string(options_.format_version));
  }
}

SpillSink::~SpillSink() {
  // Unwind path (finish() never ran, or threw): the writer must not
  // outlive the stream it writes to. The file stays unfinished —
  // index_offset is still zero, so SpillReader rejects it.
  if (writer_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    queue_has_data_.notify_one();
    writer_.join();
  }
#if GLVA_SPILL_FALLOCATE
  if (prealloc_fd_ >= 0) ::close(prealloc_fd_);
#endif
}

void SpillSink::begin(const std::vector<std::string>& species_names) {
  species_names_ = species_names;
  series_.assign(species_names.size(), {});
  times_.clear();
  times_.reserve(options_.chunk_samples);
  for (auto& series : series_) series.reserve(options_.chunk_samples);

  file_.open(path_, std::ios::binary | std::ios::in | std::ios::out |
                        std::ios::trunc);
  if (!file_) {
    throw StorageError("SpillSink: cannot open spill file: " + path_);
  }

  std::string header;
  header.append(glvt::kMagic, sizeof glvt::kMagic);
  glvt::append_u32(header, options_.format_version);
  glvt::append_u64(header, options_.seed);
  glvt::append_f64(header, options_.sampling_period);
  glvt::append_u32(header, static_cast<std::uint32_t>(species_names.size()));
  glvt::append_u32(header, options_.chunk_samples);
  glvt::append_u64(header, 0);  // sample_count, patched in finish()
  glvt::append_u64(header, 0);  // chunk_count, patched in finish()
  glvt::append_u64(header, 0);  // index_offset, patched in finish()
  if (options_.format_version >= 2) {
    glvt::append_u32(header,
                     static_cast<std::uint32_t>(glvt::ContentKind::kAnalog));
    glvt::append_f64(header, 0.0);  // threshold: unused for analog content
  }
  for (const auto& name : species_names) {
    glvt::append_u32(header, static_cast<std::uint32_t>(name.size()));
    header.append(name);
  }
  file_.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!file_) {
    throw StorageError("SpillSink: header write failed: " + path_);
  }
  write_offset_ = header.size();
  written_ = header.size();
  allocated_ = header.size();

  async_ = !sync_spill_requested();
  if (async_) {
#if GLVA_SPILL_FALLOCATE
    prealloc_fd_ = ::open(path_.c_str(), O_WRONLY);
#endif
    // The fstream handoff to the writer thread: everything the producer
    // wrote above happens-before the thread's first write.
    writer_ = std::thread([this] { writer_main(); });
  }
}

void SpillSink::throw_if_writer_failed() {
  if (!writer_failed_.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(mu_);
  throw StorageError(writer_error_);
}

void SpillSink::append(double time, const std::vector<double>& values) {
  if (values.size() < species_names_.size()) {
    throw InvalidArgument(
        "SpillSink::append: value row narrower than species list");
  }
  throw_if_writer_failed();
  times_.push_back(time);
  for (std::size_t i = 0; i < series_.size(); ++i) {
    series_[i].push_back(values[i]);
  }
  ++sample_count_;
  if (times_.size() == options_.chunk_samples) flush_chunk();
}

void SpillSink::append_block(std::span<const double> times,
                             std::span<const std::span<const double>> series) {
  if (series.size() < species_names_.size()) {
    throw InvalidArgument(
        "SpillSink::append_block: block narrower than species list");
  }
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series[i].size() != times.size()) {
      throw InvalidArgument(
          "SpillSink::append_block: column length differs from time column");
    }
  }
  throw_if_writer_failed();
  std::size_t offset = 0;
  while (offset < times.size()) {
    const std::size_t room = options_.chunk_samples - times_.size();
    const std::size_t take = std::min(room, times.size() - offset);
    times_.insert(times_.end(), times.begin() + offset,
                  times.begin() + offset + take);
    for (std::size_t i = 0; i < series_.size(); ++i) {
      series_[i].insert(series_[i].end(), series[i].begin() + offset,
                        series[i].begin() + offset + take);
    }
    sample_count_ += take;
    offset += take;
    if (times_.size() == options_.chunk_samples) flush_chunk();
  }
}

void SpillSink::flush_chunk() {
  if (times_.empty()) return;
  chunk_offsets_.push_back(write_offset_);

  std::string chunk;
  {
    // Recycled from the writer thread: keeps the encode allocation-free
    // after the first two chunks.
    const std::lock_guard<std::mutex> lock(mu_);
    if (!free_bufs_.empty()) {
      chunk = std::move(free_bufs_.back());
      free_bufs_.pop_back();
      chunk.clear();
    }
  }
  glvt::append_u32(chunk, glvt::kChunkMagic);
  glvt::append_u32(chunk, static_cast<std::uint32_t>(times_.size()));
  if (options_.format_version >= 2) {
    const std::uint64_t first_sample = sample_count_ - times_.size();
    const std::size_t before = chunk.size();
    if (glvt::encode_time_section(times_, first_sample,
                                  options_.sampling_period, chunk)) {
      static obs::Counter& bytes_saved = obs::counter("spill.bytes_saved");
      // What the v1 layout would have cost (times never RLE) minus the
      // grid section actually emitted.
      const std::size_t raw_cost =
          1 + sizeof(std::uint32_t) + times_.size() * sizeof(double);
      bytes_saved.add(raw_cost - (chunk.size() - before));
    }
  } else {
    glvt::encode_section(times_, chunk);
  }
  for (const auto& series : series_) glvt::encode_section(series, chunk);

  write_offset_ += chunk.size();
  static obs::Counter& bytes_written =
      obs::counter("store.spill.bytes_written");
  static obs::Counter& chunks_flushed =
      obs::counter("store.spill.chunks_flushed");
  bytes_written.add(chunk.size());
  chunks_flushed.increment();

  submit(std::move(chunk));
  times_.clear();
  for (auto& series : series_) series.clear();
}

void SpillSink::submit(std::string&& chunk) {
  if (!async_) {
    file_.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    if (!file_) {
      throw StorageError("SpillSink: chunk write failed: " + path_);
    }
    const std::lock_guard<std::mutex> lock(mu_);
    free_bufs_.push_back(std::move(chunk));
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  {
    // Stall time until a queue slot frees up — the histogram that shows
    // whether the disk or the simulation is the bottleneck. Recorded for
    // every submission (near-zero when the writer keeps up).
    static obs::Histogram& wait_us = obs::histogram("spill.flush_wait_us");
    const obs::ScopedLatency latency(wait_us);
    queue_has_space_.wait(lock, [this] {
      return queue_.size() < kQueueDepth ||
             writer_failed_.load(std::memory_order_relaxed);
    });
  }
  if (writer_failed_.load(std::memory_order_relaxed)) {
    throw StorageError(writer_error_);
  }
  queue_.push_back(std::move(chunk));
  lock.unlock();
  queue_has_data_.notify_one();
}

void SpillSink::writer_main() {
  bool failed = false;
  for (;;) {
    std::string chunk;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_has_data_.wait(lock,
                           [this] { return !queue_.empty() || stop_; });
      if (queue_.empty()) return;  // stop_ set and fully drained
      chunk = std::move(queue_.front());
      queue_.pop_front();
    }

    std::string error;
    if (!failed) {
      preallocate(written_ + chunk.size());
      file_.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      if (!file_) {
        failed = true;
        error = "SpillSink: chunk write failed: " + path_;
      } else {
        written_ += chunk.size();
      }
    }
    // After a failure the loop keeps draining (and discarding) chunks so
    // a producer blocked on a full queue always wakes up.

    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!error.empty() && writer_error_.empty()) {
        writer_error_ = error;
        writer_failed_.store(true, std::memory_order_relaxed);
      }
      free_bufs_.push_back(std::move(chunk));
    }
    queue_has_space_.notify_one();
  }
}

void SpillSink::preallocate(std::uint64_t needed) {
#if GLVA_SPILL_FALLOCATE
  if (prealloc_fd_ < 0 || needed <= allocated_) return;
  const std::uint64_t grow = std::max(needed - allocated_, kPreallocBytes);
  if (::posix_fallocate(prealloc_fd_, static_cast<off_t>(allocated_),
                        static_cast<off_t>(grow)) == 0) {
    allocated_ += grow;
  } else {
    // Advisory: filesystems without extent support just write unassisted.
    ::close(prealloc_fd_);
    prealloc_fd_ = -1;
  }
#else
  static_cast<void>(needed);
#endif
}

void SpillSink::join_writer() {
  if (!writer_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_has_data_.notify_one();
  writer_.join();
}

void SpillSink::finish() {
  if (finished_) return;
  flush_chunk();
  join_writer();  // drains the queue; everything the writer did is visible
  throw_if_writer_failed();

  const std::uint64_t index_offset = write_offset_;
  std::string index;
  for (const std::uint64_t offset : chunk_offsets_) {
    glvt::append_u64(index, offset);
  }
  file_.write(index.data(), static_cast<std::streamsize>(index.size()));

  // Patch the three header fields whose zero value marks an unfinished
  // file; index_offset goes last, so a crash mid-patch still reads as
  // unfinished.
  std::string patch;
  glvt::append_u64(patch, sample_count_);
  glvt::append_u64(patch, static_cast<std::uint64_t>(chunk_offsets_.size()));
  file_.seekp(static_cast<std::streamoff>(glvt::kSampleCountOffset));
  file_.write(patch.data(), static_cast<std::streamsize>(patch.size()));
  patch.clear();
  glvt::append_u64(patch, index_offset);
  file_.seekp(static_cast<std::streamoff>(glvt::kIndexOffsetOffset));
  file_.write(patch.data(), static_cast<std::streamsize>(patch.size()));

  file_.flush();
  if (!file_) {
    throw StorageError("SpillSink: finalize failed: " + path_);
  }
  file_.close();
#if GLVA_SPILL_FALLOCATE
  if (prealloc_fd_ >= 0) {
    // Trim the fallocate overshoot back to the real end of the file; the
    // index must stay the last thing a reader sees.
    const std::uint64_t end = index_offset + index.size();
    if (allocated_ > end) {
      static_cast<void>(::ftruncate(prealloc_fd_, static_cast<off_t>(end)));
    }
    ::close(prealloc_fd_);
    prealloc_fd_ = -1;
  }
#endif
  finished_ = true;
}

}  // namespace glva::store
