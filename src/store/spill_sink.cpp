#include "store/spill_sink.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "util/errors.h"

namespace glva::store {

SpillSink::SpillSink(std::string path) : SpillSink(std::move(path), Options{}) {}

SpillSink::SpillSink(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  if (options_.chunk_samples == 0 || options_.chunk_samples % 64 != 0) {
    throw InvalidArgument(
        "SpillSink: chunk_samples must be a positive multiple of 64");
  }
}

void SpillSink::begin(const std::vector<std::string>& species_names) {
  species_names_ = species_names;
  series_.assign(species_names.size(), {});
  times_.clear();
  times_.reserve(options_.chunk_samples);
  for (auto& series : series_) series.reserve(options_.chunk_samples);

  file_.open(path_, std::ios::binary | std::ios::in | std::ios::out |
                        std::ios::trunc);
  if (!file_) {
    throw StorageError("SpillSink: cannot open spill file: " + path_);
  }

  std::string header;
  header.append(glvt::kMagic, sizeof glvt::kMagic);
  glvt::append_u32(header, glvt::kVersion);
  glvt::append_u64(header, options_.seed);
  glvt::append_f64(header, options_.sampling_period);
  glvt::append_u32(header, static_cast<std::uint32_t>(species_names.size()));
  glvt::append_u32(header, options_.chunk_samples);
  glvt::append_u64(header, 0);  // sample_count, patched in finish()
  glvt::append_u64(header, 0);  // chunk_count, patched in finish()
  glvt::append_u64(header, 0);  // index_offset, patched in finish()
  for (const auto& name : species_names) {
    glvt::append_u32(header, static_cast<std::uint32_t>(name.size()));
    header.append(name);
  }
  file_.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!file_) {
    throw StorageError("SpillSink: header write failed: " + path_);
  }
}

void SpillSink::append(double time, const std::vector<double>& values) {
  if (values.size() < species_names_.size()) {
    throw InvalidArgument(
        "SpillSink::append: value row narrower than species list");
  }
  times_.push_back(time);
  for (std::size_t i = 0; i < series_.size(); ++i) {
    series_[i].push_back(values[i]);
  }
  ++sample_count_;
  if (times_.size() == options_.chunk_samples) flush_chunk();
}

void SpillSink::append_block(std::span<const double> times,
                             std::span<const std::span<const double>> series) {
  if (series.size() < species_names_.size()) {
    throw InvalidArgument(
        "SpillSink::append_block: block narrower than species list");
  }
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series[i].size() != times.size()) {
      throw InvalidArgument(
          "SpillSink::append_block: column length differs from time column");
    }
  }
  std::size_t offset = 0;
  while (offset < times.size()) {
    const std::size_t room = options_.chunk_samples - times_.size();
    const std::size_t take = std::min(room, times.size() - offset);
    times_.insert(times_.end(), times.begin() + offset,
                  times.begin() + offset + take);
    for (std::size_t i = 0; i < series_.size(); ++i) {
      series_[i].insert(series_[i].end(), series[i].begin() + offset,
                        series[i].begin() + offset + take);
    }
    sample_count_ += take;
    offset += take;
    if (times_.size() == options_.chunk_samples) flush_chunk();
  }
}

void SpillSink::flush_chunk() {
  if (times_.empty()) return;
  chunk_offsets_.push_back(static_cast<std::uint64_t>(file_.tellp()));

  std::string chunk;
  glvt::append_u32(chunk, glvt::kChunkMagic);
  glvt::append_u32(chunk, static_cast<std::uint32_t>(times_.size()));
  glvt::encode_section(times_, chunk);
  for (const auto& series : series_) glvt::encode_section(series, chunk);

  file_.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  if (!file_) {
    throw StorageError("SpillSink: chunk write failed: " + path_);
  }
  static obs::Counter& bytes_written =
      obs::counter("store.spill.bytes_written");
  static obs::Counter& chunks_flushed =
      obs::counter("store.spill.chunks_flushed");
  bytes_written.add(chunk.size());
  chunks_flushed.increment();
  times_.clear();
  for (auto& series : series_) series.clear();
}

void SpillSink::finish() {
  if (finished_) return;
  flush_chunk();

  const auto index_offset = static_cast<std::uint64_t>(file_.tellp());
  std::string index;
  for (const std::uint64_t offset : chunk_offsets_) {
    glvt::append_u64(index, offset);
  }
  file_.write(index.data(), static_cast<std::streamsize>(index.size()));

  // Patch the three header fields whose zero value marks an unfinished
  // file; index_offset goes last, so a crash mid-patch still reads as
  // unfinished.
  std::string patch;
  glvt::append_u64(patch, sample_count_);
  glvt::append_u64(patch, static_cast<std::uint64_t>(chunk_offsets_.size()));
  file_.seekp(static_cast<std::streamoff>(glvt::kSampleCountOffset));
  file_.write(patch.data(), static_cast<std::streamsize>(patch.size()));
  patch.clear();
  glvt::append_u64(patch, index_offset);
  file_.seekp(static_cast<std::streamoff>(glvt::kIndexOffsetOffset));
  file_.write(patch.data(), static_cast<std::streamsize>(patch.size()));

  file_.flush();
  if (!file_) {
    throw StorageError("SpillSink: finalize failed: " + path_);
  }
  file_.close();
  finished_ = true;
}

}  // namespace glva::store
