#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.h"
#include "store/trace_sink.h"

namespace glva::store {

/// Reader for `.glvt` spill files (see `store/glvt.h` for the layout).
/// Opening validates the header (magic, version, the finished-file
/// sentinel) and loads the chunk index; samples are then pulled back
/// either chunk-at-a-time (`read_chunk`, `replay` — bounded memory) or
/// all at once (`read_all` — re-materializes the `sim::Trace` for the
/// figure renderers and the reference analysis path).
class SpillReader {
public:
  /// One decoded chunk: `chunk_capacity()` rows for every chunk but the
  /// last. `first_sample` is the global index of row 0 (always a multiple
  /// of the chunk capacity, hence of 64 — word-aligned for BitStream
  /// consumers).
  struct Chunk {
    std::uint64_t first_sample = 0;
    std::vector<double> times;
    std::vector<std::vector<double>> series;  ///< [species][row]
  };

  /// Opens and validates. Throws glva::StorageError for an unreadable
  /// path, wrong magic, unsupported version, an unfinished/truncated file,
  /// or a chunk index that does not fit the file.
  explicit SpillReader(std::string path);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::vector<std::string>& species_names()
      const noexcept {
    return species_names_;
  }
  [[nodiscard]] std::uint64_t sample_count() const noexcept {
    return sample_count_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunk_offsets_.size();
  }
  [[nodiscard]] std::uint32_t chunk_capacity() const noexcept {
    return chunk_capacity_;
  }
  [[nodiscard]] double sampling_period() const noexcept {
    return sampling_period_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Decode chunk `index`. Throws glva::InvalidArgument for an
  /// out-of-range index and glva::StorageError for a corrupt chunk.
  [[nodiscard]] Chunk read_chunk(std::size_t index);

  /// Stream every sample, in order, into another sink (begin → append per
  /// row → finish). Replaying into a `MemorySink` reproduces the original
  /// trace bit for bit; replaying into a `DigitizingSink` digitizes a
  /// spilled trace without ever materializing it.
  void replay(TraceSink& sink);

  /// Re-materialize the full trace (replay into a MemorySink).
  [[nodiscard]] sim::Trace read_all();

  /// Stream the trace as CSV, byte-identical to `sim::Trace::to_csv()` on
  /// the re-materialized trace, without holding more than one chunk.
  void write_csv(std::ostream& out);

private:
  std::string path_;
  std::ifstream file_;
  std::vector<std::string> species_names_;
  std::vector<std::uint64_t> chunk_offsets_;
  std::uint64_t sample_count_ = 0;
  std::uint64_t index_offset_ = 0;
  std::uint32_t chunk_capacity_ = 0;
  double sampling_period_ = 1.0;
  std::uint64_t seed_ = 0;
};

}  // namespace glva::store
