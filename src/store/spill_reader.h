#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "logic/bit_stream.h"
#include "sim/trace.h"
#include "store/glvt.h"
#include "store/trace_sink.h"

namespace glva::store {

/// Reader for `.glvt` spill files (see `store/glvt.h` for the layout).
/// Opening validates the header (magic, version, the finished-file
/// sentinel) and loads the chunk index; samples are then pulled back
/// either chunk-at-a-time (`read_chunk`, `replay` — bounded memory) or
/// all at once (`read_all` — re-materializes the `sim::Trace` for the
/// figure renderers and the reference analysis path).
///
/// Both on-disk versions decode here: v1 files replay byte-identically to
/// what they always did, v2 analog files reconstruct `kGrid` time columns
/// arithmetically (no per-sample decode), and v2 *bit-plane* files
/// (`content_kind() == kBits`) hand their packed words back through
/// `read_planes()` — word-aligned, never re-thresholded. The analog APIs
/// (`replay`, `read_all`, `read_chunk`, `write_csv`) reject bit-plane
/// files with glva::StorageError, and vice versa.
///
/// On POSIX targets the file is memory-mapped read-only and chunks decode
/// straight out of the mapping (no read() copy per chunk — page-cache
/// pages are the buffer); when mapping is unavailable or fails, chunk
/// bytes are read into a reused buffer instead. Both paths hand
/// `glvt::decode_section_into` identical bytes.
class SpillReader {
public:
  /// One decoded chunk: `chunk_capacity()` rows for every chunk but the
  /// last. `first_sample` is the global index of row 0 (always a multiple
  /// of the chunk capacity, hence of 64 — word-aligned for BitStream
  /// consumers).
  struct Chunk {
    std::uint64_t first_sample = 0;
    std::vector<double> times;
    std::vector<std::vector<double>> series;  ///< [species][row]
  };

  /// Opens and validates. Throws glva::StorageError for an unreadable
  /// path, wrong magic, unsupported version, an unfinished/truncated file,
  /// or a chunk index that does not fit the file.
  explicit SpillReader(std::string path);
  ~SpillReader();

  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;
  SpillReader(SpillReader&&) = delete;
  SpillReader& operator=(SpillReader&&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::vector<std::string>& species_names()
      const noexcept {
    return species_names_;
  }
  [[nodiscard]] std::uint64_t sample_count() const noexcept {
    return sample_count_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunk_offsets_.size();
  }
  [[nodiscard]] std::uint32_t chunk_capacity() const noexcept {
    return chunk_capacity_;
  }
  [[nodiscard]] double sampling_period() const noexcept {
    return sampling_period_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// On-disk format version (1 or 2).
  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  /// What the chunks carry; v1 files are always analog.
  [[nodiscard]] glvt::ContentKind content_kind() const noexcept {
    return content_kind_;
  }
  /// The ADC threshold a bit-plane file was digitized at (0.0 for analog
  /// files — the field exists so a replay can refuse a threshold
  /// mismatch instead of silently re-labelling planes).
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

  /// Decode chunk `index`. Throws glva::InvalidArgument for an
  /// out-of-range index and glva::StorageError for a corrupt chunk.
  [[nodiscard]] Chunk read_chunk(std::size_t index);

  /// Allocation-reusing form of `read_chunk`: refills `chunk` in place
  /// (same columns, same scratch), so a sequential replay decodes every
  /// chunk after the first with zero allocations. Same error contract.
  void read_chunk_into(std::size_t index, Chunk& chunk);

  /// Stream every sample, in order, into another sink (begin →
  /// append_block per decoded chunk → finish): each 4096-sample chunk is
  /// handed to the sink as one column-wise block instead of 4096 row
  /// appends — the block fast path of the replay pipeline. Replaying into
  /// a `MemorySink` reproduces the original trace bit for bit; replaying
  /// into a `DigitizingSink` digitizes a spilled trace without ever
  /// materializing it. Chunk capacities are multiples of 64, so every
  /// block a digitizing sink sees is word-aligned.
  void replay(TraceSink& sink);

  /// Row-wise replay (begin → one append per sample → finish): the
  /// reference path `replay` is bit-identical to, kept for the
  /// block-vs-row equivalence tests and the `bench_trace_io` comparison.
  void replay_rows(TraceSink& sink);

  /// Re-materialize the full trace (replay into a MemorySink).
  [[nodiscard]] sim::Trace read_all();

  /// Reassemble a bit-plane file's packed planes, one `BitStream` per
  /// tracked species (in `species_names()` order): chunk word payloads are
  /// concatenated with bulk copies — chunk capacities are multiples of 64,
  /// so every chunk boundary is a word boundary and the planes come back
  /// word-aligned, bit-identical to the `DigitizingSink` planes that were
  /// spilled. Throws glva::StorageError on an analog file or a corrupt
  /// chunk.
  [[nodiscard]] std::vector<logic::BitStream> read_planes();

  /// Stream the trace as CSV, byte-identical to `sim::Trace::to_csv()` on
  /// the re-materialized trace, without holding more than one chunk.
  void write_csv(std::ostream& out);

private:
  /// Bytes [begin, end) of the file: a zero-copy view into the mapping
  /// when one exists, otherwise read into `chunk_buffer_` (reused).
  [[nodiscard]] std::string_view file_bytes(std::uint64_t begin,
                                            std::uint64_t end);

  /// Throw glva::StorageError unless the file's content kind is `want` —
  /// the analog/bit-plane API guard.
  void require_content(glvt::ContentKind want, const char* api) const;

  std::string path_;
  std::ifstream file_;
  std::vector<std::string> species_names_;
  std::vector<std::uint64_t> chunk_offsets_;
  std::uint64_t sample_count_ = 0;
  std::uint64_t index_offset_ = 0;
  std::uint32_t chunk_capacity_ = 0;
  double sampling_period_ = 1.0;
  std::uint64_t seed_ = 0;
  std::uint32_t version_ = 0;
  glvt::ContentKind content_kind_ = glvt::ContentKind::kAnalog;
  double threshold_ = 0.0;
  std::string chunk_buffer_;  ///< raw chunk bytes, reused across reads
  const char* map_ = nullptr;  ///< read-only file mapping (POSIX), or null
  std::size_t map_size_ = 0;
};

}  // namespace glva::store
