#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// The `.glvt` ("GLVA trace") on-disk format shared by `SpillSink`
/// (writer) and `SpillReader` (reader). One file is one uniformly sampled
/// multi-species trace, stored as a fixed header followed by fixed-capacity
/// chunks and a trailing chunk index:
///
///   header   magic "GLVT", version, seed, sampling_period,
///            species_count, chunk_capacity, sample_count, chunk_count,
///            index_offset, species names
///   chunk i  "CHNK", samples n, then one *section* per column:
///            times, species 0, species 1, ... (each raw or RLE)
///   index    chunk_count × u64 absolute file offsets (at index_offset)
///
/// Every chunk except the last holds exactly `chunk_capacity` samples, so
/// chunk i starts at sample i · chunk_capacity — random access needs no
/// per-chunk bookkeeping beyond the offset index. `chunk_capacity` is a
/// multiple of 64 so replayed chunks stay word-aligned for the bit-packed
/// analysis stage. The three patched header fields (sample_count,
/// chunk_count, index_offset) are zero while the writer is live;
/// index_offset == 0 is the "unfinished or truncated" sentinel the reader
/// rejects. Scalars are stored in the host's native byte order (the
/// supported targets are little-endian); doubles are stored bit-exactly,
/// which is what makes a spilled trace byte-for-byte reproducible and a
/// re-materialized one bit-identical to the memory path.
///
/// See `docs/STORAGE.md` for the full layout diagram.
namespace glva::store::glvt {

inline constexpr char kMagic[4] = {'G', 'L', 'V', 'T'};
inline constexpr std::uint32_t kVersion = 1;
/// "CHNK" read as a little-endian u32.
inline constexpr std::uint32_t kChunkMagic = 0x4B4E4843u;
/// Default samples per chunk; must be a multiple of 64 (one chunk is then
/// an integral number of BitStream words when replayed into the digitizer).
inline constexpr std::uint32_t kDefaultChunkSamples = 4096;
/// Byte length of the fixed header prefix (everything before the names).
inline constexpr std::size_t kHeaderFixedBytes = 56;
/// File offsets of the three fields patched on finish.
inline constexpr std::size_t kSampleCountOffset = 32;
inline constexpr std::size_t kChunkCountOffset = 40;
inline constexpr std::size_t kIndexOffsetOffset = 48;

/// Per-section payload encodings. RLE runs over *bit-identical* doubles
/// (compared as their 8-byte patterns, so NaNs and signed zeros round-trip
/// exactly): clamped input species and low-copy-number amounts compress by
/// orders of magnitude, while times — a strictly increasing grid — always
/// fall back to raw.
enum class SectionEncoding : std::uint8_t { kRaw = 0, kRle = 1 };

// Little bump allocators over std::string (the chunk build buffer).
void append_u32(std::string& out, std::uint32_t value);
void append_u64(std::string& out, std::uint64_t value);
void append_f64(std::string& out, double value);

/// Encode one column section: encoding tag (u8) + payload byte count
/// (u32) + payload. Picks RLE — repeated (count u32, bits u64) runs —
/// whenever it is strictly smaller than the raw 8-byte-per-sample layout.
void encode_section(const std::vector<double>& values, std::string& out);

/// Decode one section of exactly `count` doubles from `buffer` starting at
/// `offset`; advances `offset` past the section. Throws glva::StorageError
/// on a truncated payload, an unknown encoding tag, or an RLE stream whose
/// run lengths do not sum to `count`. (`buffer` is a view so chunk bytes
/// can come from a read buffer or straight from a memory-mapped file.)
[[nodiscard]] std::vector<double> decode_section(std::string_view buffer,
                                                 std::size_t& offset,
                                                 std::size_t count);

/// Allocation-reusing form of `decode_section`: `values` is cleared and
/// refilled in place (raw sections land as one memcpy), so a chunked
/// replay that hands the same column vectors back per chunk decodes with
/// no per-chunk allocations after the first. Same error contract.
void decode_section_into(std::string_view buffer, std::size_t& offset,
                         std::size_t count, std::vector<double>& values);

}  // namespace glva::store::glvt
