#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// The `.glvt` ("GLVA trace") on-disk format shared by `SpillSink`
/// (writer) and `SpillReader` (reader). One file is one uniformly sampled
/// multi-species trace, stored as a fixed header followed by fixed-capacity
/// chunks and a trailing chunk index:
///
///   header   magic "GLVT", version, seed, sampling_period,
///            species_count, chunk_capacity, sample_count, chunk_count,
///            index_offset, [v2: content_kind, threshold], species names
///   chunk i  "CHNK", samples n, then one *section* per column:
///            times, species 0, species 1, ... (each raw, RLE, or grid)
///   index    chunk_count × u64 absolute file offsets (at index_offset)
///
/// Every chunk except the last holds exactly `chunk_capacity` samples, so
/// chunk i starts at sample i · chunk_capacity — random access needs no
/// per-chunk bookkeeping beyond the offset index. `chunk_capacity` is a
/// multiple of 64 so replayed chunks stay word-aligned for the bit-packed
/// analysis stage. The three patched header fields (sample_count,
/// chunk_count, index_offset) are zero while the writer is live;
/// index_offset == 0 is the "unfinished or truncated" sentinel the reader
/// rejects. Scalars are stored in the host's native byte order (the
/// supported targets are little-endian); doubles are stored bit-exactly,
/// which is what makes a spilled trace byte-for-byte reproducible and a
/// re-materialized one bit-identical to the memory path.
///
/// Version 2 extends the header with a content kind and ADC threshold and
/// adds two section encodings: `kGrid` (a sampler-written uniform time
/// grid collapses to its start time — the whole column is implied by
/// `sample_index · sampling_period`) and `kWords` (packed 64-bit
/// `BitStream` words — the chunk payload of a *digitized* file, written by
/// `DigitizingSink` and handed back to the packed analyzer with no
/// re-thresholding). Version 1 files carry neither and still decode byte
/// for byte; writers can emit either version (`SpillSink::Options`).
///
/// See `docs/STORAGE.md` for the full layout diagram.
namespace glva::store::glvt {

inline constexpr char kMagic[4] = {'G', 'L', 'V', 'T'};
inline constexpr std::uint32_t kVersion = 2;
/// Oldest version the reader still decodes (byte-identically).
inline constexpr std::uint32_t kMinVersion = 1;
/// "CHNK" read as a little-endian u32.
inline constexpr std::uint32_t kChunkMagic = 0x4B4E4843u;
/// Default samples per chunk; must be a multiple of 64 (one chunk is then
/// an integral number of BitStream words when replayed into the digitizer).
inline constexpr std::uint32_t kDefaultChunkSamples = 4096;
/// Byte length of the v1 fixed header prefix (everything before the names).
inline constexpr std::size_t kHeaderFixedBytes = 56;
/// The v2 prefix appends content_kind (u32) and threshold (f64).
inline constexpr std::size_t kHeaderFixedBytesV2 = 68;
/// File offsets of the three fields patched on finish (same in v1 and v2:
/// the v2 additions sit after index_offset).
inline constexpr std::size_t kSampleCountOffset = 32;
inline constexpr std::size_t kChunkCountOffset = 40;
inline constexpr std::size_t kIndexOffsetOffset = 48;

/// What a v2 file's chunk sections carry. `kAnalog` files hold one f64
/// column per species (plus times); `kBits` files hold one packed bit
/// plane per tracked species, thresholded at the header's threshold — the
/// spilled form of `DigitizingSink`'s planes. v1 files are always analog.
enum class ContentKind : std::uint32_t { kAnalog = 0, kBits = 1 };

/// Per-section payload encodings. RLE runs over *bit-identical* doubles
/// (compared as their 8-byte patterns, so NaNs and signed zeros round-trip
/// exactly): clamped input species and low-copy-number amounts compress by
/// orders of magnitude. Times — a strictly increasing grid — never RLE;
/// in v1 they land raw (8 bytes/sample), in v2 a sampler-written uniform
/// grid collapses to `kGrid` (8 bytes/chunk). `kWords` is the packed
/// bit-plane payload of a `kBits` file; v2-only, like `kGrid`.
enum class SectionEncoding : std::uint8_t {
  kRaw = 0,
  kRle = 1,
  kGrid = 2,
  kWords = 3
};

// Little bump allocators over std::string (the chunk build buffer).
void append_u32(std::string& out, std::uint32_t value);
void append_u64(std::string& out, std::uint64_t value);
void append_f64(std::string& out, double value);

/// Encode one column section: encoding tag (u8) + payload byte count
/// (u32) + payload. Picks RLE — repeated (count u32, bits u64) runs —
/// whenever it is strictly smaller than the raw 8-byte-per-sample layout.
void encode_section(const std::vector<double>& values, std::string& out);

/// Decode one section of exactly `count` doubles from `buffer` starting at
/// `offset`; advances `offset` past the section. Throws glva::StorageError
/// on a truncated payload, an unknown encoding tag, or an RLE stream whose
/// run lengths do not sum to `count`. (`buffer` is a view so chunk bytes
/// can come from a read buffer or straight from a memory-mapped file.)
[[nodiscard]] std::vector<double> decode_section(std::string_view buffer,
                                                 std::size_t& offset,
                                                 std::size_t count);

/// Allocation-reusing form of `decode_section`: `values` is cleared and
/// refilled in place (raw sections land as one memcpy), so a chunked
/// replay that hands the same column vectors back per chunk decodes with
/// no per-chunk allocations after the first. Same error contract.
void decode_section_into(std::string_view buffer, std::size_t& offset,
                         std::size_t count, std::vector<double>& values);

/// Encode a v2 time column. When every value is bit-identical to
/// `(first_sample + j) · sampling_period` — exactly how `sim::TraceSampler`
/// computes its grid — the column collapses to a `kGrid` section whose
/// 8-byte payload is the chunk's start time t0 = first_sample ·
/// sampling_period (redundant with the chunk index, kept as a corruption
/// check); any other producer falls back to `encode_section`. Returns true
/// when the grid form was used (the ~10× size win `spill.bytes_saved`
/// counts).
bool encode_time_section(const std::vector<double>& times,
                         std::uint64_t first_sample, double sampling_period,
                         std::string& out);

/// Decode a v2 time column: a `kGrid` section is reconstructed as
/// `(first_sample + j) · sampling_period` without touching any per-sample
/// bytes (after validating the stored t0 bit-matches); raw/RLE sections
/// delegate to `decode_section_into`. Throws glva::StorageError on a
/// malformed grid payload or a t0 that disagrees with the chunk's
/// position — a mis-indexed or corrupt grid chunk, not a decodable one.
void decode_time_section_into(std::string_view buffer, std::size_t& offset,
                              std::size_t count, std::uint64_t first_sample,
                              double sampling_period,
                              std::vector<double>& values);

/// Encode one bit-plane section of a `kBits` chunk: a `kWords` tag and the
/// plane's packed words verbatim (`word_count` = ceil(samples / 64), tail
/// bits zero per the BitStream invariant) — one memcpy from
/// `BitStream::words()`, no per-sample work.
void encode_words_section(const std::uint64_t* words, std::size_t word_count,
                          std::string& out);

/// Decode one `kWords` section of exactly `word_count` words, *appending*
/// to `words` (planes accumulate across chunks; chunk capacities are
/// multiples of 64, so every chunk boundary is a word boundary). Throws
/// glva::StorageError on a non-kWords tag or a payload that is not exactly
/// `word_count · 8` bytes.
void decode_words_section(std::string_view buffer, std::size_t& offset,
                          std::size_t word_count,
                          std::vector<std::uint64_t>& words);

}  // namespace glva::store::glvt
