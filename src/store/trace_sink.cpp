#include "store/trace_sink.h"

#include "util/errors.h"

namespace glva::store {

const char* sink_kind_name(SinkKind kind) {
  switch (kind) {
    case SinkKind::kMemory: return "mem";
    case SinkKind::kSpill: return "spill";
    case SinkKind::kDigitize: return "digitize";
  }
  return "?";
}

SinkKind parse_sink_kind(const std::string& name) {
  if (name == "mem" || name == "memory") return SinkKind::kMemory;
  if (name == "spill") return SinkKind::kSpill;
  if (name == "digitize") return SinkKind::kDigitize;
  throw InvalidArgument("unknown trace sink '" + name +
                        "' (expected mem | spill | digitize)");
}

}  // namespace glva::store
