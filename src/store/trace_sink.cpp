#include "store/trace_sink.h"

#include "util/errors.h"

namespace glva::store {

void TraceSink::append_block(std::span<const double> times,
                             std::span<const std::span<const double>> series) {
  // Row-wise reference fallback: reassemble each row and deliver it through
  // append(), so a sink that only implements the row contract still accepts
  // block producers (and defines what the overrides must be identical to).
  for (const std::span<const double> column : series) {
    if (column.size() != times.size()) {
      throw InvalidArgument(
          "TraceSink::append_block: column length differs from time column");
    }
  }
  std::vector<double> row(series.size());
  for (std::size_t k = 0; k < times.size(); ++k) {
    for (std::size_t s = 0; s < series.size(); ++s) row[s] = series[s][k];
    append(times[k], row);
  }
}

const char* sink_kind_name(SinkKind kind) {
  switch (kind) {
    case SinkKind::kMemory: return "mem";
    case SinkKind::kSpill: return "spill";
    case SinkKind::kDigitize: return "digitize";
  }
  return "?";
}

SinkKind parse_sink_kind(const std::string& name) {
  if (name == "mem" || name == "memory") return SinkKind::kMemory;
  if (name == "spill") return SinkKind::kSpill;
  if (name == "digitize") return SinkKind::kDigitize;
  throw InvalidArgument("unknown trace sink '" + name +
                        "' (expected mem | spill | digitize)");
}

}  // namespace glva::store
