#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crn/network.h"
#include "sbml/model.h"
#include "sim/input_schedule.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "store/trace_sink.h"

/// The virtual-laboratory runtime: GLVA's substitute for D-VASim
/// [Baig & Madsen, Bioinformatics 2016]. It owns an SBML model, lets the
/// user declare which species are externally triggered inputs, and runs
/// stimulus programs against the stochastic simulators, logging all species
/// traces — exactly the workflow the DATE'17 methodology drives through
/// D-VASim's GUI.
namespace glva::sim {

/// Lab-wide settings.
struct LabOptions {
  double sampling_period = 1.0;          ///< trace grid, time units
  std::uint64_t seed = 1;                ///< RNG seed for reproducible runs
  SsaMethod method = SsaMethod::kDirect; ///< simulation algorithm
};

/// A completed input-combination sweep: the stitched trace plus the
/// schedule that produced it (needed by the analyzer to label samples).
struct SweepResult {
  Trace trace;
  InputSchedule schedule;
};

class VirtualLab {
public:
  /// Load a model into the lab. The model is validated on load; throws
  /// glva::ValidationError for unsimulatable models.
  explicit VirtualLab(sbml::Model model, LabOptions options = {});

  [[nodiscard]] const sbml::Model& model() const noexcept { return model_; }
  [[nodiscard]] const LabOptions& options() const noexcept { return options_; }
  void set_options(const LabOptions& options);

  /// Declare the externally clamped input species, in MSB-first order for
  /// combination sweeps. Marks them as boundary-condition species (the SBML
  /// idiom for externally controlled amounts). Throws when a species id is
  /// unknown.
  void declare_inputs(const std::vector<std::string>& input_ids);
  [[nodiscard]] const std::vector<std::string>& input_ids() const noexcept {
    return input_ids_;
  }

  /// The compiled network (compiled lazily after input declaration).
  [[nodiscard]] const crn::ReactionNetwork& network();

  /// Run an arbitrary stimulus program for `duration` time units.
  [[nodiscard]] Trace run(const InputSchedule& schedule, double duration);

  /// Streaming twin of `run`: the same simulation, sample for sample, but
  /// every grid row goes to `sink` (a store::MemorySink reproduces `run`
  /// bit for bit; a SpillSink or DigitizingSink bounds resident memory
  /// for 10^7-sample programs).
  void run_into(const InputSchedule& schedule, double duration,
                store::TraceSink& sink);

  /// The paper's experiment: sweep all 2^N input combinations in ascending
  /// binary order over `total_time` (each combination holds
  /// total_time / 2^N time units), applying inputs at `high_level`
  /// molecules — the paper applies inputs at the threshold level.
  [[nodiscard]] SweepResult run_combination_sweep(double total_time,
                                                  double high_level);

  /// Streaming twin of `run_combination_sweep`: stream the sweep into
  /// `sink`, returning the schedule (the analyzer still needs it to label
  /// samples; the samples themselves live wherever the sink put them).
  [[nodiscard]] InputSchedule run_combination_sweep_into(
      double total_time, double high_level, store::TraceSink& sink);

  /// Convenience single-step experiment used by the timing estimators: hold
  /// `levels` for `duration` and return the trace.
  [[nodiscard]] Trace run_constant(const std::vector<double>& levels,
                                   double duration);

private:
  sbml::Model model_;
  LabOptions options_;
  std::vector<std::string> input_ids_;
  std::optional<crn::ReactionNetwork> network_;  // invalidated on input change
};

}  // namespace glva::sim
