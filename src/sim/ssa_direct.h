#pragma once

#include "sim/simulator.h"

namespace glva::sim {

/// Gillespie's direct method (exact SSA) [Gillespie 1977], the algorithm
/// the paper's methodology relies on for trace generation. Propensities of
/// only the affected reactions are recomputed after each firing, with a
/// periodic full re-summation to bound floating-point drift in the running
/// total.
class DirectMethod final : public StochasticSimulator {
public:
  [[nodiscard]] std::string name() const override { return "direct"; }

protected:
  void simulate_interval(const crn::ReactionNetwork& network,
                         std::vector<double>& values, double t_begin,
                         double t_end, Rng& rng,
                         TraceSampler& sampler) const override;
};

}  // namespace glva::sim
