#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crn/network.h"
#include "sim/input_schedule.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace glva::sim {

/// Knobs shared by every simulation algorithm.
struct SimulationOptions {
  /// Trace sampling period (time units per recorded row). The paper samples
  /// once per time unit over 10,000-unit runs.
  double sampling_period = 1.0;
  /// RNG seed; equal seeds give bit-identical traces for a given algorithm.
  std::uint64_t seed = 1;
};

/// Records zero-order-hold samples of the state on a uniform time grid.
/// Kernels call advance_before(t, values) immediately *before* applying an
/// event at time t, so every grid point in [previous event, t) carries the
/// state that was live across it.
class TraceSampler {
public:
  TraceSampler(const crn::ReactionNetwork& network, double sampling_period);

  /// Emit all unrecorded grid points strictly before `t` with `values`.
  void advance_before(double t, const std::vector<double>& values);

  /// Emit all remaining grid points up to and including `t_end`.
  void finish(double t_end, const std::vector<double>& values);

  /// Move the accumulated trace out.
  [[nodiscard]] Trace take() noexcept { return std::move(trace_); }

private:
  double sampling_period_;
  std::size_t next_index_ = 0;  // next grid point to record
  Trace trace_;
};

/// Interface of the exact/approximate stochastic simulation algorithms.
/// A simulator is stateless between runs; all mutable state lives on the
/// stack of run(), so one instance can serve many (sequential) runs.
class StochasticSimulator {
public:
  virtual ~StochasticSimulator() = default;

  /// Human-readable algorithm name ("direct", "next-reaction", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Simulate `network` over [0, duration]: start from the network's
  /// initial values, clamp the schedule's input species at each phase
  /// boundary, and record every species at the sampling grid.
  ///
  /// Throws glva::SimulationError on invalid propensities and
  /// glva::InvalidArgument for schedules referencing unknown species.
  [[nodiscard]] Trace run(const crn::ReactionNetwork& network,
                          const InputSchedule& schedule, double duration,
                          const SimulationOptions& options) const;

protected:
  /// Advance `values` from `t_begin` to `t_end` with no clamp changes,
  /// reporting state to `sampler` before each event. Implemented by each
  /// algorithm.
  virtual void simulate_interval(const crn::ReactionNetwork& network,
                                 std::vector<double>& values, double t_begin,
                                 double t_end, Rng& rng,
                                 TraceSampler& sampler) const = 0;
};

/// Algorithm registry (for CLI/bench selection by name).
enum class SsaMethod { kDirect, kNextReaction, kTauLeap };

/// Construct a simulator by method.
[[nodiscard]] std::unique_ptr<StochasticSimulator> make_simulator(SsaMethod method);

/// Parse "direct" / "next-reaction" / "tau-leap"; throws
/// glva::InvalidArgument otherwise.
[[nodiscard]] SsaMethod parse_ssa_method(const std::string& name);

}  // namespace glva::sim
