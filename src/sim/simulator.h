#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crn/network.h"
#include "sim/input_schedule.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace glva::store {
class TraceSink;
}  // namespace glva::store

namespace glva::sim {

/// Knobs shared by every simulation algorithm.
struct SimulationOptions {
  /// Trace sampling period (time units per recorded row). The paper samples
  /// once per time unit over 10,000-unit runs.
  double sampling_period = 1.0;
  /// RNG seed; equal seeds give bit-identical traces for a given algorithm.
  std::uint64_t seed = 1;
};

/// Records zero-order-hold samples of the state on a uniform time grid.
/// Kernels call advance_before(t, values) immediately *before* applying an
/// event at time t, so every grid point in [previous event, t) carries the
/// state that was live across it.
///
/// Samples stream into a `store::TraceSink` (begin() is called here with
/// the network's species names; finish(t_end, ...) seals the sink) — where
/// rows accumulate is the sink's policy, not the sampler's. Grid rows are
/// accumulated column-wise into a fixed-size sample block of
/// `kBlockSamples` rows and flushed through `TraceSink::append_block`, so
/// live simulation and `SpillReader::replay` drive sinks through one block
/// contract; the delivered samples are bit-identical to the historical
/// row-at-a-time stream. The historical "materialize a Trace" behaviour is
/// a `store::MemorySink` behind `StochasticSimulator::run`.
///
/// Grid contract: row k's time is computed as exactly
/// `static_cast<double>(k) * sampling_period` (one multiply from the
/// integer index — never an accumulated sum). The `.glvt` v2 writer
/// relies on this to detect uniform time columns bit-for-bit and collapse
/// them to an implicit-grid section (`glvt::SectionEncoding::kGrid`);
/// change the arithmetic here and spills silently lose that compression
/// (correctness is unaffected — the writer verifies before collapsing).
class TraceSampler {
public:
  /// Rows buffered per block flush. A multiple of 64 (the BitStream word
  /// size), so a digitizing sink sees word-aligned blocks from the first
  /// flush to the last full one.
  static constexpr std::size_t kBlockSamples = 256;

  /// `sink` must outlive the sampler. Throws glva::InvalidArgument for a
  /// non-positive sampling period.
  TraceSampler(const crn::ReactionNetwork& network, double sampling_period,
               store::TraceSink& sink);

  /// Emit all unrecorded grid points strictly before `t` with `values`.
  void advance_before(double t, const std::vector<double>& values);

  /// Emit all remaining grid points up to and including `t_end`, flush the
  /// partial block, then finish() the sink.
  void finish(double t_end, const std::vector<double>& values);

private:
  /// Buffer one grid row, flushing the block when it fills.
  void buffer(double grid_time, const std::vector<double>& values);
  /// Hand the buffered block to the sink (no-op when empty).
  void flush_block();

  double sampling_period_;
  std::size_t next_index_ = 0;  // next grid point to record
  store::TraceSink* sink_;
  std::vector<double> block_times_;
  std::vector<std::vector<double>> block_series_;  // [species][buffered row]
  std::vector<std::span<const double>> block_view_;  // scratch for flushes
};

/// Interface of the exact/approximate stochastic simulation algorithms.
/// A simulator is stateless between runs; all mutable state lives on the
/// stack of run(), so one instance can serve many (sequential) runs.
class StochasticSimulator {
public:
  virtual ~StochasticSimulator() = default;

  /// Human-readable algorithm name ("direct", "next-reaction", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Simulate `network` over [0, duration]: start from the network's
  /// initial values, clamp the schedule's input species at each phase
  /// boundary, and record every species at the sampling grid.
  ///
  /// Throws glva::SimulationError on invalid propensities and
  /// glva::InvalidArgument for schedules referencing unknown species.
  [[nodiscard]] Trace run(const crn::ReactionNetwork& network,
                          const InputSchedule& schedule, double duration,
                          const SimulationOptions& options) const;

  /// Streaming twin of `run`: identical simulation (same RNG draws, same
  /// grid rows in the same order), but every sample goes to `sink` instead
  /// of a materialized Trace — `run` itself is this with a
  /// store::MemorySink. Same error contract, plus whatever the sink
  /// throws (e.g. glva::StorageError from a spill sink).
  void run_into(const crn::ReactionNetwork& network,
                const InputSchedule& schedule, double duration,
                const SimulationOptions& options,
                store::TraceSink& sink) const;

protected:
  /// Advance `values` from `t_begin` to `t_end` with no clamp changes,
  /// reporting state to `sampler` before each event. Implemented by each
  /// algorithm.
  virtual void simulate_interval(const crn::ReactionNetwork& network,
                                 std::vector<double>& values, double t_begin,
                                 double t_end, Rng& rng,
                                 TraceSampler& sampler) const = 0;
};

/// Algorithm registry (for CLI/bench selection by name).
enum class SsaMethod { kDirect, kNextReaction, kTauLeap };

/// Construct a simulator by method.
[[nodiscard]] std::unique_ptr<StochasticSimulator> make_simulator(SsaMethod method);

/// Parse "direct" / "next-reaction" / "tau-leap"; throws
/// glva::InvalidArgument otherwise.
[[nodiscard]] SsaMethod parse_ssa_method(const std::string& name);

}  // namespace glva::sim
