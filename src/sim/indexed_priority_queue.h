#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "util/errors.h"

namespace glva::sim {

/// A binary min-heap over a fixed set of keys 0..n-1 with O(log n)
/// decrease/increase-key, as required by the Gibson–Bruck next-reaction
/// method (each reaction's tentative firing time is updated in place after
/// every firing).
class IndexedPriorityQueue {
public:
  /// Build a heap of `size` keys, all initialized to +infinity.
  explicit IndexedPriorityQueue(std::size_t size);

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Current priority of `key`.
  [[nodiscard]] double value(std::size_t key) const { return values_.at(key); }

  /// Set `key`'s priority and restore the heap order.
  void update(std::size_t key, double value);

  /// Key with the minimum priority. Throws glva::InvalidArgument when empty.
  [[nodiscard]] std::size_t top_key() const;

  /// Minimum priority (+infinity when all keys are at infinity).
  [[nodiscard]] double top_value() const;

  /// Internal consistency check (used by tests): every parent <= children
  /// and the position index is a true inverse of the heap array.
  [[nodiscard]] bool check_invariants() const noexcept;

private:
  void sift_up(std::size_t slot) noexcept;
  void sift_down(std::size_t slot) noexcept;
  void swap_slots(std::size_t a, std::size_t b) noexcept;

  std::vector<double> values_;     // by key
  std::vector<std::size_t> heap_;  // slot -> key
  std::vector<std::size_t> slot_;  // key -> slot
};

inline IndexedPriorityQueue::IndexedPriorityQueue(std::size_t size)
    : values_(size, std::numeric_limits<double>::infinity()),
      heap_(size),
      slot_(size) {
  for (std::size_t i = 0; i < size; ++i) {
    heap_[i] = i;
    slot_[i] = i;
  }
}

inline void IndexedPriorityQueue::swap_slots(std::size_t a,
                                             std::size_t b) noexcept {
  std::swap(heap_[a], heap_[b]);
  slot_[heap_[a]] = a;
  slot_[heap_[b]] = b;
}

inline void IndexedPriorityQueue::sift_up(std::size_t slot) noexcept {
  while (slot > 0) {
    const std::size_t parent = (slot - 1) / 2;
    if (values_[heap_[parent]] <= values_[heap_[slot]]) return;
    swap_slots(parent, slot);
    slot = parent;
  }
}

inline void IndexedPriorityQueue::sift_down(std::size_t slot) noexcept {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * slot + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = slot;
    if (left < n && values_[heap_[left]] < values_[heap_[smallest]]) {
      smallest = left;
    }
    if (right < n && values_[heap_[right]] < values_[heap_[smallest]]) {
      smallest = right;
    }
    if (smallest == slot) return;
    swap_slots(slot, smallest);
    slot = smallest;
  }
}

inline void IndexedPriorityQueue::update(std::size_t key, double value) {
  if (key >= values_.size()) {
    throw InvalidArgument("IndexedPriorityQueue: key out of range");
  }
  const double old = values_[key];
  values_[key] = value;
  if (value < old) {
    sift_up(slot_[key]);
  } else if (value > old) {
    sift_down(slot_[key]);
  }
}

inline std::size_t IndexedPriorityQueue::top_key() const {
  if (heap_.empty()) throw InvalidArgument("IndexedPriorityQueue: empty");
  return heap_[0];
}

inline double IndexedPriorityQueue::top_value() const {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return values_[heap_[0]];
}

inline bool IndexedPriorityQueue::check_invariants() const noexcept {
  const std::size_t n = heap_.size();
  for (std::size_t s = 0; s < n; ++s) {
    if (slot_[heap_[s]] != s) return false;
    const std::size_t left = 2 * s + 1;
    const std::size_t right = left + 1;
    if (left < n && values_[heap_[left]] < values_[heap_[s]]) return false;
    if (right < n && values_[heap_[right]] < values_[heap_[s]]) return false;
  }
  return true;
}

}  // namespace glva::sim
