#include "sim/virtual_lab.h"

#include "sbml/validate.h"
#include "util/errors.h"

namespace glva::sim {

VirtualLab::VirtualLab(sbml::Model model, LabOptions options)
    : model_(std::move(model)), options_(options) {
  sbml::validate_or_throw(model_);
}

void VirtualLab::set_options(const LabOptions& options) { options_ = options; }

void VirtualLab::declare_inputs(const std::vector<std::string>& input_ids) {
  for (const auto& id : input_ids) {
    sbml::Species* species = model_.find_species(id);
    if (species == nullptr) {
      throw InvalidArgument("declare_inputs: unknown species '" + id + "'");
    }
    species->boundary_condition = true;
  }
  input_ids_ = input_ids;
  network_.reset();  // boundary flags changed; recompile lazily
}

const crn::ReactionNetwork& VirtualLab::network() {
  if (!network_) network_ = crn::ReactionNetwork::compile(model_);
  return *network_;
}

Trace VirtualLab::run(const InputSchedule& schedule, double duration) {
  const auto simulator = make_simulator(options_.method);
  SimulationOptions sim_options;
  sim_options.sampling_period = options_.sampling_period;
  sim_options.seed = options_.seed;
  return simulator->run(network(), schedule, duration, sim_options);
}

void VirtualLab::run_into(const InputSchedule& schedule, double duration,
                          store::TraceSink& sink) {
  const auto simulator = make_simulator(options_.method);
  SimulationOptions sim_options;
  sim_options.sampling_period = options_.sampling_period;
  sim_options.seed = options_.seed;
  simulator->run_into(network(), schedule, duration, sim_options, sink);
}

SweepResult VirtualLab::run_combination_sweep(double total_time,
                                              double high_level) {
  if (input_ids_.empty()) {
    throw InvalidArgument(
        "run_combination_sweep: declare_inputs() must be called first");
  }
  InputSchedule schedule =
      InputSchedule::combination_sweep(input_ids_, total_time, high_level);
  Trace trace = run(schedule, total_time);
  return SweepResult{std::move(trace), std::move(schedule)};
}

InputSchedule VirtualLab::run_combination_sweep_into(double total_time,
                                                     double high_level,
                                                     store::TraceSink& sink) {
  if (input_ids_.empty()) {
    throw InvalidArgument(
        "run_combination_sweep_into: declare_inputs() must be called first");
  }
  InputSchedule schedule =
      InputSchedule::combination_sweep(input_ids_, total_time, high_level);
  run_into(schedule, total_time, sink);
  return schedule;
}

Trace VirtualLab::run_constant(const std::vector<double>& levels,
                               double duration) {
  return run(InputSchedule::constant(input_ids_, levels), duration);
}

}  // namespace glva::sim
