#include "sim/trace.h"

#include "util/csv.h"
#include "util/errors.h"
#include "util/string_util.h"

namespace glva::sim {

Trace::Trace(std::vector<std::string> species_names)
    : species_names_(std::move(species_names)),
      series_(species_names_.size()) {}

void Trace::append(double time, const std::vector<double>& species_values) {
  if (species_values.size() < species_names_.size()) {
    throw InvalidArgument("Trace::append: value row narrower than species list");
  }
  times_.push_back(time);
  for (std::size_t i = 0; i < species_names_.size(); ++i) {
    series_[i].push_back(species_values[i]);
  }
}

void Trace::append_block(std::span<const double> times,
                         std::span<const std::span<const double>> series) {
  if (series.size() < species_names_.size()) {
    throw InvalidArgument(
        "Trace::append_block: series block narrower than species list");
  }
  for (std::size_t i = 0; i < species_names_.size(); ++i) {
    if (series[i].size() != times.size()) {
      throw InvalidArgument(
          "Trace::append_block: column length differs from time column");
    }
  }
  times_.insert(times_.end(), times.begin(), times.end());
  for (std::size_t i = 0; i < species_names_.size(); ++i) {
    series_[i].insert(series_[i].end(), series[i].begin(), series[i].end());
  }
}

const std::vector<double>& Trace::series(std::size_t species) const {
  if (species >= series_.size()) {
    throw InvalidArgument("Trace::series: species index out of range");
  }
  return series_[species];
}

std::size_t Trace::species_index(const std::string& id) const {
  for (std::size_t i = 0; i < species_names_.size(); ++i) {
    if (species_names_[i] == id) return i;
  }
  throw InvalidArgument("Trace: unknown species '" + id + "'");
}

const std::vector<double>& Trace::series(const std::string& id) const {
  return series_[species_index(id)];
}

void Trace::extend(const Trace& tail) {
  if (tail.species_names_ != species_names_) {
    throw InvalidArgument("Trace::extend: species lists differ");
  }
  if (!times_.empty() && !tail.times_.empty() &&
      tail.times_.front() < times_.back()) {
    throw InvalidArgument("Trace::extend: tail starts before this trace ends");
  }
  times_.insert(times_.end(), tail.times_.begin(), tail.times_.end());
  for (std::size_t i = 0; i < series_.size(); ++i) {
    series_[i].insert(series_[i].end(), tail.series_[i].begin(),
                      tail.series_[i].end());
  }
}

std::string Trace::to_csv() const {
  util::CsvWriter csv;
  std::vector<std::string> header{"time"};
  header.insert(header.end(), species_names_.begin(), species_names_.end());
  csv.add_row(header);
  for (std::size_t k = 0; k < times_.size(); ++k) {
    std::vector<std::string> row;
    row.reserve(1 + species_names_.size());
    row.push_back(glva::util::format_double(times_[k]));
    for (std::size_t i = 0; i < series_.size(); ++i) {
      row.push_back(glva::util::format_double(series_[i][k]));
    }
    csv.add_row(row);
  }
  return csv.str();
}

}  // namespace glva::sim
