#include "sim/ssa_next_reaction.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "sim/indexed_priority_queue.h"

namespace glva::sim {

void NextReactionMethod::simulate_interval(const crn::ReactionNetwork& network,
                                           std::vector<double>& values,
                                           double t_begin, double t_end,
                                           Rng& rng,
                                           TraceSampler& sampler) const {
  const std::size_t m = network.reaction_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // The queue is rebuilt per interval: input clamps changed at the phase
  // boundary invalidate tentative times anyway, and intervals are long
  // relative to the rebuild cost.
  std::vector<double> propensities(m);
  IndexedPriorityQueue queue(m);
  for (std::size_t r = 0; r < m; ++r) {
    propensities[r] = network.propensity(r, values);
    queue.update(r, propensities[r] > 0.0
                        ? t_begin + rng.exponential(propensities[r])
                        : kInf);
  }

  double t = t_begin;
  std::uint64_t local_steps = 0;
  while (queue.top_value() < t_end) {
    const std::size_t j = queue.top_key();
    t = queue.top_value();
    sampler.advance_before(t, values);
    network.fire(j, values);
    ++local_steps;

    for (std::size_t affected : network.affected_reactions(j)) {
      const double old_propensity = propensities[affected];
      const double fresh = network.propensity(affected, values);
      propensities[affected] = fresh;
      if (affected == j) continue;  // handled below with a fresh draw
      const double old_time = queue.value(affected);
      double new_time = kInf;
      if (fresh > 0.0) {
        if (old_propensity > 0.0 && old_time < kInf) {
          // Gibson–Bruck reuse: rescale the remaining waiting time.
          new_time = t + (old_propensity / fresh) * (old_time - t);
        } else {
          new_time = t + rng.exponential(fresh);
        }
      }
      queue.update(affected, new_time);
    }

    // The reaction that fired always needs a fresh exponential. When j does
    // not affect itself (e.g. pure production ∅ -> X with constant law), its
    // propensity is unchanged but its tentative time was consumed.
    const double a_j = propensities[j];
    queue.update(j, a_j > 0.0 ? t + rng.exponential(a_j) : kInf);
  }
  sampler.advance_before(t_end, values);

  // Batched like the direct method: one registry write per interval.
  if (local_steps > 0) {
    static obs::Counter& steps = obs::counter("sim.ssa.steps");
    static obs::Counter& firings = obs::counter("sim.ssa.firings");
    steps.add(local_steps);
    firings.add(local_steps);
  }
}

}  // namespace glva::sim
