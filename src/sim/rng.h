#pragma once

#include <cstdint>

/// Deterministic pseudo-random number generation for the stochastic
/// simulators. GLVA ships its own generator (xoshiro256**, public domain,
/// Blackman & Vigna) so simulation results are bit-reproducible across
/// platforms and standard-library versions — std::mt19937 distributions are
/// not portable across implementations.
namespace glva::sim {

/// One splitmix64 step (Steele, Lea, Flood): advances `state` by the golden
/// gamma and returns a fully avalanched 64-bit output. This is the mixer the
/// Rng constructor seeds with; it is exposed so seed-derivation code
/// (exec::SeedSequence) shares the exact same machinery.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

class Rng {
public:
  /// Seed via splitmix64 expansion, so consecutive seeds give uncorrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53-bit resolution.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in (0, 1] — safe as a log() argument.
  [[nodiscard]] double uniform_positive() noexcept;

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept;

  /// Poisson with the given mean: Knuth multiplication for small means,
  /// rounded-normal approximation for large ones (used by tau-leaping).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Fork an independent stream (used to give each sweep phase or test
  /// replicate its own reproducible stream).
  [[nodiscard]] Rng split() noexcept;

private:
  std::uint64_t state_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace glva::sim
