#include "sim/input_schedule.h"

#include "util/errors.h"

namespace glva::sim {

void InputSchedule::add_phase(double start_time, std::vector<double> levels) {
  if (levels.size() != input_ids_.size()) {
    throw InvalidArgument("InputSchedule: phase level count (" +
                          std::to_string(levels.size()) +
                          ") does not match input count (" +
                          std::to_string(input_ids_.size()) + ")");
  }
  if (!phases_.empty() && start_time <= phases_.back().start_time) {
    throw InvalidArgument("InputSchedule: phases must start in increasing order");
  }
  phases_.push_back(InputPhase{start_time, std::move(levels)});
}

const InputPhase& InputSchedule::phase_at(double t) const {
  return phases_[phase_index_at(t)];
}

std::size_t InputSchedule::phase_index_at(double t) const {
  if (phases_.empty() || t < phases_.front().start_time) {
    throw InvalidArgument("InputSchedule: no phase active at t=" +
                          std::to_string(t));
  }
  std::size_t index = 0;
  for (std::size_t i = 1; i < phases_.size(); ++i) {
    if (phases_[i].start_time <= t) {
      index = i;
    } else {
      break;
    }
  }
  return index;
}

InputSchedule InputSchedule::combination_sweep(
    std::vector<std::string> input_ids, double total_time, double high_level) {
  const std::size_t n = input_ids.size();
  if (n == 0) throw InvalidArgument("combination_sweep: no inputs");
  if (n > 16) throw InvalidArgument("combination_sweep: too many inputs");
  if (total_time <= 0.0) {
    throw InvalidArgument("combination_sweep: total_time must be positive");
  }
  const std::size_t combos = static_cast<std::size_t>(1) << n;
  const double hold = total_time / static_cast<double>(combos);

  InputSchedule schedule(std::move(input_ids));
  for (std::size_t c = 0; c < combos; ++c) {
    std::vector<double> levels(n, 0.0);
    for (std::size_t bit = 0; bit < n; ++bit) {
      // input_ids[0] is the most significant bit of the combination.
      const bool high = ((c >> (n - 1 - bit)) & 1U) != 0;
      levels[bit] = high ? high_level : 0.0;
    }
    schedule.add_phase(static_cast<double>(c) * hold, std::move(levels));
  }
  return schedule;
}

InputSchedule InputSchedule::constant(std::vector<std::string> input_ids,
                                      std::vector<double> levels) {
  InputSchedule schedule(std::move(input_ids));
  schedule.add_phase(0.0, std::move(levels));
  return schedule;
}

}  // namespace glva::sim
