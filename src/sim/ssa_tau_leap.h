#pragma once

#include "sim/simulator.h"

namespace glva::sim {

/// Explicit tau-leaping (Gillespie 2001, with the Cao–Gillespie–Petzold
/// step-size control): fires Poisson-distributed batches of reactions per
/// leap instead of single events. Approximate — used in GLVA only for the
/// simulator-ablation benchmark; the paper's methodology assumes an exact
/// SSA. Falls back to exact direct-method steps whenever the selected leap
/// would be smaller than a few expected event gaps, and halves the leap on
/// (rare) negative-population proposals.
class TauLeaping final : public StochasticSimulator {
public:
  /// `epsilon` bounds the relative propensity change per leap (default
  /// 0.03, the value recommended by Cao et al.).
  explicit TauLeaping(double epsilon = 0.03) : epsilon_(epsilon) {}

  [[nodiscard]] std::string name() const override { return "tau-leap"; }

protected:
  void simulate_interval(const crn::ReactionNetwork& network,
                         std::vector<double>& values, double t_begin,
                         double t_end, Rng& rng,
                         TraceSampler& sampler) const override;

private:
  double epsilon_;
};

}  // namespace glva::sim
