#include "sim/ssa_tau_leap.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace glva::sim {

namespace {

/// Exact direct-method steps used when leaps degenerate; advances at most
/// `max_steps` events or until `t_end`. Returns the new time. Each event
/// is counted into `fired` (one step, one firing).
double exact_steps(const crn::ReactionNetwork& network,
                   std::vector<double>& values, double t, double t_end,
                   Rng& rng, TraceSampler& sampler, std::size_t max_steps,
                   std::uint64_t& fired) {
  const std::size_t m = network.reaction_count();
  for (std::size_t step = 0; step < max_steps; ++step) {
    double total = 0.0;
    for (std::size_t r = 0; r < m; ++r) total += network.propensity(r, values);
    if (total <= 0.0) return t_end;
    const double tau = rng.exponential(total);
    if (t + tau >= t_end) return t_end;
    t += tau;
    sampler.advance_before(t, values);
    double target = rng.uniform() * total;
    std::size_t j = 0;
    for (; j + 1 < m; ++j) {
      const double a = network.propensity(j, values);
      if (target < a) break;
      target -= a;
    }
    network.fire(j, values);
    ++fired;
  }
  return t;
}

}  // namespace

void TauLeaping::simulate_interval(const crn::ReactionNetwork& network,
                                   std::vector<double>& values, double t_begin,
                                   double t_end, Rng& rng,
                                   TraceSampler& sampler) const {
  const std::size_t m = network.reaction_count();
  const std::size_t n = network.species_count();
  std::vector<double> propensities(m);
  std::vector<double> mu(n);     // expected net change rate per species
  std::vector<double> sigma2(n); // variance rate per species
  std::vector<double> proposed(values.size());
  std::vector<std::uint64_t> counts(m);

  double t = t_begin;
  std::uint64_t local_steps = 0;
  std::uint64_t local_firings = 0;
  while (t < t_end) {
    double total = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      propensities[r] = network.propensity(r, values);
      total += propensities[r];
    }
    if (total <= 0.0) break;

    // Cao et al. tau selection on species-level drift/noise.
    std::fill(mu.begin(), mu.end(), 0.0);
    std::fill(sigma2.begin(), sigma2.end(), 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      if (propensities[r] <= 0.0) continue;
      for (const auto& change : network.reaction(r).changes) {
        mu[change.species] += change.delta * propensities[r];
        sigma2[change.species] += change.delta * change.delta * propensities[r];
      }
    }
    double tau = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < n; ++s) {
      if (mu[s] == 0.0 && sigma2[s] == 0.0) continue;
      const double bound = std::max(epsilon_ * values[s], 1.0);
      if (mu[s] != 0.0) tau = std::min(tau, bound / std::fabs(mu[s]));
      if (sigma2[s] > 0.0) tau = std::min(tau, bound * bound / sigma2[s]);
    }

    // Degenerate leap: cheaper to take exact steps.
    if (tau < 10.0 / total) {
      std::uint64_t fired = 0;
      t = exact_steps(network, values, t, t_end, rng, sampler, 128, fired);
      local_steps += fired;
      local_firings += fired;
      continue;
    }
    tau = std::min(tau, t_end - t);

    // Propose Poisson firing counts; halve tau until no species goes
    // negative (rejection keeps the leap unbiased enough for this use).
    bool accepted = false;
    while (!accepted && tau > 1e-12) {
      for (std::size_t r = 0; r < m; ++r) {
        counts[r] = propensities[r] > 0.0 ? rng.poisson(propensities[r] * tau)
                                          : 0;
      }
      proposed = values;
      for (std::size_t r = 0; r < m; ++r) {
        if (counts[r] == 0) continue;
        // Raw stoichiometry (not network.fire, which clamps at zero): a
        // negative proposal must be detected and rejected, not hidden.
        for (const auto& change : network.reaction(r).changes) {
          proposed[change.species] +=
              change.delta * static_cast<double>(counts[r]);
        }
      }
      accepted = true;
      for (std::size_t s = 0; s < n; ++s) {
        if (proposed[s] < 0.0) {
          accepted = false;
          break;
        }
      }
      if (!accepted) tau *= 0.5;
    }
    if (!accepted) {
      std::uint64_t fired = 0;
      t = exact_steps(network, values, t, t_end, rng, sampler, 128, fired);
      local_steps += fired;
      local_firings += fired;
      continue;
    }
    t += tau;
    sampler.advance_before(t, values);
    values = proposed;
    ++local_steps;  // one leap
    for (std::size_t r = 0; r < m; ++r) local_firings += counts[r];
  }
  sampler.advance_before(t_end, values);

  // One registry write per interval; a leap is one step with many firings.
  if (local_steps > 0) {
    static obs::Counter& steps = obs::counter("sim.ssa.steps");
    static obs::Counter& firings = obs::counter("sim.ssa.firings");
    steps.add(local_steps);
    firings.add(local_firings);
  }
}

}  // namespace glva::sim
