#include "sim/rng.h"

#include <cmath>

namespace glva::sim {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  // xoshiro256** step.
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_positive() noexcept {
  for (;;) {
    const double u = uniform();
    if (u > 0.0) return u;
  }
}

double Rng::exponential(double rate) noexcept {
  return -std::log(uniform_positive()) / rate;
}

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below exp(-mean).
    const double limit = std::exp(-mean);
    double product = 1.0;
    std::uint64_t count = 0;
    for (;;) {
      product *= uniform_positive();
      if (product <= limit) return count;
      ++count;
    }
  }
  // Normal approximation with continuity correction; adequate for
  // tau-leaping where per-step channel means are moderate.
  const double sample = mean + std::sqrt(mean) * normal() + 0.5;
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample);
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection to remove modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace glva::sim
