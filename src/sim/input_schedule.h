#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// Input stimulus programs: which clamped level each input species holds
/// over which time window. The paper's experiments sweep all 2^N input
/// combinations in ascending binary order, holding each for at least the
/// circuit's propagation delay.
namespace glva::sim {

/// One phase: starting at `start_time`, clamp `levels[i]` onto input `i`.
struct InputPhase {
  double start_time = 0.0;
  std::vector<double> levels;  ///< one level per input species, in order
};

/// A piecewise-constant stimulus program over a fixed set of input species.
class InputSchedule {
public:
  InputSchedule() = default;
  explicit InputSchedule(std::vector<std::string> input_ids)
      : input_ids_(std::move(input_ids)) {}

  /// Append a phase; phases must be added in increasing start-time order.
  void add_phase(double start_time, std::vector<double> levels);

  [[nodiscard]] const std::vector<std::string>& input_ids() const noexcept {
    return input_ids_;
  }
  [[nodiscard]] const std::vector<InputPhase>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] std::size_t input_count() const noexcept {
    return input_ids_.size();
  }

  /// The phase active at time `t` (the last phase with start_time <= t);
  /// throws glva::InvalidArgument when t precedes the first phase.
  [[nodiscard]] const InputPhase& phase_at(double t) const;

  /// The index of the phase active at time `t`.
  [[nodiscard]] std::size_t phase_index_at(double t) const;

  /// Build the paper's sweep: all 2^N combinations of {0, high_level} in
  /// ascending binary order (input_ids[0] is the MSB), dividing
  /// `total_time` equally so each combination holds for
  /// total_time / 2^N >= the circuit's propagation delay.
  static InputSchedule combination_sweep(std::vector<std::string> input_ids,
                                         double total_time, double high_level);

  /// Single-phase schedule holding fixed levels from t = 0.
  static InputSchedule constant(std::vector<std::string> input_ids,
                                std::vector<double> levels);

private:
  std::vector<std::string> input_ids_;
  std::vector<InputPhase> phases_;
};

}  // namespace glva::sim
