#include "sim/ssa_direct.h"

#include <cmath>

#include "obs/metrics.h"

namespace glva::sim {

void DirectMethod::simulate_interval(const crn::ReactionNetwork& network,
                                     std::vector<double>& values,
                                     double t_begin, double t_end, Rng& rng,
                                     TraceSampler& sampler) const {
  const std::size_t m = network.reaction_count();
  std::vector<double> propensities(m);
  double total = 0.0;
  for (std::size_t r = 0; r < m; ++r) {
    propensities[r] = network.propensity(r, values);
    total += propensities[r];
  }

  double t = t_begin;
  std::size_t steps_since_resum = 0;
  std::uint64_t local_steps = 0;
  constexpr std::size_t kResumInterval = 8192;

  while (total > 0.0) {
    const double tau = rng.exponential(total);
    if (t + tau >= t_end) break;  // state holds through the interval end
    t += tau;
    sampler.advance_before(t, values);

    // Select reaction j with probability propensities[j] / total.
    double target = rng.uniform() * total;
    std::size_t j = 0;
    for (; j + 1 < m; ++j) {
      if (target < propensities[j]) break;
      target -= propensities[j];
    }
    network.fire(j, values);
    ++local_steps;

    // Update only the reactions whose propensity can have changed.
    for (std::size_t affected : network.affected_reactions(j)) {
      const double fresh = network.propensity(affected, values);
      total += fresh - propensities[affected];
      propensities[affected] = fresh;
    }

    if (++steps_since_resum >= kResumInterval) {
      // Re-sum to cancel accumulated floating-point drift.
      total = 0.0;
      for (std::size_t r = 0; r < m; ++r) total += propensities[r];
      steps_since_resum = 0;
    }
    if (total < 0.0) total = 0.0;
  }
  sampler.advance_before(t_end, values);

  // One registry write per interval, not per event: the SSA inner loop
  // stays untouched by instrumentation (the direct method fires exactly
  // one reaction per step).
  if (local_steps > 0) {
    static obs::Counter& steps = obs::counter("sim.ssa.steps");
    static obs::Counter& firings = obs::counter("sim.ssa.firings");
    steps.add(local_steps);
    firings.add(local_steps);
  }
}

}  // namespace glva::sim
