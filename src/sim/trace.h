#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

/// Uniformly sampled simulation traces. The logic-analysis algorithm
/// consumes "simulation data of all I/O species" (SDAn in Algorithm 1) as a
/// time grid plus one amount series per species; this type is that data.
namespace glva::sim {

class Trace {
public:
  Trace() = default;
  /// Create an empty trace for the given species names.
  explicit Trace(std::vector<std::string> species_names);

  /// Append one sample row (values.size() must equal species count).
  void append(double time, const std::vector<double>& species_values);

  /// Append a block of samples column-wise: `series` holds at least one
  /// column per species (extra trailing columns are ignored), each exactly
  /// `times.size()` values long. Equivalent to `times.size()` `append`
  /// calls but one bulk insert per column. Throws glva::InvalidArgument on
  /// a narrow block or a column whose length differs from the time column.
  void append_block(std::span<const double> times,
                    std::span<const std::span<const double>> series);

  [[nodiscard]] std::size_t sample_count() const noexcept { return times_.size(); }
  [[nodiscard]] std::size_t species_count() const noexcept {
    return species_names_.size();
  }
  [[nodiscard]] const std::vector<double>& times() const noexcept { return times_; }
  [[nodiscard]] const std::vector<std::string>& species_names() const noexcept {
    return species_names_;
  }

  /// Series of one species (by index); series(i)[k] pairs with times()[k].
  [[nodiscard]] const std::vector<double>& series(std::size_t species) const;
  /// Series by species id; throws glva::InvalidArgument when unknown.
  [[nodiscard]] const std::vector<double>& series(const std::string& id) const;
  [[nodiscard]] std::size_t species_index(const std::string& id) const;

  /// Concatenate another trace recorded on a later time interval (used by
  /// the sweep runner to stitch per-combination segments).
  void extend(const Trace& tail);

  /// Write as CSV: header "time,<species...>" then one row per sample.
  [[nodiscard]] std::string to_csv() const;

private:
  std::vector<std::string> species_names_;
  std::vector<double> times_;
  std::vector<std::vector<double>> series_;  // [species][sample]
};

}  // namespace glva::sim
