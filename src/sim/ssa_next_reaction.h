#pragma once

#include "sim/simulator.h"

namespace glva::sim {

/// Gibson–Bruck next-reaction method: an exact SSA that keeps one tentative
/// absolute firing time per reaction in an indexed priority queue and, on
/// each firing, rescales the tentative times of only the affected
/// reactions. Statistically equivalent to the direct method; asymptotically
/// faster for networks with many reactions and sparse coupling.
class NextReactionMethod final : public StochasticSimulator {
public:
  [[nodiscard]] std::string name() const override { return "next-reaction"; }

protected:
  void simulate_interval(const crn::ReactionNetwork& network,
                         std::vector<double>& values, double t_begin,
                         double t_end, Rng& rng,
                         TraceSampler& sampler) const override;
};

}  // namespace glva::sim
