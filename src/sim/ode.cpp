#include "sim/ode.h"

#include <algorithm>
#include <cmath>

#include "util/errors.h"

namespace glva::sim {

namespace {

/// Rate vector over species slots only; constants are untouched.
void derivatives(const crn::ReactionNetwork& network,
                 const std::vector<double>& values, std::vector<double>& out) {
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t r = 0; r < network.reaction_count(); ++r) {
    // The mean-field rate ignores integer requirements but keeps laws
    // evaluated at the continuous state; clamp at zero like propensities.
    const double a = std::max(0.0, network.reaction(r).propensity.evaluate(values));
    for (const auto& change : network.reaction(r).changes) {
      out[change.species] += change.delta * a;
    }
  }
}

}  // namespace

Trace OdeRk4::run(const crn::ReactionNetwork& network,
                  const InputSchedule& schedule, double duration,
                  double sampling_period) const {
  if (duration <= 0.0) throw InvalidArgument("ODE duration must be positive");
  if (step_ <= 0.0) throw InvalidArgument("ODE step must be positive");

  std::vector<double> values = network.initial_values();
  const std::size_t n = network.species_count();

  std::vector<std::size_t> input_indices;
  for (const auto& id : schedule.input_ids()) {
    input_indices.push_back(network.species_index(id));
  }

  Trace trace(network.species_names());
  std::vector<double> k1(n), k2(n), k3(n), k4(n);
  std::vector<double> scratch(values.size());

  const auto rk4_step = [&](double h) {
    derivatives(network, values, k1);
    scratch = values;
    for (std::size_t s = 0; s < n; ++s) scratch[s] = values[s] + 0.5 * h * k1[s];
    derivatives(network, scratch, k2);
    for (std::size_t s = 0; s < n; ++s) scratch[s] = values[s] + 0.5 * h * k2[s];
    derivatives(network, scratch, k3);
    for (std::size_t s = 0; s < n; ++s) scratch[s] = values[s] + h * k3[s];
    derivatives(network, scratch, k4);
    for (std::size_t s = 0; s < n; ++s) {
      values[s] += h / 6.0 * (k1[s] + 2.0 * k2[s] + 2.0 * k3[s] + k4[s]);
      if (values[s] < 0.0) values[s] = 0.0;  // amounts stay physical
    }
  };

  double next_sample = 0.0;
  double t = 0.0;
  const auto& phases = schedule.phases();
  std::size_t phase = 0;
  while (t < duration - 1e-12) {
    double t_next = duration;
    if (!phases.empty()) {
      for (std::size_t i = 0; i < input_indices.size(); ++i) {
        values[input_indices[i]] = phases[phase].levels[i];
      }
      if (phase + 1 < phases.size()) {
        t_next = std::min(duration, phases[phase + 1].start_time);
      }
    }
    while (t < t_next - 1e-12) {
      while (next_sample <= t + 1e-12 && next_sample <= duration + 1e-12) {
        trace.append(next_sample, values);
        next_sample += sampling_period;
      }
      const double h = std::min(step_, t_next - t);
      rk4_step(h);
      t += h;
    }
    t = t_next;
    ++phase;
  }
  while (next_sample <= duration + sampling_period * 1e-9) {
    trace.append(next_sample, values);
    next_sample += sampling_period;
  }
  return trace;
}

}  // namespace glva::sim
