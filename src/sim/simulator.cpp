#include "sim/simulator.h"

#include <cmath>

#include "sim/ssa_direct.h"
#include "sim/ssa_next_reaction.h"
#include "sim/ssa_tau_leap.h"
#include "store/memory_sink.h"
#include "store/trace_sink.h"
#include "util/errors.h"

namespace glva::sim {

TraceSampler::TraceSampler(const crn::ReactionNetwork& network,
                           double sampling_period, store::TraceSink& sink)
    : sampling_period_(sampling_period), sink_(&sink) {
  if (sampling_period <= 0.0) {
    throw InvalidArgument("sampling_period must be positive");
  }
  const std::size_t species = network.species_names().size();
  block_times_.reserve(kBlockSamples);
  block_series_.resize(species);
  for (auto& column : block_series_) column.reserve(kBlockSamples);
  block_view_.resize(species);
  sink_->begin(network.species_names());
}

void TraceSampler::buffer(double grid_time, const std::vector<double>& values) {
  block_times_.push_back(grid_time);
  for (std::size_t s = 0; s < block_series_.size(); ++s) {
    block_series_[s].push_back(values[s]);
  }
  if (block_times_.size() == kBlockSamples) flush_block();
}

void TraceSampler::flush_block() {
  if (block_times_.empty()) return;
  for (std::size_t s = 0; s < block_series_.size(); ++s) {
    block_view_[s] = block_series_[s];
  }
  sink_->append_block(block_times_, block_view_);
  block_times_.clear();
  for (auto& column : block_series_) column.clear();
}

void TraceSampler::advance_before(double t, const std::vector<double>& values) {
  for (;;) {
    const double grid_time =
        static_cast<double>(next_index_) * sampling_period_;
    if (grid_time >= t) return;
    buffer(grid_time, values);
    ++next_index_;
  }
}

void TraceSampler::finish(double t_end, const std::vector<double>& values) {
  for (;;) {
    const double grid_time =
        static_cast<double>(next_index_) * sampling_period_;
    // Tolerate rounding when t_end is an exact multiple of the period.
    if (grid_time > t_end + sampling_period_ * 1e-9) break;
    buffer(grid_time, values);
    ++next_index_;
  }
  flush_block();
  sink_->finish();
}

Trace StochasticSimulator::run(const crn::ReactionNetwork& network,
                               const InputSchedule& schedule, double duration,
                               const SimulationOptions& options) const {
  store::MemorySink sink;
  run_into(network, schedule, duration, options, sink);
  return sink.take();
}

void StochasticSimulator::run_into(const crn::ReactionNetwork& network,
                                   const InputSchedule& schedule,
                                   double duration,
                                   const SimulationOptions& options,
                                   store::TraceSink& sink) const {
  if (duration <= 0.0) {
    throw InvalidArgument("simulation duration must be positive");
  }

  std::vector<double> values = network.initial_values();
  std::vector<std::size_t> input_indices;
  input_indices.reserve(schedule.input_ids().size());
  for (const auto& id : schedule.input_ids()) {
    const std::size_t index = network.species_index(id);
    if (!network.is_boundary(index)) {
      throw InvalidArgument(
          "input species '" + id +
          "' must be a boundary-condition species to be clamped");
    }
    input_indices.push_back(index);
  }

  Rng rng(options.seed);
  TraceSampler sampler(network, options.sampling_period, sink);

  const auto& phases = schedule.phases();
  if (!phases.empty() && phases.front().start_time > 0.0) {
    throw InvalidArgument("input schedule must cover t=0");
  }

  double t = 0.0;
  std::size_t phase = 0;
  while (t < duration) {
    // Apply this phase's clamps, then simulate until the next boundary.
    double t_next = duration;
    if (!phases.empty()) {
      for (std::size_t i = 0; i < input_indices.size(); ++i) {
        values[input_indices[i]] = phases[phase].levels[i];
      }
      if (phase + 1 < phases.size()) {
        t_next = std::min(duration, phases[phase + 1].start_time);
      }
    }
    simulate_interval(network, values, t, t_next, rng, sampler);
    t = t_next;
    ++phase;
  }
  sampler.finish(duration, values);
}

std::unique_ptr<StochasticSimulator> make_simulator(SsaMethod method) {
  switch (method) {
    case SsaMethod::kDirect:
      return std::make_unique<DirectMethod>();
    case SsaMethod::kNextReaction:
      return std::make_unique<NextReactionMethod>();
    case SsaMethod::kTauLeap:
      return std::make_unique<TauLeaping>();
  }
  throw InvalidArgument("unknown SSA method");
}

SsaMethod parse_ssa_method(const std::string& name) {
  if (name == "direct") return SsaMethod::kDirect;
  if (name == "next-reaction" || name == "nrm") return SsaMethod::kNextReaction;
  if (name == "tau-leap" || name == "tau") return SsaMethod::kTauLeap;
  throw InvalidArgument("unknown SSA method '" + name +
                        "' (expected direct | next-reaction | tau-leap)");
}

}  // namespace glva::sim
