#pragma once

#include "crn/network.h"
#include "sim/input_schedule.h"
#include "sim/trace.h"

namespace glva::sim {

/// Deterministic mean-field reference: integrates
/// d x_s / dt = Σ_r ν_{s,r} · a_r(x) with classic fourth-order Runge–Kutta
/// over the same compiled network the SSAs use.
///
/// The paper motivates *not* using ODEs for genetic circuits (molecule
/// counts are too small for the continuum limit) — GLVA ships this
/// integrator as the quantitative baseline that lets tests and benches show
/// exactly that: SSA means converge to the ODE while single SSA runs
/// fluctuate across the logic threshold.
class OdeRk4 {
public:
  /// `step` is the fixed RK4 step size in simulation time units.
  explicit OdeRk4(double step = 0.05) : step_(step) {}

  /// Integrate over [0, duration] with the schedule's clamps applied at
  /// phase boundaries, sampling every `sampling_period`.
  [[nodiscard]] Trace run(const crn::ReactionNetwork& network,
                          const InputSchedule& schedule, double duration,
                          double sampling_period = 1.0) const;

private:
  double step_;
};

}  // namespace glva::sim
