#include "serve/server.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>

#include "app/version.h"
#include "logic/simd/kernel_set.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/errors.h"
#include "util/log.h"

namespace glva::serve {

namespace {

std::size_t resolve_jobs(std::size_t jobs) {
  return jobs != 0 ? jobs : exec::ThreadPool::hardware_threads();
}

AdmissionController::Options admission_options(const ServerOptions& options,
                                               std::size_t pool_threads) {
  AdmissionController::Options admission;
  admission.max_active =
      options.max_active != 0 ? options.max_active : pool_threads;
  admission.max_queued = options.max_queued;
  return admission;
}

/// Hex content address for response metadata and logs.
std::string fingerprint_hex(std::uint64_t fingerprint) {
  constexpr const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[fingerprint & 0xF];
    fingerprint >>= 4;
  }
  return out;
}

void split_listen_addr(const std::string& addr, std::string& host,
                       std::string& port) {
  const auto pos = addr.rfind(':');
  if (pos == std::string::npos || pos + 1 == addr.size()) {
    throw InvalidArgument("serve: --listen expects host:port, got '" + addr +
                          "'");
  }
  host = addr.substr(0, pos);
  port = addr.substr(pos + 1);
}

int bind_tcp(const std::string& addr, std::uint16_t& bound_port) {
  std::string host;
  std::string port;
  split_listen_addr(addr, host, port);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (host.empty()) hints.ai_flags = AI_PASSIVE;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port.c_str(), &hints, &results);
  if (rc != 0) {
    throw Error("serve: cannot resolve '" + addr +
                "': " + ::gai_strerror(rc));
  }
  // Prefer IPv4 when both families resolve (stable, simple reporting).
  const addrinfo* chosen = nullptr;
  for (const addrinfo* it = results; it != nullptr; it = it->ai_next) {
    if (it->ai_family == AF_INET) {
      chosen = it;
      break;
    }
    if (chosen == nullptr) chosen = it;
  }
  int fd = -1;
  std::string error;
  if (chosen != nullptr) {
    fd = ::socket(chosen->ai_family, chosen->ai_socktype,
                  chosen->ai_protocol);
    if (fd >= 0) {
      const int enable = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
      if (::bind(fd, chosen->ai_addr, chosen->ai_addrlen) != 0 ||
          ::listen(fd, 64) != 0) {
        error = std::strerror(errno);
        ::close(fd);
        fd = -1;
      }
    } else {
      error = std::strerror(errno);
    }
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    throw Error("serve: cannot listen on '" + addr + "': " +
                (error.empty() ? "no usable address" : error));
  }
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    if (bound.ss_family == AF_INET) {
      bound_port =
          ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      bound_port =
          ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return fd;
}

int bind_unix(const std::string& path) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) {
    throw InvalidArgument("serve: unix socket path too long: " + path);
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error(std::string("serve: cannot create unix socket: ") +
                std::strerror(errno));
  }
  // Replace a stale socket file from a previous run; a live daemon on the
  // same path would have to be stopped first anyway.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    throw Error("serve: cannot listen on unix socket '" + path +
                "': " + error);
  }
  return fd;
}

/// One latency histogram per wire op, interned once. Unknown op names
/// share a bucket: dispatch rejects them anyway, so all that lands there
/// is the (cheap) rejection path.
obs::Histogram& latency_histogram_for(const std::string& op) {
  if (op == "verify") {
    static obs::Histogram& h = obs::histogram("serve.latency_us.verify");
    return h;
  }
  if (op == "analyze") {
    static obs::Histogram& h = obs::histogram("serve.latency_us.analyze");
    return h;
  }
  if (op == "ensemble") {
    static obs::Histogram& h = obs::histogram("serve.latency_us.ensemble");
    return h;
  }
  if (op == "sweep") {
    static obs::Histogram& h = obs::histogram("serve.latency_us.sweep");
    return h;
  }
  if (op == "check") {
    static obs::Histogram& h = obs::histogram("serve.latency_us.check");
    return h;
  }
  if (op == "status" || op == "version" || op == "stats") {
    static obs::Histogram& h = obs::histogram("serve.latency_us.introspect");
    return h;
  }
  static obs::Histogram& h = obs::histogram("serve.latency_us.other");
  return h;
}

/// JSON number token for a double: fixed three decimals — enough for
/// microsecond quantiles, always a valid JSON token.
Json json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return Json::number_token(buffer);
}

/// The `stats` op body: the process-wide metrics snapshot as one JSON
/// object. Sections are always present (empty under GLVA_NO_METRICS) so
/// clients can rely on the schema.
Json stats_json() {
  const obs::Snapshot snap = obs::snapshot();
  std::vector<std::pair<std::string, Json>> counters;
  counters.reserve(snap.counters.size());
  for (const obs::CounterSample& c : snap.counters) {
    counters.emplace_back(c.name, Json::of_u64(c.value));
  }
  std::vector<std::pair<std::string, Json>> gauges;
  gauges.reserve(snap.gauges.size());
  for (const obs::GaugeSample& g : snap.gauges) {
    gauges.emplace_back(g.name, Json::number_token(std::to_string(g.value)));
  }
  std::vector<std::pair<std::string, Json>> histograms;
  histograms.reserve(snap.histograms.size());
  for (const obs::HistogramSample& h : snap.histograms) {
    histograms.emplace_back(
        h.name, Json::object_of({{"count", Json::of_u64(h.count)},
                                 {"sum", json_double(h.sum)},
                                 {"p50", json_double(h.p50)},
                                 {"p95", json_double(h.p95)},
                                 {"p99", json_double(h.p99)}}));
  }
  return Json::object_of({
      {"metrics_enabled", Json::of(obs::metrics_enabled())},
      {"counters", Json::object_of(std::move(counters))},
      {"gauges", Json::object_of(std::move(gauges))},
      {"histograms", Json::object_of(std::move(histograms))},
  });
}

/// Trace events as a Chrome trace-event array (the same shape
/// obs::render_chrome_trace writes, but as a Json tree for embedding in
/// a response).
Json trace_events_json(const std::vector<obs::TraceEvent>& events) {
  std::vector<Json> items;
  items.reserve(events.size());
  for (const obs::TraceEvent& event : events) {
    items.push_back(Json::object_of(
        {{"name", Json::of(event.name)},
         {"ph", Json::of("X")},
         {"ts", json_double(static_cast<double>(event.ts_ns) / 1000.0)},
         {"dur", json_double(static_cast<double>(event.dur_ns) / 1000.0)},
         {"pid", Json::number_token("1")},
         {"tid", Json::of_u64(event.tid)}}));
  }
  return Json::array_of(std::move(items));
}

ErrorKind kind_of(const Error& error) {
  if (dynamic_cast<const InvalidArgument*>(&error) != nullptr) {
    return ErrorKind::kInvalidArgument;
  }
  if (dynamic_cast<const ValidationError*>(&error) != nullptr) {
    return ErrorKind::kValidation;
  }
  if (dynamic_cast<const ParseError*>(&error) != nullptr) {
    return ErrorKind::kParse;
  }
  if (dynamic_cast<const SimulationError*>(&error) != nullptr) {
    return ErrorKind::kSimulation;
  }
  if (dynamic_cast<const StorageError*>(&error) != nullptr) {
    return ErrorKind::kStorage;
  }
  return ErrorKind::kInternal;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      pool_(resolve_jobs(options.jobs)),
      runner_(pool_),
      admission_(admission_options(options, pool_.thread_count())),
      cache_(options.cache_bytes) {}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (started_) return;
  if (options_.listen_addr.empty() && options_.unix_path.empty()) {
    throw InvalidArgument(
        "serve: configure at least one listener (--listen host:port and/or "
        "--unix path)");
  }
  if (!options_.unix_path.empty()) unix_fd_ = bind_unix(options_.unix_path);
  if (!options_.listen_addr.empty()) {
    try {
      tcp_fd_ = bind_tcp(options_.listen_addr, tcp_port_);
    } catch (...) {
      if (unix_fd_ >= 0) {
        ::close(unix_fd_);
        ::unlink(options_.unix_path.c_str());
        unix_fd_ = -1;
      }
      throw;
    }
  }
  running_.store(true);
  started_ = true;
  if (unix_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(unix_fd_); });
  }
  if (tcp_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(tcp_fd_); });
  }
}

void Server::stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!started_) return;
  running_.store(false);
  admission_.close();
  // Closing a listener makes its blocked accept() fail, ending the loop.
  if (unix_fd_ >= 0) {
    ::shutdown(unix_fd_, SHUT_RDWR);
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::shutdown(tcp_fd_, SHUT_RDWR);
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  for (auto& thread : accept_threads_) thread.join();
  accept_threads_.clear();
  {
    // Wake connections blocked in recv(); shutdown (not close) so a
    // concurrently finishing connection thread cannot race an fd reuse.
    std::unique_lock<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    // Drain: in-flight requests run to completion before we return.
    conn_drained_.wait(lock, [this] { return open_connections_ == 0; });
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  started_ = false;
}

void Server::accept_loop(int listen_fd) {
  while (running_.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (shutdown) or fatal: end the loop
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_fds_.insert(fd);
      ++open_connections_;
    }
    // Detached: lifetime is tracked by open_connections_, which stop()
    // waits on; the thread's last touch of the Server is the notify below.
    std::thread([this, fd] {
      serve_connection(fd);
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_fds_.erase(fd);
      ::close(fd);
      --open_connections_;
      conn_drained_.notify_all();
    }).detach();
  }
}

bool Server::send_frame(int fd, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Server::serve_connection(int fd) {
  FrameDecoder decoder(options_.max_frame_bytes);
  char buffer[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) return;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    try {
      decoder.feed(buffer, static_cast<std::size_t>(n));
      while (auto frame = decoder.take_frame()) {
        if (!send_frame(fd, dispatch(*frame))) return;
      }
    } catch (const ProtocolError& e) {
      // Framing is broken — there is no way to resynchronize the stream,
      // so answer once and hang up.
      static_cast<void>(
          send_frame(fd, render_error_response(Json::null(),
                                               ErrorKind::kProtocol,
                                               e.what())));
      return;
    }
  }
}

std::string Server::dispatch(const std::string& payload) {
  WireRequest wire;
  try {
    wire = parse_wire_request(parse_json(payload));
  } catch (const ProtocolError& e) {
    return render_error_response(Json::null(), ErrorKind::kProtocol,
                                 e.what());
  }
  ++requests_received_;
  static obs::Counter& received = obs::counter("serve.requests.received");
  received.increment();
  const obs::ScopedLatency latency(latency_histogram_for(wire.op));
  try {
    if (wire.op == "status") {
      return render_result_response(wire.id, status_json());
    }
    if (wire.op == "stats") {
      return render_result_response(wire.id, stats_json());
    }
    if (wire.op == "version") {
      return render_ok_response(wire.id, 0, app::version_report(),
                                /*cached=*/false, "");
    }
    const app::Request::Op op = app::parse_op(wire.op);
    if (wire.target.empty()) {
      throw ProtocolError("op '" + wire.op + "' needs a 'target' member");
    }
    return handle_analysis(wire, op);
  } catch (const ProtocolError& e) {
    return render_error_response(wire.id, ErrorKind::kProtocol, e.what());
  } catch (const Error& e) {
    return render_error_response(wire.id, kind_of(e), e.what());
  } catch (const std::exception& e) {
    return render_error_response(wire.id, ErrorKind::kInternal, e.what());
  }
}

std::string Server::handle_analysis(const WireRequest& wire,
                                    app::Request::Op op) {
  const app::Request request =
      app::parse_request(op, wire.target, wire.options);
  const std::string key = app::canonical_key(request);
  const std::string fingerprint =
      fingerprint_hex(app::request_fingerprint(request));

  if (const auto hit = cache_.get(key)) {
    return render_ok_response(wire.id, hit->exit_code, hit->body,
                              /*cached=*/true, fingerprint);
  }

  // Single-flight: concurrent identical requests elect a leader; the rest
  // wait on its InFlight record instead of repeating the execution.
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto& slot = inflight_[key];
    if (slot == nullptr) {
      slot = std::make_shared<InFlight>();
      leader = true;
    }
    flight = slot;
  }

  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->done_cv.wait(lock, [&] { return flight->done; });
    ++requests_coalesced_;
    static obs::Counter& coalesced = obs::counter("serve.requests.coalesced");
    coalesced.increment();
    if (flight->ok) {
      return render_ok_response(wire.id, flight->exit_code, flight->body,
                                /*cached=*/true, fingerprint);
    }
    return render_error_response(wire.id, flight->error_kind,
                                 flight->error_message);
  }

  // Leader: take an admission slot (bounded queue; may reject), execute
  // through the shared CLI path on the persistent pool, publish.
  bool ok = false;
  int exit_code = 0;
  std::string body;
  Json trace_events;
  bool have_trace = false;
  ErrorKind error_kind = ErrorKind::kInternal;
  std::string error_message;
  {
    const auto ticket = admission_.try_admit();
    if (!ticket.has_value()) {
      error_kind = running_.load() ? ErrorKind::kOverloaded
                                   : ErrorKind::kShuttingDown;
      error_message = running_.load()
                          ? "request rejected: admission queue is full"
                          : "server is shutting down";
    } else {
      // A traced execution holds trace_mutex_ so two traced requests
      // cannot interleave their drains. Untraced requests executing
      // concurrently still emit spans into the window (tracing is a
      // process-global switch); their events show up under their own
      // tids, which the trace viewer renders as separate rows.
      std::optional<std::unique_lock<std::mutex>> trace_lock;
      if (wire.trace) {
        trace_lock.emplace(trace_mutex_);
        static_cast<void>(obs::drain_trace());  // drop stale events
        obs::trace_begin();
      }
      try {
        app::ExecutionContext context;
        context.runner = &runner_;
        const app::Response response = app::execute(request, context, {});
        ok = true;
        exit_code = response.exit_code;
        body = response.body;
        ++requests_executed_;
        static obs::Counter& executed =
            obs::counter("serve.requests.executed");
        executed.increment();
        cache_.put(key, exit_code, body);
      } catch (const Error& e) {
        error_kind = kind_of(e);
        error_message = e.what();
      } catch (const std::exception& e) {
        error_message = e.what();
      }
      if (wire.trace) {
        obs::trace_end();
        trace_events = trace_events_json(obs::drain_trace());
        have_trace = ok;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->done = true;
    flight->ok = ok;
    flight->exit_code = exit_code;
    flight->body = body;
    flight->error_kind = error_kind;
    flight->error_message = error_message;
    flight->done_cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }

  if (ok) {
    return render_ok_response(wire.id, exit_code, body, /*cached=*/false,
                              fingerprint,
                              have_trace ? &trace_events : nullptr);
  }
  return render_error_response(wire.id, error_kind, error_message);
}

Json Server::status_json() const {
  const ResultCache::Stats cache = cache_.stats();
  const AdmissionController::Stats admission = admission_.stats();
  return Json::object_of({
      {"version", Json::of(app::version_string())},
      {"simd_active",
       Json::of(logic::simd::isa_level_name(logic::simd::active_level()))},
      {"jobs", Json::of_u64(pool_.thread_count())},
      {"requests",
       Json::object_of({
           {"received", Json::of_u64(requests_received_.load())},
           {"executed", Json::of_u64(requests_executed_.load())},
           {"coalesced", Json::of_u64(requests_coalesced_.load())},
       })},
      {"cache",
       Json::object_of({
           {"hits", Json::of_u64(cache.hits)},
           {"misses", Json::of_u64(cache.misses)},
           {"insertions", Json::of_u64(cache.insertions)},
           {"evictions", Json::of_u64(cache.evictions)},
           {"entries", Json::of_u64(cache.entries)},
           {"bytes", Json::of_u64(cache.bytes)},
           {"capacity_bytes", Json::of_u64(cache.capacity_bytes)},
       })},
      {"admission",
       Json::object_of({
           {"admitted", Json::of_u64(admission.admitted)},
           {"rejected", Json::of_u64(admission.rejected)},
           {"completed", Json::of_u64(admission.completed)},
           {"active", Json::of_u64(admission.active)},
           {"queued", Json::of_u64(admission.queued)},
           {"peak_queued", Json::of_u64(admission.peak_queued)},
       })},
  });
}

int run_serve(const ServerOptions& options, std::ostream& out,
              std::ostream& err) {
  // The daemon's diagnostics (periodic stats lines, the final metrics
  // dump) go through util::log, routed to the caller's error stream.
  util::set_log_sink(&err);

  // Block the shutdown signals *before* any server thread exists so every
  // thread inherits the mask; the main thread then collects the signal
  // synchronously with sigwait — no async-signal-safety contortions.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  sigset_t previous;
  pthread_sigmask(SIG_BLOCK, &signals, &previous);

  int exit_code = 0;
  try {
    Server server(options);
    server.start();
    if (!server.unix_socket_path().empty()) {
      out << "glva serve: listening on " << server.unix_socket_path()
          << " (unix)\n";
    }
    if (!options.listen_addr.empty()) {
      out << "glva serve: listening on " << options.listen_addr;
      if (server.tcp_port() != 0) out << " (port " << server.tcp_port() << ")";
      out << " (tcp)\n";
    }
    out << "glva serve: pool " << server.pool_threads() << " thread(s), cache "
        << (options.cache_bytes >> 20) << " MiB; SIGTERM to stop\n";
    out.flush();

    // Optional stats reporter: one summary line per interval on the log
    // sink, so a long-lived daemon's health is visible without a client.
    std::mutex reporter_mutex;
    std::condition_variable reporter_cv;
    bool reporter_stop = false;
    std::thread reporter;
    if (options.stats_interval_seconds > 0) {
      reporter = std::thread([&] {
        std::unique_lock<std::mutex> lock(reporter_mutex);
        for (;;) {
          const bool stopping = reporter_cv.wait_for(
              lock, std::chrono::seconds(options.stats_interval_seconds),
              [&] { return reporter_stop; });
          if (stopping) return;
          const ResultCache::Stats cache = server.cache_stats();
          const AdmissionController::Stats admission =
              server.admission_stats();
          std::ostringstream line;
          line << "serve: executed " << admission.admitted << ", cache "
               << cache.hits << "/" << (cache.hits + cache.misses)
               << " hit(s), coalesced " << server.coalesced_requests()
               << ", rejected " << admission.rejected << ", active "
               << admission.active << ", queued " << admission.queued;
          util::log_info(line.str());
        }
      });
    }

    int signal_number = 0;
    sigwait(&signals, &signal_number);
    out << "glva serve: caught "
        << (signal_number == SIGTERM ? "SIGTERM" : "SIGINT")
        << ", draining\n";
    out.flush();
    if (reporter.joinable()) {
      {
        const std::lock_guard<std::mutex> lock(reporter_mutex);
        reporter_stop = true;
      }
      reporter_cv.notify_all();
      reporter.join();
    }
    server.stop();

    const ResultCache::Stats cache = server.cache_stats();
    const AdmissionController::Stats admission = server.admission_stats();
    out << "glva serve: " << admission.admitted << " executed, "
        << cache.hits << " cache hit(s), " << server.coalesced_requests()
        << " coalesced, " << admission.rejected << " rejected, "
        << cache.evictions << " eviction(s)\n";
    if (obs::metrics_enabled()) {
      util::log_info("final metrics snapshot:");
      err << obs::render_text(obs::snapshot());
      err.flush();
    }
  } catch (...) {
    pthread_sigmask(SIG_SETMASK, &previous, nullptr);
    util::set_log_sink(nullptr);
    throw;
  }
  pthread_sigmask(SIG_SETMASK, &previous, nullptr);
  util::set_log_sink(nullptr);
  return exit_code;
}

}  // namespace glva::serve
