#include "serve/server.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "app/version.h"
#include "logic/simd/kernel_set.h"
#include "util/errors.h"

namespace glva::serve {

namespace {

std::size_t resolve_jobs(std::size_t jobs) {
  return jobs != 0 ? jobs : exec::ThreadPool::hardware_threads();
}

AdmissionController::Options admission_options(const ServerOptions& options,
                                               std::size_t pool_threads) {
  AdmissionController::Options admission;
  admission.max_active =
      options.max_active != 0 ? options.max_active : pool_threads;
  admission.max_queued = options.max_queued;
  return admission;
}

/// Hex content address for response metadata and logs.
std::string fingerprint_hex(std::uint64_t fingerprint) {
  constexpr const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[fingerprint & 0xF];
    fingerprint >>= 4;
  }
  return out;
}

void split_listen_addr(const std::string& addr, std::string& host,
                       std::string& port) {
  const auto pos = addr.rfind(':');
  if (pos == std::string::npos || pos + 1 == addr.size()) {
    throw InvalidArgument("serve: --listen expects host:port, got '" + addr +
                          "'");
  }
  host = addr.substr(0, pos);
  port = addr.substr(pos + 1);
}

int bind_tcp(const std::string& addr, std::uint16_t& bound_port) {
  std::string host;
  std::string port;
  split_listen_addr(addr, host, port);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (host.empty()) hints.ai_flags = AI_PASSIVE;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port.c_str(), &hints, &results);
  if (rc != 0) {
    throw Error("serve: cannot resolve '" + addr +
                "': " + ::gai_strerror(rc));
  }
  // Prefer IPv4 when both families resolve (stable, simple reporting).
  const addrinfo* chosen = nullptr;
  for (const addrinfo* it = results; it != nullptr; it = it->ai_next) {
    if (it->ai_family == AF_INET) {
      chosen = it;
      break;
    }
    if (chosen == nullptr) chosen = it;
  }
  int fd = -1;
  std::string error;
  if (chosen != nullptr) {
    fd = ::socket(chosen->ai_family, chosen->ai_socktype,
                  chosen->ai_protocol);
    if (fd >= 0) {
      const int enable = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
      if (::bind(fd, chosen->ai_addr, chosen->ai_addrlen) != 0 ||
          ::listen(fd, 64) != 0) {
        error = std::strerror(errno);
        ::close(fd);
        fd = -1;
      }
    } else {
      error = std::strerror(errno);
    }
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    throw Error("serve: cannot listen on '" + addr + "': " +
                (error.empty() ? "no usable address" : error));
  }
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    if (bound.ss_family == AF_INET) {
      bound_port =
          ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      bound_port =
          ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return fd;
}

int bind_unix(const std::string& path) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) {
    throw InvalidArgument("serve: unix socket path too long: " + path);
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error(std::string("serve: cannot create unix socket: ") +
                std::strerror(errno));
  }
  // Replace a stale socket file from a previous run; a live daemon on the
  // same path would have to be stopped first anyway.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    throw Error("serve: cannot listen on unix socket '" + path +
                "': " + error);
  }
  return fd;
}

ErrorKind kind_of(const Error& error) {
  if (dynamic_cast<const InvalidArgument*>(&error) != nullptr) {
    return ErrorKind::kInvalidArgument;
  }
  if (dynamic_cast<const ValidationError*>(&error) != nullptr) {
    return ErrorKind::kValidation;
  }
  if (dynamic_cast<const ParseError*>(&error) != nullptr) {
    return ErrorKind::kParse;
  }
  if (dynamic_cast<const SimulationError*>(&error) != nullptr) {
    return ErrorKind::kSimulation;
  }
  if (dynamic_cast<const StorageError*>(&error) != nullptr) {
    return ErrorKind::kStorage;
  }
  return ErrorKind::kInternal;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      pool_(resolve_jobs(options.jobs)),
      runner_(pool_),
      admission_(admission_options(options, pool_.thread_count())),
      cache_(options.cache_bytes) {}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (started_) return;
  if (options_.listen_addr.empty() && options_.unix_path.empty()) {
    throw InvalidArgument(
        "serve: configure at least one listener (--listen host:port and/or "
        "--unix path)");
  }
  if (!options_.unix_path.empty()) unix_fd_ = bind_unix(options_.unix_path);
  if (!options_.listen_addr.empty()) {
    try {
      tcp_fd_ = bind_tcp(options_.listen_addr, tcp_port_);
    } catch (...) {
      if (unix_fd_ >= 0) {
        ::close(unix_fd_);
        ::unlink(options_.unix_path.c_str());
        unix_fd_ = -1;
      }
      throw;
    }
  }
  running_.store(true);
  started_ = true;
  if (unix_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(unix_fd_); });
  }
  if (tcp_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(tcp_fd_); });
  }
}

void Server::stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!started_) return;
  running_.store(false);
  admission_.close();
  // Closing a listener makes its blocked accept() fail, ending the loop.
  if (unix_fd_ >= 0) {
    ::shutdown(unix_fd_, SHUT_RDWR);
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::shutdown(tcp_fd_, SHUT_RDWR);
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  for (auto& thread : accept_threads_) thread.join();
  accept_threads_.clear();
  {
    // Wake connections blocked in recv(); shutdown (not close) so a
    // concurrently finishing connection thread cannot race an fd reuse.
    std::unique_lock<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    // Drain: in-flight requests run to completion before we return.
    conn_drained_.wait(lock, [this] { return open_connections_ == 0; });
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  started_ = false;
}

void Server::accept_loop(int listen_fd) {
  while (running_.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (shutdown) or fatal: end the loop
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_fds_.insert(fd);
      ++open_connections_;
    }
    // Detached: lifetime is tracked by open_connections_, which stop()
    // waits on; the thread's last touch of the Server is the notify below.
    std::thread([this, fd] {
      serve_connection(fd);
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_fds_.erase(fd);
      ::close(fd);
      --open_connections_;
      conn_drained_.notify_all();
    }).detach();
  }
}

bool Server::send_frame(int fd, const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Server::serve_connection(int fd) {
  FrameDecoder decoder(options_.max_frame_bytes);
  char buffer[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) return;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    try {
      decoder.feed(buffer, static_cast<std::size_t>(n));
      while (auto frame = decoder.take_frame()) {
        if (!send_frame(fd, dispatch(*frame))) return;
      }
    } catch (const ProtocolError& e) {
      // Framing is broken — there is no way to resynchronize the stream,
      // so answer once and hang up.
      static_cast<void>(
          send_frame(fd, render_error_response(Json::null(),
                                               ErrorKind::kProtocol,
                                               e.what())));
      return;
    }
  }
}

std::string Server::dispatch(const std::string& payload) {
  WireRequest wire;
  try {
    wire = parse_wire_request(parse_json(payload));
  } catch (const ProtocolError& e) {
    return render_error_response(Json::null(), ErrorKind::kProtocol,
                                 e.what());
  }
  ++requests_received_;
  try {
    if (wire.op == "status") {
      return render_result_response(wire.id, status_json());
    }
    if (wire.op == "version") {
      return render_ok_response(wire.id, 0, app::version_report(),
                                /*cached=*/false, "");
    }
    const app::Request::Op op = app::parse_op(wire.op);
    if (wire.target.empty()) {
      throw ProtocolError("op '" + wire.op + "' needs a 'target' member");
    }
    return handle_analysis(wire, op);
  } catch (const ProtocolError& e) {
    return render_error_response(wire.id, ErrorKind::kProtocol, e.what());
  } catch (const Error& e) {
    return render_error_response(wire.id, kind_of(e), e.what());
  } catch (const std::exception& e) {
    return render_error_response(wire.id, ErrorKind::kInternal, e.what());
  }
}

std::string Server::handle_analysis(const WireRequest& wire,
                                    app::Request::Op op) {
  const app::Request request =
      app::parse_request(op, wire.target, wire.options);
  const std::string key = app::canonical_key(request);
  const std::string fingerprint =
      fingerprint_hex(app::request_fingerprint(request));

  if (const auto hit = cache_.get(key)) {
    return render_ok_response(wire.id, hit->exit_code, hit->body,
                              /*cached=*/true, fingerprint);
  }

  // Single-flight: concurrent identical requests elect a leader; the rest
  // wait on its InFlight record instead of repeating the execution.
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto& slot = inflight_[key];
    if (slot == nullptr) {
      slot = std::make_shared<InFlight>();
      leader = true;
    }
    flight = slot;
  }

  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->done_cv.wait(lock, [&] { return flight->done; });
    ++requests_coalesced_;
    if (flight->ok) {
      return render_ok_response(wire.id, flight->exit_code, flight->body,
                                /*cached=*/true, fingerprint);
    }
    return render_error_response(wire.id, flight->error_kind,
                                 flight->error_message);
  }

  // Leader: take an admission slot (bounded queue; may reject), execute
  // through the shared CLI path on the persistent pool, publish.
  bool ok = false;
  int exit_code = 0;
  std::string body;
  ErrorKind error_kind = ErrorKind::kInternal;
  std::string error_message;
  {
    const auto ticket = admission_.try_admit();
    if (!ticket.has_value()) {
      error_kind = running_.load() ? ErrorKind::kOverloaded
                                   : ErrorKind::kShuttingDown;
      error_message = running_.load()
                          ? "request rejected: admission queue is full"
                          : "server is shutting down";
    } else {
      try {
        app::ExecutionContext context;
        context.runner = &runner_;
        const app::Response response = app::execute(request, context, {});
        ok = true;
        exit_code = response.exit_code;
        body = response.body;
        ++requests_executed_;
        cache_.put(key, exit_code, body);
      } catch (const Error& e) {
        error_kind = kind_of(e);
        error_message = e.what();
      } catch (const std::exception& e) {
        error_message = e.what();
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->done = true;
    flight->ok = ok;
    flight->exit_code = exit_code;
    flight->body = body;
    flight->error_kind = error_kind;
    flight->error_message = error_message;
    flight->done_cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }

  if (ok) {
    return render_ok_response(wire.id, exit_code, body, /*cached=*/false,
                              fingerprint);
  }
  return render_error_response(wire.id, error_kind, error_message);
}

Json Server::status_json() const {
  const ResultCache::Stats cache = cache_.stats();
  const AdmissionController::Stats admission = admission_.stats();
  return Json::object_of({
      {"version", Json::of(app::version_string())},
      {"simd_active",
       Json::of(logic::simd::isa_level_name(logic::simd::active_level()))},
      {"jobs", Json::of_u64(pool_.thread_count())},
      {"requests",
       Json::object_of({
           {"received", Json::of_u64(requests_received_.load())},
           {"executed", Json::of_u64(requests_executed_.load())},
           {"coalesced", Json::of_u64(requests_coalesced_.load())},
       })},
      {"cache",
       Json::object_of({
           {"hits", Json::of_u64(cache.hits)},
           {"misses", Json::of_u64(cache.misses)},
           {"insertions", Json::of_u64(cache.insertions)},
           {"evictions", Json::of_u64(cache.evictions)},
           {"entries", Json::of_u64(cache.entries)},
           {"bytes", Json::of_u64(cache.bytes)},
           {"capacity_bytes", Json::of_u64(cache.capacity_bytes)},
       })},
      {"admission",
       Json::object_of({
           {"admitted", Json::of_u64(admission.admitted)},
           {"rejected", Json::of_u64(admission.rejected)},
           {"completed", Json::of_u64(admission.completed)},
           {"active", Json::of_u64(admission.active)},
           {"queued", Json::of_u64(admission.queued)},
           {"peak_queued", Json::of_u64(admission.peak_queued)},
       })},
  });
}

int run_serve(const ServerOptions& options, std::ostream& out,
              std::ostream& err) {
  static_cast<void>(err);

  // Block the shutdown signals *before* any server thread exists so every
  // thread inherits the mask; the main thread then collects the signal
  // synchronously with sigwait — no async-signal-safety contortions.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  sigset_t previous;
  pthread_sigmask(SIG_BLOCK, &signals, &previous);

  int exit_code = 0;
  try {
    Server server(options);
    server.start();
    if (!server.unix_socket_path().empty()) {
      out << "glva serve: listening on " << server.unix_socket_path()
          << " (unix)\n";
    }
    if (!options.listen_addr.empty()) {
      out << "glva serve: listening on " << options.listen_addr;
      if (server.tcp_port() != 0) out << " (port " << server.tcp_port() << ")";
      out << " (tcp)\n";
    }
    out << "glva serve: pool " << server.pool_threads() << " thread(s), cache "
        << (options.cache_bytes >> 20) << " MiB; SIGTERM to stop\n";
    out.flush();

    int signal_number = 0;
    sigwait(&signals, &signal_number);
    out << "glva serve: caught "
        << (signal_number == SIGTERM ? "SIGTERM" : "SIGINT")
        << ", draining\n";
    out.flush();
    server.stop();

    const ResultCache::Stats cache = server.cache_stats();
    const AdmissionController::Stats admission = server.admission_stats();
    out << "glva serve: " << admission.admitted << " executed, "
        << cache.hits << " cache hit(s), " << server.coalesced_requests()
        << " coalesced, " << admission.rejected << " rejected, "
        << cache.evictions << " eviction(s)\n";
  } catch (...) {
    pthread_sigmask(SIG_SETMASK, &previous, nullptr);
    throw;
  }
  pthread_sigmask(SIG_SETMASK, &previous, nullptr);
  return exit_code;
}

}  // namespace glva::serve
