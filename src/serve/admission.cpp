#include "serve/admission.h"

#include <algorithm>

#include "obs/metrics.h"

namespace glva::serve {

namespace {

// Mirrors of the controller's own counters in the process-wide metrics
// registry, so a `stats` snapshot carries them alongside every other
// subsystem. The mutex-guarded members stay authoritative for stats().
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("serve.admission.queue_depth");
  return g;
}

}  // namespace

AdmissionController::AdmissionController(const Options& options)
    : max_active_(std::max<std::size_t>(options.max_active, 1)),
      max_queued_(options.max_queued) {}

AdmissionController::Ticket::~Ticket() {
  if (controller_ != nullptr) controller_->release();
}

std::optional<AdmissionController::Ticket> AdmissionController::try_admit() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return std::nullopt;
  // Tickets not yet granted are the queue; arrivals beyond its bound are
  // the overload signal.
  const std::size_t waiting =
      static_cast<std::size_t>(next_ticket_ - serving_);
  if (active_ >= max_active_ && waiting >= max_queued_) {
    ++rejected_;
    static obs::Counter& rejected = obs::counter("serve.admission.rejected");
    rejected.increment();
    return std::nullopt;
  }
  const std::uint64_t ticket = next_ticket_++;
  peak_queued_ =
      std::max(peak_queued_, static_cast<std::size_t>(next_ticket_ - serving_));
  queue_depth_gauge().set(
      static_cast<std::int64_t>(next_ticket_ - serving_));
  // FIFO grant: only the head ticket may take a freed slot; everyone else
  // waits for the head to advance past them.
  slot_available_.wait(lock, [&] {
    return closed_ || (serving_ == ticket && active_ < max_active_);
  });
  ++serving_;  // advance the head whether granted or drained by close()
  queue_depth_gauge().set(
      static_cast<std::int64_t>(next_ticket_ - serving_));
  if (closed_) {
    slot_available_.notify_all();
    return std::nullopt;
  }
  ++active_;
  ++admitted_;
  static obs::Counter& admitted = obs::counter("serve.admission.admitted");
  admitted.increment();
  slot_available_.notify_all();
  return Ticket(this);
}

void AdmissionController::release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
    ++completed_;
    // Notify under the lock: a Ticket may be the last reference keeping
    // the controller alive through a concurrent close()+destroy, and the
    // waiter cannot re-acquire the mutex (and destroy) until we drop it.
    slot_available_.notify_all();
  }
}

void AdmissionController::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  slot_available_.notify_all();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.admitted = admitted_;
  stats.rejected = rejected_;
  stats.completed = completed_;
  stats.active = active_;
  stats.queued = static_cast<std::size_t>(next_ticket_ - serving_);
  stats.peak_queued = peak_queued_;
  return stats;
}

}  // namespace glva::serve
