#include "serve/protocol.h"

#include <cstring>

namespace glva::serve {

namespace {

/// Nesting guard: the request schema needs depth 3; 64 tolerates any
/// reasonable client while bounding parser recursion on hostile input.
constexpr std::size_t kMaxDepth = 64;

class JsonParser {
public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing bytes after JSON document");
    return value;
  }

private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ProtocolError("bad JSON at byte " + std::to_string(pos_) + ": " +
                        message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json::of(parse_string());
      case 't':
        if (consume_literal("true")) return Json::of(true);
        fail("expected 'true'");
      case 'f':
        if (consume_literal("false")) return Json::of(false);
        fail("expected 'false'");
      case 'n':
        if (consume_literal("null")) return Json::null();
        fail("expected 'null'");
      default:
        return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    ++pos_;  // '{'
    Json value;
    value.kind = Json::Kind::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      value.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return value;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(std::size_t depth) {
    ++pos_;  // '['
    Json value;
    value.kind = Json::Kind::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return value;
      }
      fail("expected ',' or ']' in array");
    }
  }

  static void append_utf8(std::string& out, std::uint32_t code_point) {
    if (code_point < 0x80) {
      out.push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return value;
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate in \\u escape");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("unpaired surrogate in \\u escape");
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
          }
          append_utf8(out, code_point);
          break;
        }
        default:
          fail("unknown escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits_start) fail("expected a value");
    // No leading zeros: "0" alone or a nonzero first digit.
    if (text_[digits_start] == '0' && pos_ - digits_start > 1) {
      fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) fail("expected digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) fail("expected digits in exponent");
    }
    return Json::number_token(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& value, std::string& out) {
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Flatten an options *object* to argv form; see WireRequest.
std::vector<std::string> flatten_options(const Json& options) {
  std::vector<std::string> argv;
  for (const auto& [key, value] : options.object) {
    switch (value.kind) {
      case Json::Kind::kBool:
        if (value.boolean) argv.push_back("--" + key);
        break;
      case Json::Kind::kNumber:
        argv.push_back("--" + key);
        argv.push_back(value.number);
        break;
      case Json::Kind::kString:
        argv.push_back("--" + key);
        argv.push_back(value.string);
        break;
      default:
        throw ProtocolError("option '" + key +
                            "' must be a boolean, number, or string");
    }
  }
  return argv;
}

}  // namespace

Json Json::null() { return Json{}; }

Json Json::of(bool value) {
  Json json;
  json.kind = Kind::kBool;
  json.boolean = value;
  return json;
}

Json Json::of(std::string value) {
  Json json;
  json.kind = Kind::kString;
  json.string = std::move(value);
  return json;
}

Json Json::of(const char* value) { return of(std::string(value)); }

Json Json::of_u64(std::uint64_t value) {
  return number_token(std::to_string(value));
}

Json Json::number_token(std::string token) {
  Json json;
  json.kind = Kind::kNumber;
  json.number = std::move(token);
  return json;
}

Json Json::array_of(std::vector<Json> items) {
  Json json;
  json.kind = Kind::kArray;
  json.array = std::move(items);
  return json;
}

Json Json::object_of(std::vector<std::pair<std::string, Json>> members) {
  Json json;
  json.kind = Kind::kObject;
  json.object = std::move(members);
  return json;
}

const Json* Json::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Json::dump(std::string& out) const {
  switch (kind) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += boolean ? "true" : "false";
      return;
    case Kind::kNumber:
      out += number;
      return;
    case Kind::kString:
      dump_string(string, out);
      return;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : array) {
        if (!first) out.push_back(',');
        first = false;
        item.dump(out);
      }
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [name, value] : object) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(name, out);
        out.push_back(':');
        value.dump(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump(out);
  return out;
}

Json parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::string encode_frame(std::string_view payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(payload.size() + 4);
  frame.push_back(static_cast<char>(length & 0xFF));
  frame.push_back(static_cast<char>((length >> 8) & 0xFF));
  frame.push_back(static_cast<char>((length >> 16) & 0xFF));
  frame.push_back(static_cast<char>((length >> 24) & 0xFF));
  frame.append(payload);
  return frame;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  if (size != 0) buffer_.append(data, size);
  if (buffer_.size() >= 4) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
    const std::uint32_t length = static_cast<std::uint32_t>(bytes[0]) |
                                 (static_cast<std::uint32_t>(bytes[1]) << 8) |
                                 (static_cast<std::uint32_t>(bytes[2]) << 16) |
                                 (static_cast<std::uint32_t>(bytes[3]) << 24);
    if (length > max_frame_bytes_) {
      throw ProtocolError("frame length " + std::to_string(length) +
                          " exceeds the " +
                          std::to_string(max_frame_bytes_) + "-byte cap");
    }
  }
}

std::optional<std::string> FrameDecoder::take_frame() {
  if (buffer_.size() < 4) return std::nullopt;
  const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
  const std::uint32_t length = static_cast<std::uint32_t>(bytes[0]) |
                               (static_cast<std::uint32_t>(bytes[1]) << 8) |
                               (static_cast<std::uint32_t>(bytes[2]) << 16) |
                               (static_cast<std::uint32_t>(bytes[3]) << 24);
  if (buffer_.size() < 4u + length) return std::nullopt;
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4u + length);
  // The next frame's length prefix may already be buffered; re-check it
  // now so a hostile prefix fails eagerly, as feed() would.
  if (buffer_.size() >= 4) feed(nullptr, 0);
  return payload;
}

WireRequest parse_wire_request(const Json& payload) {
  if (!payload.is_object()) {
    throw ProtocolError("request payload must be a JSON object");
  }
  WireRequest request;
  const Json* op = payload.find("op");
  if (op == nullptr || !op->is_string() || op->string.empty()) {
    throw ProtocolError("request needs a string 'op' member");
  }
  request.op = op->string;
  if (const Json* target = payload.find("target"); target != nullptr) {
    if (!target->is_string()) {
      throw ProtocolError("request 'target' must be a string");
    }
    request.target = target->string;
  }
  if (const Json* options = payload.find("options"); options != nullptr) {
    if (options->is_array()) {
      for (const auto& item : options->array) {
        if (!item.is_string()) {
          throw ProtocolError("request 'options' array must hold strings");
        }
        request.options.push_back(item.string);
      }
    } else if (options->is_object()) {
      request.options = flatten_options(*options);
    } else {
      throw ProtocolError(
          "request 'options' must be an array of strings or an object");
    }
  }
  if (const Json* id = payload.find("id"); id != nullptr) {
    if (id->kind != Json::Kind::kNumber && id->kind != Json::Kind::kString &&
        id->kind != Json::Kind::kNull) {
      throw ProtocolError("request 'id' must be a number or string");
    }
    request.id = *id;
  }
  if (const Json* trace = payload.find("trace"); trace != nullptr) {
    if (trace->kind != Json::Kind::kBool) {
      throw ProtocolError("request 'trace' must be a boolean");
    }
    request.trace = trace->boolean;
  }
  return request;
}

const char* error_kind_name(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kProtocol: return "protocol";
    case ErrorKind::kInvalidArgument: return "invalid_argument";
    case ErrorKind::kValidation: return "validation";
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kSimulation: return "simulation";
    case ErrorKind::kStorage: return "storage";
    case ErrorKind::kOverloaded: return "overloaded";
    case ErrorKind::kShuttingDown: return "shutting_down";
    case ErrorKind::kInternal: return "internal";
  }
  return "internal";
}

std::string render_ok_response(const Json& id, int exit_code,
                               std::string_view body, bool cached,
                               const std::string& fingerprint,
                               const Json* trace) {
  std::vector<std::pair<std::string, Json>> members;
  members.emplace_back("id", id);
  members.emplace_back("ok", Json::of(true));
  members.emplace_back("exit_code",
                       Json::number_token(std::to_string(exit_code)));
  members.emplace_back("cached", Json::of(cached));
  if (!fingerprint.empty()) {
    members.emplace_back("fingerprint", Json::of(fingerprint));
  }
  members.emplace_back("body", Json::of(std::string(body)));
  if (trace != nullptr) members.emplace_back("trace", *trace);
  return Json::object_of(std::move(members)).dump();
}

std::string render_result_response(const Json& id, Json result) {
  return Json::object_of({{"id", id},
                          {"ok", Json::of(true)},
                          {"result", std::move(result)}})
      .dump();
}

std::string render_error_response(const Json& id, ErrorKind kind,
                                  std::string_view message) {
  return Json::object_of(
             {{"id", id},
              {"ok", Json::of(false)},
              {"error",
               Json::object_of(
                   {{"kind", Json::of(error_kind_name(kind))},
                    {"message", Json::of(std::string(message))}})}})
      .dump();
}

}  // namespace glva::serve
