#include "serve/client.h"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/errors.h"

namespace glva::serve {

Client Client::connect_unix(const std::string& path) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) {
    throw Error("socket path too long: " + path);
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                          sizeof(address)) != 0) {
    if (fd >= 0) ::close(fd);
    throw Error("cannot connect to unix socket " + path + ": " +
                std::strerror(errno));
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, const std::string& port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &results) != 0) {
    throw Error("cannot resolve " + host + ":" + port);
  }
  int fd = -1;
  for (const addrinfo* it = results; it != nullptr; it = it->ai_next) {
    fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, it->ai_addr, it->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    throw Error("cannot connect to " + host + ":" + port);
  }
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Json Client::round_trip(const std::string& payload) {
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("send failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  while (true) {
    if (auto response = decoder_.take_frame()) {
      return parse_json(*response);
    }
    char buffer[64 * 1024];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) throw Error("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("recv failed: ") + std::strerror(errno));
    }
    decoder_.feed(buffer, static_cast<std::size_t>(n));
  }
}

}  // namespace glva::serve
