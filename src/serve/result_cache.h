#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

/// The daemon's content-addressed result cache. Keys are
/// app::canonical_key() strings — the full canonical serialization of a
/// request's semantic fields, not a hash — so two cache lines can never
/// alias (a hash collision would silently serve the wrong circuit's
/// report). What makes caching *sound* here is the repo-wide determinism
/// contract: equal (circuit, config, seed) reproduces every output byte,
/// for every jobs count and SIMD tier, so a cached body is
/// indistinguishable from a fresh execution.
///
/// Eviction is LRU over a byte budget (key + body + bookkeeping
/// estimate), so a long-lived daemon's memory stays bounded however many
/// distinct requests it has served. Hits, misses, insertions, and
/// evictions are counted for the `status` op and the load bench.
namespace glva::serve {

class ResultCache {
public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;         ///< resident entries now
    std::size_t bytes = 0;           ///< estimated resident bytes now
    std::size_t capacity_bytes = 0;  ///< the configured budget
  };

  struct CachedResponse {
    int exit_code = 0;
    std::string body;
  };

  /// A zero budget disables the cache (every get() misses, put() drops).
  explicit ResultCache(std::size_t capacity_bytes);

  /// Look up and touch (move to most-recently-used).
  [[nodiscard]] std::optional<CachedResponse> get(const std::string& key);

  /// Insert, evicting least-recently-used entries until the budget holds.
  /// An entry larger than the whole budget is not cached. Re-inserting an
  /// existing key only refreshes its LRU position — by the determinism
  /// contract the body cannot differ.
  void put(const std::string& key, int exit_code, const std::string& body);

  [[nodiscard]] Stats stats() const;

private:
  struct Entry {
    std::string key;
    CachedResponse response;
    std::size_t cost = 0;
  };

  /// Estimated resident bytes of one entry: payload plus a fixed
  /// allowance for the list node, map node, and string headers.
  [[nodiscard]] static std::size_t cost_of(const std::string& key,
                                           const std::string& body) noexcept {
    return key.size() + body.size() + 160;
  }

  const std::size_t capacity_bytes_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace glva::serve
