#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/errors.h"

/// The `glva serve` wire protocol: length-prefixed JSON frames over a
/// stream socket (TCP or Unix-domain).
///
/// Frame layout (see docs/SERVE.md):
///
///     +----------------+----------------------+
///     | u32 length, LE | payload (UTF-8 JSON) |
///     +----------------+----------------------+
///
/// The length counts payload bytes only. Both directions use the same
/// framing; a connection carries any number of frames, processed and
/// answered strictly in order. Oversize lengths are a protocol error —
/// the decoder rejects them *before* buffering, so a hostile or corrupt
/// length prefix cannot make the server allocate unbounded memory.
///
/// The JSON layer is deliberately minimal (objects, arrays, strings,
/// numbers, booleans, null) and keeps each number's raw token text, so a
/// 64-bit seed round-trips losslessly instead of being squeezed through a
/// double.
namespace glva::serve {

/// A malformed frame or request document: bad length prefix, payload that
/// is not valid JSON, or JSON that does not match the request schema.
class ProtocolError : public Error {
public:
  using Error::Error;
};

/// A minimal JSON document tree. Numbers keep their raw token text
/// (`number`); objects preserve insertion order, which makes dumps
/// deterministic.
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string number;  ///< raw numeric token, e.g. "18446744073709551615"
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  [[nodiscard]] static Json null();
  [[nodiscard]] static Json of(bool value);
  [[nodiscard]] static Json of(std::string value);
  [[nodiscard]] static Json of(const char* value);
  [[nodiscard]] static Json of_u64(std::uint64_t value);
  /// A number from its raw token text (caller guarantees validity).
  [[nodiscard]] static Json number_token(std::string token);
  [[nodiscard]] static Json array_of(std::vector<Json> items);
  [[nodiscard]] static Json object_of(
      std::vector<std::pair<std::string, Json>> members);

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }

  /// First member named `key`, or nullptr. Object-kind only.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Serialize (compact, no whitespace). Object member order is
  /// preserved, so equal trees dump to equal bytes.
  void dump(std::string& out) const;
  [[nodiscard]] std::string dump() const;
};

/// Parse one JSON document; the whole input must be consumed (trailing
/// garbage is an error). Throws ProtocolError on any syntax violation,
/// including nesting deeper than an internal limit (a stack-overflow
/// guard for hostile inputs).
[[nodiscard]] Json parse_json(std::string_view text);

/// Default cap on a single frame's payload. Responses carry rendered
/// report text — kilobytes, not megabytes — so 4 MiB is generous.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

/// Wrap `payload` in a frame (u32 LE length + bytes).
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed() raw stream bytes as they arrive,
/// take_frame() yields complete payloads in order. Throws ProtocolError
/// from feed() as soon as a length prefix exceeds the cap — before the
/// oversize payload is buffered.
class FrameDecoder {
public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const char* data, std::size_t size);
  [[nodiscard]] std::optional<std::string> take_frame();

  /// Bytes buffered but not yet returned (an EOF with leftovers means a
  /// truncated frame).
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size();
  }

private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

/// A request frame, schema-checked but not yet interpreted:
///
///     {"op": "verify", "target": "0x0B",
///      "options": ["--seed", "7", "--no-timings"], "id": 3}
///
/// `op` is required ("analyze" | "verify" | "ensemble" | "sweep" |
/// "status" | "version" | "stats"). `target` is required for the
/// analysis ops. `options` may be an argv-style array of strings or an
/// object ({"seed": 7, "two-stage": true} flattens to ["--seed","7",
/// "--two-stage"]; a false value drops the flag). `id` (number or
/// string) is opaque and echoed verbatim in the response. `trace`
/// (boolean, analysis ops only) asks the server to attach a Chrome
/// trace-event array of the execution's stage spans to the response —
/// only a freshly executed request carries one (a cache hit or coalesced
/// follower ran nothing worth tracing).
struct WireRequest {
  std::string op;
  std::string target;
  std::vector<std::string> options;
  Json id;  ///< null when absent
  bool trace = false;
};

/// Validate and extract a request from its parsed payload. Throws
/// ProtocolError on schema violations (wrong types, unknown members are
/// allowed and ignored for forward compatibility).
[[nodiscard]] WireRequest parse_wire_request(const Json& payload);

/// Machine-readable failure categories carried in error responses.
/// `kOverloaded` is the admission controller's explicit backpressure
/// signal — clients should retry later, nothing was executed.
enum class ErrorKind {
  kProtocol,
  kInvalidArgument,
  kValidation,
  kParse,
  kSimulation,
  kStorage,
  kOverloaded,
  kShuttingDown,
  kInternal,
};

[[nodiscard]] const char* error_kind_name(ErrorKind kind) noexcept;

/// Success payload:
///     {"id": 3, "ok": true, "exit_code": 0, "cached": false,
///      "fingerprint": "9a51...", "body": "..."}
/// `fingerprint` (the request's content address, hex) is present for
/// analysis ops only; `cached` reports whether the body came from the
/// result cache (or a concurrent identical request) instead of a fresh
/// execution. When `trace` is non-null a `"trace"` member carrying it
/// (a Chrome trace-event array) is appended.
[[nodiscard]] std::string render_ok_response(const Json& id, int exit_code,
                                             std::string_view body,
                                             bool cached,
                                             const std::string& fingerprint,
                                             const Json* trace = nullptr);

/// Success payload for structured results (status):
///     {"id": 3, "ok": true, "result": {...}}
[[nodiscard]] std::string render_result_response(const Json& id,
                                                 Json result);

/// Failure payload:
///     {"id": 3, "ok": false,
///      "error": {"kind": "overloaded", "message": "..."}}
[[nodiscard]] std::string render_error_response(const Json& id,
                                                ErrorKind kind,
                                                std::string_view message);

}  // namespace glva::serve
