#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>

/// Admission control for the `glva serve` daemon: per-request backpressure
/// generalizing the bounded-window ordered-commit idea from
/// exec::ParallelRunner::run_reduce. Where run_reduce bounds how many
/// *results* may be in flight ahead of the commit cursor, the admission
/// controller bounds how many *requests* may be executing plus waiting —
/// beyond that, new arrivals are rejected immediately with an explicit
/// `overloaded` signal instead of queueing without bound (the failure mode
/// this exists to prevent: every queued request pins a connection and a
/// parsed request, so an unbounded queue turns a load spike into unbounded
/// memory).
///
/// Admission is strictly FIFO-fair: waiters hold ticket numbers and are
/// granted slots in ticket order, so a burst of cheap requests cannot
/// starve an earlier expensive one.
namespace glva::serve {

class AdmissionController {
public:
  struct Options {
    /// Requests executing concurrently. Each admitted request may fan out
    /// over the daemon's whole thread pool; multiple active requests
    /// interleave on the pool's FIFO queue.
    std::size_t max_active = 1;
    /// Admitted-but-waiting requests. Arrivals beyond active+queued are
    /// rejected (try_admit returns nullopt).
    std::size_t max_queued = 0;
  };

  struct Stats {
    std::uint64_t admitted = 0;   ///< granted an execution slot
    std::uint64_t rejected = 0;   ///< turned away as overloaded
    std::uint64_t completed = 0;  ///< slots released
    std::size_t active = 0;       ///< executing now
    std::size_t queued = 0;       ///< waiting for a slot now
    std::size_t peak_queued = 0;  ///< high-water mark of `queued`
  };

  /// RAII execution slot: destruction releases it and wakes the next
  /// ticket in FIFO order.
  class Ticket {
  public:
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&&) = delete;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket();

  private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller) noexcept
        : controller_(controller) {}
    AdmissionController* controller_;
  };

  explicit AdmissionController(const Options& options);

  /// Take an execution slot, blocking in FIFO order while the queue has
  /// room. Returns nullopt immediately — without blocking — when the
  /// controller is saturated (all active slots busy and the queue full)
  /// or closed; the two cases are distinguishable via stats().rejected
  /// (saturation counts, closure does not).
  [[nodiscard]] std::optional<Ticket> try_admit();

  /// Reject all current waiters and future arrivals (shutdown). Idempotent.
  void close();

  [[nodiscard]] Stats stats() const;

private:
  void release();

  const std::size_t max_active_;
  const std::size_t max_queued_;

  mutable std::mutex mutex_;
  std::condition_variable slot_available_;
  bool closed_ = false;
  std::uint64_t next_ticket_ = 0;  ///< next number to hand out
  std::uint64_t serving_ = 0;      ///< lowest ticket not yet granted
  std::size_t active_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t peak_queued_ = 0;
};

}  // namespace glva::serve
