#ifndef GLVA_SERVE_CLIENT_H
#define GLVA_SERVE_CLIENT_H

// Blocking client for the framed JSON protocol (docs/SERVE.md): one
// connection, synchronous request/response round trips. Shared by the
// `glva stats` command and the bench_serve load generator.

#include <string>

#include "serve/protocol.h"

namespace glva::serve {

class Client {
 public:
  // Both throw glva::Error when the endpoint cannot be reached.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, const std::string& port);

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client& operator=(Client&&) = delete;
  ~Client();

  // Sends one request payload and blocks for its response payload.
  Json round_trip(const std::string& payload);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_;
  FrameDecoder decoder_;
};

}  // namespace glva::serve

#endif  // GLVA_SERVE_CLIENT_H
