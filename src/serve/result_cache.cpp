#include "serve/result_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace glva::serve {

ResultCache::ResultCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

std::optional<ResultCache::CachedResponse> ResultCache::get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    static obs::Counter& misses = obs::counter("serve.cache.misses");
    misses.increment();
    return std::nullopt;
  }
  ++hits_;
  static obs::Counter& hits = obs::counter("serve.cache.hits");
  hits.increment();
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->response;
}

void ResultCache::put(const std::string& key, int exit_code,
                      const std::string& body) {
  const std::size_t cost = cost_of(key, body);
  if (cost > capacity_bytes_) return;  // also covers the disabled (0) cache
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (bytes_ + cost > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.cost;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    static obs::Counter& evictions = obs::counter("serve.cache.evictions");
    evictions.increment();
  }
  lru_.push_front(Entry{key, CachedResponse{exit_code, body}, cost});
  index_.emplace(key, lru_.begin());
  bytes_ += cost;
  ++insertions_;
  static obs::Counter& insertions = obs::counter("serve.cache.insertions");
  insertions.increment();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = capacity_bytes_;
  return stats;
}

}  // namespace glva::serve
