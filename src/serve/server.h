#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "app/request.h"
#include "exec/parallel_runner.h"
#include "exec/thread_pool.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"

/// The `glva serve` daemon: a long-lived analysis server speaking the
/// framed JSON protocol (serve/protocol.h) over TCP and/or Unix-domain
/// stream sockets.
///
/// One process owns ONE persistent exec::ThreadPool for its whole
/// lifetime; every admitted request fans out over it through a borrowed
/// exec::ParallelRunner (simulation startup cost is paid once, not per
/// request). Requests flow through three gates:
///
///   1. the result cache (serve/result_cache.h): a content-addressed hit
///      answers without executing anything;
///   2. single-flight coalescing: concurrent *identical* requests elect
///      one leader; followers wait for its result and are answered
///      `cached: true` — the paper's workloads are deterministic, so
///      running the same request twice concurrently is pure waste;
///   3. admission control (serve/admission.h): bounded concurrency +
///      bounded FIFO queue, with explicit `overloaded` rejections beyond
///      that.
///
/// Request execution is app::execute — the CLI's own path — so a daemon
/// response body is byte-identical to the CLI output for the same flags.
namespace glva::serve {

struct ServerOptions {
  /// TCP listen address as "host:port" (empty host = all interfaces,
  /// port 0 = ephemeral; see Server::tcp_port()). Empty disables TCP.
  std::string listen_addr;
  /// Unix-domain socket path; any stale file at the path is replaced.
  /// Empty disables the Unix listener.
  std::string unix_path;
  /// Worker threads in the persistent pool (0 = one per hardware thread).
  std::size_t jobs = 0;
  /// Requests executing concurrently (0 = pool thread count).
  std::size_t max_active = 0;
  /// Admitted-but-waiting requests before arrivals are rejected.
  std::size_t max_queued = 64;
  /// Result-cache byte budget (0 disables caching).
  std::size_t cache_bytes = 64u << 20;
  /// Largest accepted request frame payload.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// run_serve: seconds between one-line stats summaries on the error
  /// stream (0 disables the reporter thread).
  unsigned stats_interval_seconds = 0;
};

class Server {
public:
  explicit Server(const ServerOptions& options);
  ~Server();  ///< stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the configured listeners and begin accepting. Throws
  /// glva::InvalidArgument when neither listener is configured and
  /// glva::Error when a socket cannot be bound.
  void start();

  /// Drain and shut down: stop accepting, reject queued admissions, wake
  /// blocked reads, wait for in-flight requests and connections to
  /// finish. Idempotent.
  void stop();

  /// The bound TCP port (resolves an ephemeral `:0`), or 0 without TCP.
  [[nodiscard]] std::uint16_t tcp_port() const noexcept { return tcp_port_; }
  [[nodiscard]] const std::string& unix_socket_path() const noexcept {
    return options_.unix_path;
  }
  [[nodiscard]] std::size_t pool_threads() const noexcept {
    return pool_.thread_count();
  }

  [[nodiscard]] ResultCache::Stats cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] AdmissionController::Stats admission_stats() const {
    return admission_.stats();
  }
  /// Requests answered by a concurrent identical execution (single-flight
  /// followers) rather than a cache hit or their own run.
  [[nodiscard]] std::uint64_t coalesced_requests() const noexcept {
    return requests_coalesced_.load();
  }

  /// One request/response exchange without a socket: `payload` is a frame
  /// payload, the return value is the response payload. This is the exact
  /// dispatch path connections use — tests and the in-process bench mode
  /// drive it directly.
  [[nodiscard]] std::string dispatch(const std::string& payload);

private:
  struct InFlight {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    bool ok = false;
    int exit_code = 0;
    std::string body;
    ErrorKind error_kind = ErrorKind::kInternal;
    std::string error_message;
  };

  void accept_loop(int listen_fd);
  void serve_connection(int fd);
  [[nodiscard]] bool send_frame(int fd, const std::string& payload);
  [[nodiscard]] std::string handle_analysis(const WireRequest& wire,
                                            app::Request::Op op);
  [[nodiscard]] Json status_json() const;

  std::mutex trace_mutex_;  ///< one traced request captures at a time

  ServerOptions options_;
  exec::ThreadPool pool_;
  exec::ParallelRunner runner_;
  AdmissionController admission_;
  ResultCache cache_;

  std::atomic<bool> running_{false};
  std::mutex lifecycle_mutex_;  ///< serializes start()/stop()
  bool started_ = false;
  int tcp_fd_ = -1;
  int unix_fd_ = -1;
  std::uint16_t tcp_port_ = 0;
  std::vector<std::thread> accept_threads_;

  std::mutex conn_mutex_;
  std::condition_variable conn_drained_;
  std::unordered_set<int> conn_fds_;
  std::size_t open_connections_ = 0;

  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;

  std::atomic<std::uint64_t> requests_received_{0};
  std::atomic<std::uint64_t> requests_executed_{0};
  std::atomic<std::uint64_t> requests_coalesced_{0};
};

/// The `glva serve` command body: block SIGINT/SIGTERM, start a Server,
/// print the bound endpoints to `out`, wait for a signal, drain, print
/// final cache/admission stats, return 0. Socket and argument errors
/// propagate as glva exceptions (the CLI maps them to exit 2).
int run_serve(const ServerOptions& options, std::ostream& out,
              std::ostream& err);

}  // namespace glva::serve
