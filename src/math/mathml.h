#pragma once

#include "math/expr.h"
#include "xml/xml_node.h"

namespace glva::math {

/// The MathML namespace URI SBML kinetic laws use.
inline constexpr const char* kMathMLNamespace =
    "http://www.w3.org/1998/Math/MathML";

/// Read the MathML subset used by SBML kinetic laws into an expression
/// tree.
///
/// Supported constructs: <cn> (integer, real, e-notation with <sep/>),
/// <ci>, and <apply> with plus (n-ary), minus (unary and binary), times
/// (n-ary), divide, power, exp, ln, log (base 10), root (square), abs,
/// floor, ceiling, min, max.
///
/// `math_element` may be the <math> wrapper or the operator element itself.
/// Throws glva::ParseError on unsupported or malformed content.
[[nodiscard]] ExprPtr from_mathml(const xml::XmlNode& math_element);

/// Serialize an expression to a <math> element (with the MathML namespace
/// declared). GLVA's hill(x, k, n) extension is expanded to
/// x^n / (k^n + x^n) so emitted documents are plain SBML-compatible MathML.
[[nodiscard]] xml::XmlNodePtr to_mathml(const Expr& expr);

}  // namespace glva::math
