#include "math/expr_parser.h"

#include <cctype>
#include <charconv>
#include <optional>

#include "util/errors.h"

namespace glva::math {

namespace {

class ExprParser {
public:
  explicit ExprParser(std::string_view input) : input_(input) {}

  ExprPtr parse() {
    ExprPtr e = parse_expr();
    skip_ws();
    if (pos_ != input_.size()) fail("unexpected trailing input");
    return e;
  }

private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("expression: " + message, 1, pos_ + 1);
  }

  void skip_ws() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::optional<char> peek() {
    skip_ws();
    if (pos_ >= input_.size()) return std::nullopt;
    return input_[pos_];
  }

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_term();
    for (;;) {
      if (consume('+')) {
        lhs = Expr::add(lhs, parse_term());
      } else if (consume('-')) {
        lhs = Expr::sub(lhs, parse_term());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    for (;;) {
      if (consume('*')) {
        lhs = Expr::mul(lhs, parse_factor());
      } else if (consume('/')) {
        lhs = Expr::div(lhs, parse_factor());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_factor() {
    // Unary signs stack: "--x" is x, "-+-x" is x.
    bool negative = false;
    for (;;) {
      if (consume('-')) {
        negative = !negative;
      } else if (consume('+')) {
        // no-op
      } else {
        break;
      }
    }
    ExprPtr e = parse_power();
    return negative ? Expr::negate(e) : e;
  }

  ExprPtr parse_power() {
    ExprPtr base = parse_primary();
    if (consume('^')) {
      // Right-associative: recurse through factor so "-" binds looser.
      return Expr::pow(base, parse_factor());
    }
    return base;
  }

  ExprPtr parse_primary() {
    skip_ws();
    if (pos_ >= input_.size()) fail("unexpected end of expression");
    const char c = input_[pos_];
    if (c == '(') {
      ++pos_;
      ExprPtr e = parse_expr();
      if (!consume(')')) fail("missing ')'");
      return e;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parse_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return parse_identifier();
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  ExprPtr parse_number() {
    const char* first = input_.data() + pos_;
    const char* last = input_.data() + input_.size();
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{}) fail("malformed number");
    pos_ += static_cast<std::size_t>(ptr - first);
    return Expr::number(value);
  }

  ExprPtr parse_identifier() {
    std::size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    std::string name(input_.substr(start, pos_ - start));
    if (!consume('(')) return Expr::symbol(std::move(name));

    // Function call.
    std::vector<ExprPtr> args;
    if (peek() != ')') {
      args.push_back(parse_expr());
      while (consume(',')) args.push_back(parse_expr());
    }
    if (!consume(')')) fail("missing ')' after function arguments");

    static const struct {
      const char* name;
      Function f;
    } kFunctions[] = {
        {"exp", Function::kExp},     {"ln", Function::kLn},
        {"log10", Function::kLog10}, {"sqrt", Function::kSqrt},
        {"abs", Function::kAbs},     {"floor", Function::kFloor},
        {"ceil", Function::kCeil},   {"min", Function::kMin},
        {"max", Function::kMax},     {"hill", Function::kHill},
    };
    for (const auto& entry : kFunctions) {
      if (name == entry.name) {
        try {
          return Expr::call(entry.f, std::move(args));
        } catch (const InvalidArgument& e) {
          fail(e.what());
        }
      }
    }
    fail("unknown function '" + name + "'");
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

ExprPtr parse_expression(std::string_view input) {
  ExprParser parser(input);
  return parser.parse();
}

}  // namespace glva::math
