#include "math/mathml.h"

#include <cmath>

#include "util/errors.h"
#include "util/string_util.h"

namespace glva::math {

namespace {

ExprPtr read_node(const xml::XmlNode& node);

ExprPtr read_cn(const xml::XmlNode& node) {
  const std::string type = node.attribute("type").value_or("real");
  if (type == "e-notation") {
    // <cn type="e-notation"> mantissa <sep/> exponent </cn>
    std::string mantissa;
    std::string exponent;
    bool after_sep = false;
    for (const auto& child : node.children()) {
      if (child->kind() == xml::XmlNode::Kind::kElement &&
          child->name() == "sep") {
        after_sep = true;
      } else if (child->kind() == xml::XmlNode::Kind::kText) {
        (after_sep ? exponent : mantissa) += child->content();
      }
    }
    const auto m = util::parse_double(mantissa);
    const auto e = util::parse_double(exponent);
    if (!m || !e) throw ParseError("MathML: malformed e-notation <cn>");
    return Expr::number(*m * std::pow(10.0, *e));
  }
  const auto value = util::parse_double(node.text_content());
  if (!value) {
    throw ParseError("MathML: malformed <cn> value '" + node.text_content() +
                     "'");
  }
  return Expr::number(*value);
}

ExprPtr fold_nary(BinaryOp op, const std::vector<const xml::XmlNode*>& args,
                  std::size_t first) {
  ExprPtr acc = read_node(*args[first]);
  for (std::size_t i = first + 1; i < args.size(); ++i) {
    acc = Expr::binary(op, acc, read_node(*args[i]));
  }
  return acc;
}

ExprPtr read_apply(const xml::XmlNode& node) {
  const auto children = node.element_children();
  if (children.empty()) throw ParseError("MathML: empty <apply>");
  const std::string& op = children[0]->name();
  const std::size_t argc = children.size() - 1;
  const auto require_args = [&](std::size_t n) {
    if (argc != n) {
      throw ParseError("MathML: <" + op + "> expects " + std::to_string(n) +
                       " operand(s), got " + std::to_string(argc));
    }
  };

  if (op == "plus") {
    if (argc == 0) return Expr::number(0.0);
    return fold_nary(BinaryOp::kAdd, children, 1);
  }
  if (op == "times") {
    if (argc == 0) return Expr::number(1.0);
    return fold_nary(BinaryOp::kMul, children, 1);
  }
  if (op == "minus") {
    if (argc == 1) return Expr::negate(read_node(*children[1]));
    require_args(2);
    return Expr::sub(read_node(*children[1]), read_node(*children[2]));
  }
  if (op == "divide") {
    require_args(2);
    return Expr::div(read_node(*children[1]), read_node(*children[2]));
  }
  if (op == "power") {
    require_args(2);
    return Expr::pow(read_node(*children[1]), read_node(*children[2]));
  }
  if (op == "root") {
    // <root> [<degree>..</degree>] x </root>; default degree 2.
    if (argc == 1) {
      return Expr::call(Function::kSqrt, {read_node(*children[1])});
    }
    if (argc == 2 && children[1]->name() == "degree") {
      const auto degree_children = children[1]->element_children();
      if (degree_children.size() != 1) {
        throw ParseError("MathML: malformed <degree>");
      }
      return Expr::pow(read_node(*children[2]),
                       Expr::div(Expr::number(1.0),
                                 read_node(*degree_children[0])));
    }
    throw ParseError("MathML: unsupported <root> form");
  }
  if (op == "log") {
    // <log> [<logbase>..</logbase>] x </log>; default base 10.
    if (argc == 1) {
      return Expr::call(Function::kLog10, {read_node(*children[1])});
    }
    if (argc == 2 && children[1]->name() == "logbase") {
      const auto base_children = children[1]->element_children();
      if (base_children.size() != 1) {
        throw ParseError("MathML: malformed <logbase>");
      }
      // log_b(x) = ln(x) / ln(b)
      return Expr::div(Expr::call(Function::kLn, {read_node(*children[2])}),
                       Expr::call(Function::kLn, {read_node(*base_children[0])}));
    }
    throw ParseError("MathML: unsupported <log> form");
  }

  static const struct {
    const char* name;
    Function f;
    std::size_t args;
  } kUnary[] = {
      {"exp", Function::kExp, 1},      {"ln", Function::kLn, 1},
      {"abs", Function::kAbs, 1},      {"floor", Function::kFloor, 1},
      {"ceiling", Function::kCeil, 1},
  };
  for (const auto& entry : kUnary) {
    if (op == entry.name) {
      require_args(entry.args);
      return Expr::call(entry.f, {read_node(*children[1])});
    }
  }
  if (op == "min" || op == "max") {
    if (argc < 2) throw ParseError("MathML: <" + op + "> expects >= 2 operands");
    std::vector<ExprPtr> args;
    for (std::size_t i = 1; i < children.size(); ++i) {
      args.push_back(read_node(*children[i]));
    }
    return Expr::call(op == "min" ? Function::kMin : Function::kMax,
                      std::move(args));
  }
  throw ParseError("MathML: unsupported operator <" + op + ">");
}

ExprPtr read_node(const xml::XmlNode& node) {
  if (node.name() == "cn") return read_cn(node);
  if (node.name() == "ci") {
    const std::string name = node.text_content();
    if (name.empty()) throw ParseError("MathML: empty <ci>");
    return Expr::symbol(name);
  }
  if (node.name() == "apply") return read_apply(node);
  throw ParseError("MathML: unsupported element <" + node.name() + ">");
}

void write_node(const Expr& expr, xml::XmlNode& parent) {
  switch (expr.kind()) {
    case Expr::Kind::kNumber: {
      auto& cn = parent.add_element("cn");
      const double v = expr.value();
      if (v == std::floor(v) && std::fabs(v) < 1e15) {
        cn.set_attribute("type", "integer");
      }
      cn.add_text(util::format_double(v));
      return;
    }
    case Expr::Kind::kSymbol: {
      parent.add_element("ci").add_text(expr.name());
      return;
    }
    case Expr::Kind::kNegate: {
      auto& apply = parent.add_element("apply");
      apply.add_element("minus");
      write_node(*expr.children()[0], apply);
      return;
    }
    case Expr::Kind::kBinary: {
      auto& apply = parent.add_element("apply");
      const char* names[] = {"plus", "minus", "times", "divide", "power"};
      apply.add_element(names[static_cast<int>(expr.op())]);
      write_node(*expr.children()[0], apply);
      write_node(*expr.children()[1], apply);
      return;
    }
    case Expr::Kind::kCall: {
      if (expr.function() == Function::kHill) {
        // Expand hill(x, k, n) to x^n / (k^n + x^n) so the emitted MathML is
        // plain SBML-compatible.
        const ExprPtr x = expr.children()[0];
        const ExprPtr k = expr.children()[1];
        const ExprPtr n = expr.children()[2];
        const ExprPtr expanded =
            Expr::div(Expr::pow(x, n),
                      Expr::add(Expr::pow(k, n), Expr::pow(x, n)));
        write_node(*expanded, parent);
        return;
      }
      if (expr.function() == Function::kSqrt) {
        auto& apply = parent.add_element("apply");
        apply.add_element("root");
        write_node(*expr.children()[0], apply);
        return;
      }
      if (expr.function() == Function::kLog10) {
        auto& apply = parent.add_element("apply");
        apply.add_element("log");
        write_node(*expr.children()[0], apply);
        return;
      }
      auto& apply = parent.add_element("apply");
      const char* name = "exp";
      switch (expr.function()) {
        case Function::kExp: name = "exp"; break;
        case Function::kLn: name = "ln"; break;
        case Function::kAbs: name = "abs"; break;
        case Function::kFloor: name = "floor"; break;
        case Function::kCeil: name = "ceiling"; break;
        case Function::kMin: name = "min"; break;
        case Function::kMax: name = "max"; break;
        default: break;
      }
      apply.add_element(name);
      for (const auto& child : expr.children()) write_node(*child, apply);
      return;
    }
  }
}

}  // namespace

ExprPtr from_mathml(const xml::XmlNode& math_element) {
  const xml::XmlNode* node = &math_element;
  if (node->name() == "math") {
    const auto children = node->element_children();
    if (children.size() != 1) {
      throw ParseError("MathML: <math> must contain exactly one expression");
    }
    node = children[0];
  }
  return read_node(*node);
}

xml::XmlNodePtr to_mathml(const Expr& expr) {
  auto math = xml::XmlNode::element("math");
  math->set_attribute("xmlns", kMathMLNamespace);
  write_node(expr, *math);
  return math;
}

}  // namespace glva::math
