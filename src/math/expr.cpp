#include "math/expr.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/errors.h"
#include "util/string_util.h"

namespace glva::math {

const char* function_name(Function f) noexcept {
  switch (f) {
    case Function::kExp: return "exp";
    case Function::kLn: return "ln";
    case Function::kLog10: return "log10";
    case Function::kSqrt: return "sqrt";
    case Function::kAbs: return "abs";
    case Function::kFloor: return "floor";
    case Function::kCeil: return "ceil";
    case Function::kMin: return "min";
    case Function::kMax: return "max";
    case Function::kHill: return "hill";
  }
  return "?";
}

ExprPtr Expr::number(double value) {
  auto node = std::shared_ptr<Expr>(new Expr);
  node->kind_ = Kind::kNumber;
  node->value_ = value;
  return node;
}

ExprPtr Expr::symbol(std::string name) {
  auto node = std::shared_ptr<Expr>(new Expr);
  node->kind_ = Kind::kSymbol;
  node->name_ = std::move(name);
  return node;
}

ExprPtr Expr::negate(ExprPtr operand) {
  auto node = std::shared_ptr<Expr>(new Expr);
  node->kind_ = Kind::kNegate;
  node->children_ = {std::move(operand)};
  return node;
}

ExprPtr Expr::binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto node = std::shared_ptr<Expr>(new Expr);
  node->kind_ = Kind::kBinary;
  node->op_ = op;
  node->children_ = {std::move(lhs), std::move(rhs)};
  return node;
}

ExprPtr Expr::call(Function f, std::vector<ExprPtr> args) {
  const std::size_t expected = (f == Function::kMin || f == Function::kMax)
                                   ? 0  // variadic, validated below
                                   : (f == Function::kHill ? 3 : 1);
  if (f == Function::kMin || f == Function::kMax) {
    if (args.size() < 2) {
      throw InvalidArgument(std::string(function_name(f)) +
                            "() needs at least two arguments");
    }
  } else if (args.size() != expected) {
    throw InvalidArgument(std::string(function_name(f)) + "() expects " +
                          std::to_string(expected) + " argument(s), got " +
                          std::to_string(args.size()));
  }
  auto node = std::shared_ptr<Expr>(new Expr);
  node->kind_ = Kind::kCall;
  node->function_ = f;
  node->children_ = std::move(args);
  return node;
}

namespace {

void collect_symbols(const Expr& expr, std::set<std::string>& out) {
  if (expr.kind() == Expr::Kind::kSymbol) {
    out.insert(expr.name());
    return;
  }
  for (const auto& child : expr.children()) collect_symbols(*child, out);
}

/// Precedence used for minimal parenthesization: higher binds tighter.
int precedence(const Expr& expr) noexcept {
  switch (expr.kind()) {
    case Expr::Kind::kNumber:
    case Expr::Kind::kSymbol:
    case Expr::Kind::kCall:
      return 5;
    case Expr::Kind::kNegate:
      return 4;
    case Expr::Kind::kBinary:
      switch (expr.op()) {
        case BinaryOp::kPow: return 3;
        case BinaryOp::kMul:
        case BinaryOp::kDiv: return 2;
        case BinaryOp::kAdd:
        case BinaryOp::kSub: return 1;
      }
  }
  return 0;
}

void render(const Expr& expr, std::string& out) {
  const auto child_with_parens = [&](const Expr& child, bool needs_parens) {
    if (needs_parens) out += '(';
    render(child, out);
    if (needs_parens) out += ')';
  };
  switch (expr.kind()) {
    case Expr::Kind::kNumber:
      out += util::format_double(expr.value());
      return;
    case Expr::Kind::kSymbol:
      out += expr.name();
      return;
    case Expr::Kind::kNegate:
      out += '-';
      child_with_parens(*expr.children()[0],
                        precedence(*expr.children()[0]) < precedence(expr));
      return;
    case Expr::Kind::kCall: {
      out += function_name(expr.function());
      out += '(';
      for (std::size_t i = 0; i < expr.children().size(); ++i) {
        if (i != 0) out += ", ";
        render(*expr.children()[i], out);
      }
      out += ')';
      return;
    }
    case Expr::Kind::kBinary: {
      const char* ops[] = {" + ", " - ", " * ", " / ", "^"};
      const int self = precedence(expr);
      const Expr& lhs = *expr.children()[0];
      const Expr& rhs = *expr.children()[1];
      // '-' and '/' are left-associative; '^' is right-associative.
      const bool rhs_assoc_parens =
          (expr.op() == BinaryOp::kSub || expr.op() == BinaryOp::kDiv)
              ? precedence(rhs) <= self
              : (expr.op() == BinaryOp::kPow ? false : precedence(rhs) < self);
      const bool lhs_parens = expr.op() == BinaryOp::kPow
                                  ? precedence(lhs) <= self
                                  : precedence(lhs) < self;
      child_with_parens(lhs, lhs_parens);
      out += ops[static_cast<int>(expr.op())];
      child_with_parens(rhs, rhs_assoc_parens || precedence(rhs) < self);
      return;
    }
  }
}

double apply_function(Function f, const std::vector<double>& args) {
  switch (f) {
    case Function::kExp: return std::exp(args[0]);
    case Function::kLn: return std::log(args[0]);
    case Function::kLog10: return std::log10(args[0]);
    case Function::kSqrt: return std::sqrt(args[0]);
    case Function::kAbs: return std::fabs(args[0]);
    case Function::kFloor: return std::floor(args[0]);
    case Function::kCeil: return std::ceil(args[0]);
    case Function::kMin: return *std::min_element(args.begin(), args.end());
    case Function::kMax: return *std::max_element(args.begin(), args.end());
    case Function::kHill: {
      // hill(x, k, n) = x^n / (k^n + x^n); defined as 0 at x = 0 even for
      // k = 0 so boundary states never produce NaN propensities.
      const double xn = std::pow(args[0], args[2]);
      const double kn = std::pow(args[1], args[2]);
      const double denom = kn + xn;
      return denom > 0.0 ? xn / denom : 0.0;
    }
  }
  return 0.0;
}

}  // namespace

std::vector<std::string> Expr::symbols() const {
  std::set<std::string> set;
  collect_symbols(*this, set);
  return {set.begin(), set.end()};
}

std::string Expr::to_string() const {
  std::string out;
  render(*this, out);
  return out;
}

bool Expr::equals(const Expr& other) const noexcept {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNumber:
      return value_ == other.value_;
    case Kind::kSymbol:
      return name_ == other.name_;
    case Kind::kBinary:
      if (op_ != other.op_) return false;
      break;
    case Kind::kCall:
      if (function_ != other.function_) return false;
      break;
    case Kind::kNegate:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->equals(*other.children_[i])) return false;
  }
  return true;
}

double evaluate(const Expr& expr, const Environment& env) {
  switch (expr.kind()) {
    case Expr::Kind::kNumber:
      return expr.value();
    case Expr::Kind::kSymbol: {
      const auto it = env.find(expr.name());
      if (it == env.end()) {
        throw InvalidArgument("unbound symbol in expression: " + expr.name());
      }
      return it->second;
    }
    case Expr::Kind::kNegate:
      return -evaluate(*expr.children()[0], env);
    case Expr::Kind::kBinary: {
      const double a = evaluate(*expr.children()[0], env);
      const double b = evaluate(*expr.children()[1], env);
      switch (expr.op()) {
        case BinaryOp::kAdd: return a + b;
        case BinaryOp::kSub: return a - b;
        case BinaryOp::kMul: return a * b;
        case BinaryOp::kDiv: return a / b;
        case BinaryOp::kPow: return std::pow(a, b);
      }
      return 0.0;
    }
    case Expr::Kind::kCall: {
      std::vector<double> args;
      args.reserve(expr.children().size());
      for (const auto& child : expr.children()) {
        args.push_back(evaluate(*child, env));
      }
      return apply_function(expr.function(), args);
    }
  }
  return 0.0;
}

CompiledExpr::CompiledExpr(
    const Expr& expr,
    const std::function<std::size_t(const std::string&)>& symbol_index) {
  compile(expr, symbol_index);
  std::sort(dependencies_.begin(), dependencies_.end());
  dependencies_.erase(std::unique(dependencies_.begin(), dependencies_.end()),
                      dependencies_.end());
  stack_.reserve(program_.size());
}

void CompiledExpr::compile(
    const Expr& expr,
    const std::function<std::size_t(const std::string&)>& symbol_index) {
  switch (expr.kind()) {
    case Expr::Kind::kNumber:
      constants_.push_back(expr.value());
      program_.push_back({OpCode::kPushConst, constants_.size() - 1, {}});
      return;
    case Expr::Kind::kSymbol: {
      const std::size_t idx = symbol_index(expr.name());
      dependencies_.push_back(idx);
      program_.push_back({OpCode::kPushVar, idx, {}});
      return;
    }
    case Expr::Kind::kNegate:
      compile(*expr.children()[0], symbol_index);
      program_.push_back({OpCode::kNeg, 0, {}});
      return;
    case Expr::Kind::kBinary: {
      compile(*expr.children()[0], symbol_index);
      compile(*expr.children()[1], symbol_index);
      OpCode code = OpCode::kAdd;
      switch (expr.op()) {
        case BinaryOp::kAdd: code = OpCode::kAdd; break;
        case BinaryOp::kSub: code = OpCode::kSub; break;
        case BinaryOp::kMul: code = OpCode::kMul; break;
        case BinaryOp::kDiv: code = OpCode::kDiv; break;
        case BinaryOp::kPow: code = OpCode::kPow; break;
      }
      program_.push_back({code, 0, {}});
      return;
    }
    case Expr::Kind::kCall: {
      for (const auto& child : expr.children()) compile(*child, symbol_index);
      const Function f = expr.function();
      if (f == Function::kMin || f == Function::kMax || f == Function::kHill) {
        program_.push_back({OpCode::kCallN, expr.children().size(), f});
      } else {
        program_.push_back({OpCode::kCall1, 0, f});
      }
      return;
    }
  }
}

double CompiledExpr::evaluate(const std::vector<double>& values) const {
  stack_.clear();
  for (const Instruction& inst : program_) {
    switch (inst.code) {
      case OpCode::kPushConst:
        stack_.push_back(constants_[inst.index]);
        break;
      case OpCode::kPushVar:
        stack_.push_back(values[inst.index]);
        break;
      case OpCode::kNeg:
        stack_.back() = -stack_.back();
        break;
      case OpCode::kAdd: {
        const double b = stack_.back();
        stack_.pop_back();
        stack_.back() += b;
        break;
      }
      case OpCode::kSub: {
        const double b = stack_.back();
        stack_.pop_back();
        stack_.back() -= b;
        break;
      }
      case OpCode::kMul: {
        const double b = stack_.back();
        stack_.pop_back();
        stack_.back() *= b;
        break;
      }
      case OpCode::kDiv: {
        const double b = stack_.back();
        stack_.pop_back();
        stack_.back() /= b;
        break;
      }
      case OpCode::kPow: {
        const double b = stack_.back();
        stack_.pop_back();
        stack_.back() = std::pow(stack_.back(), b);
        break;
      }
      case OpCode::kCall1: {
        // Inline unary dispatch: this path runs per SSA step, so it must not
        // allocate.
        double& x = stack_.back();
        switch (inst.aux) {
          case Function::kExp: x = std::exp(x); break;
          case Function::kLn: x = std::log(x); break;
          case Function::kLog10: x = std::log10(x); break;
          case Function::kSqrt: x = std::sqrt(x); break;
          case Function::kAbs: x = std::fabs(x); break;
          case Function::kFloor: x = std::floor(x); break;
          case Function::kCeil: x = std::ceil(x); break;
          default: break;  // variadic functions never compile to kCall1
        }
        break;
      }
      case OpCode::kCallN: {
        const std::size_t argc = inst.index;
        double result = 0.0;
        if (inst.aux == Function::kHill) {
          const double n = stack_[stack_.size() - 1];
          const double k = stack_[stack_.size() - 2];
          const double x = stack_[stack_.size() - 3];
          const double xn = std::pow(x, n);
          const double kn = std::pow(k, n);
          const double denom = kn + xn;
          result = denom > 0.0 ? xn / denom : 0.0;
        } else {
          result = stack_[stack_.size() - argc];
          for (std::size_t i = 1; i < argc; ++i) {
            const double v = stack_[stack_.size() - argc + i];
            result = inst.aux == Function::kMin ? std::min(result, v)
                                                : std::max(result, v);
          }
        }
        stack_.resize(stack_.size() - argc);
        stack_.push_back(result);
        break;
      }
    }
  }
  return stack_.empty() ? 0.0 : stack_.back();
}

}  // namespace glva::math
