#pragma once

#include <string_view>

#include "math/expr.h"

namespace glva::math {

/// Parse an infix arithmetic expression into an AST.
///
/// Grammar (standard precedence; `^` binds tightest and is
/// right-associative):
///
///   expr    := term (('+' | '-') term)*
///   term    := factor (('*' | '/') factor)*
///   factor  := ('-' | '+')* power
///   power   := primary ('^' factor)?
///   primary := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
///
/// Recognized functions: exp, ln, log10, sqrt, abs, floor, ceil, min, max,
/// hill. Throws glva::ParseError on malformed input.
[[nodiscard]] ExprPtr parse_expression(std::string_view input);

}  // namespace glva::math
