#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

/// Arithmetic expression trees for SBML kinetic laws, plus a compiled
/// stack-machine form used in the stochastic simulator's propensity loop.
namespace glva::math {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Binary operators, in SBML/MathML terms.
enum class BinaryOp { kAdd, kSub, kMul, kDiv, kPow };

/// Built-in unary/variadic functions accepted in kinetic laws.
enum class Function {
  kExp,
  kLn,
  kLog10,
  kSqrt,
  kAbs,
  kFloor,
  kCeil,
  kMin,   // variadic
  kMax,   // variadic
  kHill,  // hill(x, k, n) = x^n / (k^n + x^n); GLVA extension for gate models
};

/// Name of a function as written in the infix syntax ("exp", "hill", ...).
[[nodiscard]] const char* function_name(Function f) noexcept;

/// An immutable expression node. Construct via the factory functions; share
/// freely (nodes are value-semantics constants).
class Expr {
public:
  enum class Kind { kNumber, kSymbol, kNegate, kBinary, kCall };

  // -- factories ----------------------------------------------------------
  static ExprPtr number(double value);
  static ExprPtr symbol(std::string name);
  static ExprPtr negate(ExprPtr operand);
  static ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr call(Function f, std::vector<ExprPtr> args);

  // Convenience builders used heavily by the gate-model generator.
  static ExprPtr add(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kAdd, a, b); }
  static ExprPtr sub(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kSub, a, b); }
  static ExprPtr mul(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kMul, a, b); }
  static ExprPtr div(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kDiv, a, b); }
  static ExprPtr pow(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kPow, a, b); }

  // -- accessors ----------------------------------------------------------
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] double value() const noexcept { return value_; }           // kNumber
  [[nodiscard]] const std::string& name() const noexcept { return name_; } // kSymbol
  [[nodiscard]] BinaryOp op() const noexcept { return op_; }               // kBinary
  [[nodiscard]] Function function() const noexcept { return function_; }   // kCall
  /// Children: operand for kNegate, {lhs, rhs} for kBinary, args for kCall.
  [[nodiscard]] const std::vector<ExprPtr>& children() const noexcept {
    return children_;
  }

  /// All distinct symbol names in the tree, sorted.
  [[nodiscard]] std::vector<std::string> symbols() const;

  /// Render in infix syntax, parenthesized only where precedence demands.
  [[nodiscard]] std::string to_string() const;

  /// Structural equality.
  [[nodiscard]] bool equals(const Expr& other) const noexcept;

private:
  Expr() = default;

  Kind kind_ = Kind::kNumber;
  double value_ = 0.0;
  std::string name_;
  BinaryOp op_ = BinaryOp::kAdd;
  Function function_ = Function::kExp;
  std::vector<ExprPtr> children_;
};

/// Variable bindings for tree-walking evaluation.
using Environment = std::map<std::string, double, std::less<>>;

/// Evaluate by walking the tree. Throws glva::InvalidArgument for unbound
/// symbols. Division by zero and domain errors follow IEEE semantics
/// (inf/nan propagate; the simulator validates propensities separately).
[[nodiscard]] double evaluate(const Expr& expr, const Environment& env);

/// An expression compiled against a fixed symbol table, evaluated against a
/// dense value vector. This is the hot path: the SSA evaluates propensities
/// millions of times per run, so symbol lookups are resolved to indices
/// once, at compile time.
class CompiledExpr {
public:
  /// `symbol_index(name)` must return the index of `name` in the value
  /// vector passed to evaluate(), or throw if unknown.
  CompiledExpr(const Expr& expr,
               const std::function<std::size_t(const std::string&)>& symbol_index);

  CompiledExpr() = default;

  /// Evaluate against `values`, where `values[i]` binds the symbol that
  /// compiled to index i. No allocation; reuses an internal stack.
  [[nodiscard]] double evaluate(const std::vector<double>& values) const;

  /// Indices of all symbols the expression reads (sorted, unique) — used to
  /// build reaction dependency graphs.
  [[nodiscard]] const std::vector<std::size_t>& dependencies() const noexcept {
    return dependencies_;
  }

private:
  enum class OpCode : unsigned char {
    kPushConst,
    kPushVar,
    kNeg,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kPow,
    kCall1,  // unary function in aux
    kCallN,  // variadic (min/max/hill) in aux, argc in index
  };
  struct Instruction {
    OpCode code;
    std::size_t index = 0;   // constant slot or variable index or argc
    Function aux = Function::kExp;
  };

  void compile(const Expr& expr,
               const std::function<std::size_t(const std::string&)>& symbol_index);

  std::vector<Instruction> program_;
  std::vector<double> constants_;
  std::vector<std::size_t> dependencies_;
  mutable std::vector<double> stack_;
};

}  // namespace glva::math
