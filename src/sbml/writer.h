#pragma once

#include <string>

#include "sbml/model.h"

namespace glva::sbml {

/// Serialize a Model as an SBML Level 3 Version 1 document. The output
/// round-trips through read_sbml() (kinetic laws are compared by value, not
/// by tree shape, since hill() is expanded on write).
[[nodiscard]] std::string write_sbml(const Model& model);

/// Write the document to `path`. Throws glva::Error on I/O failure.
void write_sbml_file(const Model& model, const std::string& path);

}  // namespace glva::sbml
