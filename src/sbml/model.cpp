#include "sbml/model.h"

#include "math/expr_parser.h"
#include "util/errors.h"

namespace glva::sbml {

Compartment& Model::add_compartment(const std::string& compartment_id,
                                    double size) {
  compartments.push_back(Compartment{compartment_id, size, true});
  return compartments.back();
}

Species& Model::add_species(const std::string& species_id,
                            double initial_amount, bool boundary) {
  if (compartments.empty()) {
    throw InvalidArgument("add_species: model has no compartment yet");
  }
  Species s;
  s.id = species_id;
  s.compartment = compartments.front().id;
  s.initial_amount = initial_amount;
  s.boundary_condition = boundary;
  species.push_back(std::move(s));
  return species.back();
}

Parameter& Model::add_parameter(const std::string& parameter_id, double value) {
  parameters.push_back(Parameter{parameter_id, value, true});
  return parameters.back();
}

Reaction& Model::add_reaction(const std::string& reaction_id,
                              const std::vector<SpeciesReference>& reactants,
                              const std::vector<SpeciesReference>& products,
                              const std::string& kinetic_law_infix,
                              const std::vector<ModifierReference>& modifiers) {
  Reaction r;
  r.id = reaction_id;
  r.reactants = reactants;
  r.products = products;
  r.modifiers = modifiers;
  r.kinetic_law.math = math::parse_expression(kinetic_law_infix);
  reactions.push_back(std::move(r));
  return reactions.back();
}

const Species* Model::find_species(const std::string& species_id) const noexcept {
  for (const auto& s : species) {
    if (s.id == species_id) return &s;
  }
  return nullptr;
}

Species* Model::find_species(const std::string& species_id) noexcept {
  for (auto& s : species) {
    if (s.id == species_id) return &s;
  }
  return nullptr;
}

const Parameter* Model::find_parameter(
    const std::string& parameter_id) const noexcept {
  for (const auto& p : parameters) {
    if (p.id == parameter_id) return &p;
  }
  return nullptr;
}

const Reaction* Model::find_reaction(
    const std::string& reaction_id) const noexcept {
  for (const auto& r : reactions) {
    if (r.id == reaction_id) return &r;
  }
  return nullptr;
}

const Compartment* Model::find_compartment(
    const std::string& compartment_id) const noexcept {
  for (const auto& c : compartments) {
    if (c.id == compartment_id) return &c;
  }
  return nullptr;
}

std::vector<std::string> Model::boundary_species_ids() const {
  std::vector<std::string> out;
  for (const auto& s : species) {
    if (s.boundary_condition) out.push_back(s.id);
  }
  return out;
}

}  // namespace glva::sbml
