#pragma once

#include <optional>
#include <string>
#include <vector>

#include "math/expr.h"

/// An SBML Level 3 Version 1 core subset sufficient for genetic logic
/// circuit models: compartments, species, global parameters, and
/// irreversible reactions with kinetic-law mathematics.
///
/// This mirrors how D-VASim consumes SBML [Baig & Madsen, Bioinformatics
/// 2016]: species amounts are discrete molecule counts, kinetic laws are
/// propensity functions, and boundary-condition species act as externally
/// clamped inputs.
namespace glva::sbml {

/// A reaction compartment. Genetic circuit models typically use a single
/// unit-sized "cell" compartment.
struct Compartment {
  std::string id;
  double size = 1.0;
  bool constant = true;
};

/// A molecular species.
struct Species {
  std::string id;
  std::string name;          ///< human-readable name; may be empty
  std::string compartment;   ///< id of the owning compartment
  double initial_amount = 0.0;
  /// Boundary species are not changed by reaction firings — the virtual lab
  /// clamps circuit inputs by marking them as boundary species.
  bool boundary_condition = false;
  bool constant = false;
  bool has_only_substance_units = true;
};

/// A global constant used by kinetic laws.
struct Parameter {
  std::string id;
  double value = 0.0;
  bool constant = true;
};

/// One reactant/product entry: `stoichiometry` copies of `species`.
struct SpeciesReference {
  std::string species;
  double stoichiometry = 1.0;
};

/// A species that appears in a kinetic law without being consumed or
/// produced (e.g. a repressor regulating a promoter).
struct ModifierReference {
  std::string species;
};

/// The rate mathematics of a reaction, with optional reaction-local
/// parameters that shadow global ones inside `math`.
struct KineticLaw {
  math::ExprPtr math;
  std::vector<Parameter> local_parameters;
};

/// An irreversible reaction. (Reversible reactions must be split before
/// stochastic simulation; the validator rejects `reversible = true`.)
struct Reaction {
  std::string id;
  std::string name;
  bool reversible = false;
  std::vector<SpeciesReference> reactants;
  std::vector<SpeciesReference> products;
  std::vector<ModifierReference> modifiers;
  KineticLaw kinetic_law;
};

/// An SBML model: the unit loaded into the virtual lab and compiled into a
/// reaction network.
class Model {
public:
  std::string id;
  std::string name;
  std::vector<Compartment> compartments;
  std::vector<Species> species;
  std::vector<Parameter> parameters;
  std::vector<Reaction> reactions;

  // -- builders (return references into the model's vectors) --------------

  /// Add a compartment (defaults: size 1, constant).
  Compartment& add_compartment(const std::string& compartment_id,
                               double size = 1.0);
  /// Add a species with the given initial amount, in the first compartment
  /// (which must exist).
  Species& add_species(const std::string& species_id, double initial_amount,
                       bool boundary = false);
  /// Add a global constant parameter.
  Parameter& add_parameter(const std::string& parameter_id, double value);
  /// Add an irreversible reaction with a kinetic law given in GLVA's infix
  /// syntax (parsed immediately; throws glva::ParseError on bad input).
  Reaction& add_reaction(const std::string& reaction_id,
                         const std::vector<SpeciesReference>& reactants,
                         const std::vector<SpeciesReference>& products,
                         const std::string& kinetic_law_infix,
                         const std::vector<ModifierReference>& modifiers = {});

  // -- lookups -------------------------------------------------------------

  [[nodiscard]] const Species* find_species(const std::string& species_id) const noexcept;
  [[nodiscard]] Species* find_species(const std::string& species_id) noexcept;
  [[nodiscard]] const Parameter* find_parameter(const std::string& parameter_id) const noexcept;
  [[nodiscard]] const Reaction* find_reaction(const std::string& reaction_id) const noexcept;
  [[nodiscard]] const Compartment* find_compartment(const std::string& compartment_id) const noexcept;

  /// Ids of all species with `boundary_condition = true` (the circuit's
  /// clampable inputs).
  [[nodiscard]] std::vector<std::string> boundary_species_ids() const;
};

}  // namespace glva::sbml
