#include "sbml/reader.h"

#include <fstream>
#include <sstream>

#include "math/mathml.h"
#include "util/errors.h"
#include "util/string_util.h"
#include "xml/xml_parser.h"

namespace glva::sbml {

namespace {

double read_double_attribute(const xml::XmlNode& node, std::string_view name,
                             double fallback) {
  const auto raw = node.attribute(name);
  if (!raw) return fallback;
  const auto value = util::parse_double(*raw);
  if (!value) {
    throw ParseError("SBML: attribute '" + std::string(name) + "' of <" +
                     node.name() + "> is not a number: '" + *raw + "'");
  }
  return *value;
}

bool read_bool_attribute(const xml::XmlNode& node, std::string_view name,
                         bool fallback) {
  const auto raw = node.attribute(name);
  if (!raw) return fallback;
  if (*raw == "true" || *raw == "1") return true;
  if (*raw == "false" || *raw == "0") return false;
  throw ParseError("SBML: attribute '" + std::string(name) + "' of <" +
                   node.name() + "> is not a boolean: '" + *raw + "'");
}

Compartment read_compartment(const xml::XmlNode& node) {
  Compartment c;
  c.id = node.required_attribute("id");
  c.size = read_double_attribute(node, "size", 1.0);
  c.constant = read_bool_attribute(node, "constant", true);
  return c;
}

Species read_species(const xml::XmlNode& node) {
  Species s;
  s.id = node.required_attribute("id");
  s.name = node.attribute("name").value_or("");
  s.compartment = node.attribute("compartment").value_or("");
  s.initial_amount = read_double_attribute(node, "initialAmount", 0.0);
  s.boundary_condition = read_bool_attribute(node, "boundaryCondition", false);
  s.constant = read_bool_attribute(node, "constant", false);
  s.has_only_substance_units =
      read_bool_attribute(node, "hasOnlySubstanceUnits", true);
  return s;
}

Parameter read_parameter(const xml::XmlNode& node) {
  Parameter p;
  p.id = node.required_attribute("id");
  p.value = read_double_attribute(node, "value", 0.0);
  p.constant = read_bool_attribute(node, "constant", true);
  return p;
}

SpeciesReference read_species_reference(const xml::XmlNode& node) {
  SpeciesReference ref;
  ref.species = node.required_attribute("species");
  ref.stoichiometry = read_double_attribute(node, "stoichiometry", 1.0);
  return ref;
}

Reaction read_reaction(const xml::XmlNode& node) {
  Reaction r;
  r.id = node.required_attribute("id");
  r.name = node.attribute("name").value_or("");
  r.reversible = read_bool_attribute(node, "reversible", false);

  if (const auto* list = node.find_child("listOfReactants")) {
    for (const auto* ref : list->find_children("speciesReference")) {
      r.reactants.push_back(read_species_reference(*ref));
    }
  }
  if (const auto* list = node.find_child("listOfProducts")) {
    for (const auto* ref : list->find_children("speciesReference")) {
      r.products.push_back(read_species_reference(*ref));
    }
  }
  if (const auto* list = node.find_child("listOfModifiers")) {
    for (const auto* ref : list->find_children("modifierSpeciesReference")) {
      r.modifiers.push_back(ModifierReference{ref->required_attribute("species")});
    }
  }

  const auto* law = node.find_child("kineticLaw");
  if (law == nullptr) {
    throw ParseError("SBML: reaction '" + r.id + "' has no <kineticLaw>");
  }
  const auto* math = law->find_child("math");
  if (math == nullptr) {
    throw ParseError("SBML: kinetic law of reaction '" + r.id +
                     "' has no <math>");
  }
  r.kinetic_law.math = math::from_mathml(*math);
  if (const auto* locals = law->find_child("listOfLocalParameters")) {
    for (const auto* p : locals->find_children("localParameter")) {
      r.kinetic_law.local_parameters.push_back(read_parameter(*p));
    }
  }
  return r;
}

}  // namespace

Model read_sbml(std::string_view document_text) {
  const xml::XmlNodePtr root = xml::parse_document(document_text);
  if (root->name() != "sbml") {
    throw ParseError("SBML: document root is <" + root->name() +
                     ">, expected <sbml>");
  }
  const xml::XmlNode& model_node = root->required_child("model");

  Model model;
  model.id = model_node.attribute("id").value_or("");
  model.name = model_node.attribute("name").value_or("");

  if (const auto* list = model_node.find_child("listOfCompartments")) {
    for (const auto* c : list->find_children("compartment")) {
      model.compartments.push_back(read_compartment(*c));
    }
  }
  if (const auto* list = model_node.find_child("listOfSpecies")) {
    for (const auto* s : list->find_children("species")) {
      model.species.push_back(read_species(*s));
    }
  }
  if (const auto* list = model_node.find_child("listOfParameters")) {
    for (const auto* p : list->find_children("parameter")) {
      model.parameters.push_back(read_parameter(*p));
    }
  }
  if (const auto* list = model_node.find_child("listOfReactions")) {
    for (const auto* r : list->find_children("reaction")) {
      model.reactions.push_back(read_reaction(*r));
    }
  }
  return model;
}

Model read_sbml_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open SBML file: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return read_sbml(buffer.str());
}

}  // namespace glva::sbml
