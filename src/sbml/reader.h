#pragma once

#include <string>
#include <string_view>

#include "sbml/model.h"

namespace glva::sbml {

/// Parse an SBML Level 3 Version 1 document into a Model.
///
/// Recognized structure: <sbml><model> with listOfCompartments,
/// listOfSpecies, listOfParameters, and listOfReactions (each reaction with
/// listOfReactants / listOfProducts / listOfModifiers and a <kineticLaw>
/// whose <math> is the MathML subset from glva::math::from_mathml, plus
/// listOfLocalParameters). Unknown elements are ignored, matching how
/// D-VASim tolerates annotation-rich documents from other tools.
///
/// Throws glva::ParseError on malformed XML/MathML. The result is
/// structurally complete but not semantically checked — run
/// glva::sbml::validate() before simulating.
[[nodiscard]] Model read_sbml(std::string_view document_text);

/// Read and parse the SBML file at `path`.
[[nodiscard]] Model read_sbml_file(const std::string& path);

}  // namespace glva::sbml
