#include "sbml/validate.h"

#include <cmath>
#include <set>

#include "util/errors.h"
#include "util/string_util.h"

namespace glva::sbml {

namespace {

void check_sid(const std::string& id, const std::string& what,
               std::vector<ValidationIssue>& issues) {
  if (!util::is_valid_sid(id)) {
    issues.push_back({ValidationIssue::Severity::kError,
                      what + " id '" + id + "' is not a valid SBML SId"});
  }
}

}  // namespace

std::vector<ValidationIssue> validate(const Model& model) {
  std::vector<ValidationIssue> issues;
  const auto error = [&](const std::string& message) {
    issues.push_back({ValidationIssue::Severity::kError, message});
  };
  const auto warning = [&](const std::string& message) {
    issues.push_back({ValidationIssue::Severity::kWarning, message});
  };

  // Unique ids across all namespaces that share the SId scope.
  std::set<std::string> ids;
  const auto check_unique = [&](const std::string& id, const std::string& what) {
    if (!ids.insert(id).second) {
      error("duplicate id '" + id + "' (" + what + ")");
    }
  };

  if (model.compartments.empty()) {
    error("model has no compartment");
  }
  for (const auto& c : model.compartments) {
    check_sid(c.id, "compartment", issues);
    check_unique(c.id, "compartment");
    if (c.size <= 0.0) {
      error("compartment '" + c.id + "' has non-positive size");
    }
  }
  for (const auto& s : model.species) {
    check_sid(s.id, "species", issues);
    check_unique(s.id, "species");
    if (model.find_compartment(s.compartment) == nullptr) {
      error("species '" + s.id + "' references unknown compartment '" +
            s.compartment + "'");
    }
    if (s.initial_amount < 0.0) {
      error("species '" + s.id + "' has negative initial amount");
    }
  }
  for (const auto& p : model.parameters) {
    check_sid(p.id, "parameter", issues);
    check_unique(p.id, "parameter");
  }

  std::set<std::string> referenced_species;
  for (const auto& r : model.reactions) {
    check_sid(r.id, "reaction", issues);
    check_unique(r.id, "reaction");
    if (r.reversible) {
      error("reaction '" + r.id +
            "' is reversible; split it into two irreversible reactions for "
            "stochastic simulation");
    }

    const auto check_refs = [&](const std::vector<SpeciesReference>& refs,
                                const char* role) {
      for (const auto& ref : refs) {
        referenced_species.insert(ref.species);
        if (model.find_species(ref.species) == nullptr) {
          error("reaction '" + r.id + "' " + role +
                " references unknown species '" + ref.species + "'");
        }
        if (ref.stoichiometry < 0.0) {
          error("reaction '" + r.id + "' has negative stoichiometry for '" +
                ref.species + "'");
        }
        if (ref.stoichiometry != std::floor(ref.stoichiometry)) {
          error("reaction '" + r.id + "' has non-integer stoichiometry for '" +
                ref.species + "' (molecule counts are discrete)");
        }
      }
    };
    check_refs(r.reactants, "reactant");
    check_refs(r.products, "product");
    for (const auto& m : r.modifiers) {
      referenced_species.insert(m.species);
      if (model.find_species(m.species) == nullptr) {
        error("reaction '" + r.id + "' modifier references unknown species '" +
              m.species + "'");
      }
    }

    if (r.kinetic_law.math == nullptr) {
      error("reaction '" + r.id + "' has no kinetic law math");
      continue;
    }
    // Every kinetic-law symbol must resolve somewhere.
    std::set<std::string> local_ids;
    for (const auto& lp : r.kinetic_law.local_parameters) {
      if (!local_ids.insert(lp.id).second) {
        error("reaction '" + r.id + "' has duplicate local parameter '" +
              lp.id + "'");
      }
    }
    bool uses_any_reactant = r.reactants.empty();
    for (const auto& symbol : r.kinetic_law.math->symbols()) {
      const bool resolves = local_ids.count(symbol) != 0 ||
                            model.find_species(symbol) != nullptr ||
                            model.find_parameter(symbol) != nullptr ||
                            model.find_compartment(symbol) != nullptr;
      if (!resolves) {
        error("kinetic law of reaction '" + r.id +
              "' references unknown symbol '" + symbol + "'");
      }
      for (const auto& reactant : r.reactants) {
        if (reactant.species == symbol) uses_any_reactant = true;
      }
    }
    if (!uses_any_reactant) {
      warning("kinetic law of reaction '" + r.id +
              "' ignores all of its reactants; the reaction can fire with "
              "zero reactant molecules");
    }
  }

  for (const auto& s : model.species) {
    if (referenced_species.count(s.id) == 0) {
      // Inputs clamped by the virtual lab legitimately appear only as
      // kinetic-law symbols; check those too before warning.
      bool in_any_law = false;
      for (const auto& r : model.reactions) {
        if (r.kinetic_law.math == nullptr) continue;
        for (const auto& symbol : r.kinetic_law.math->symbols()) {
          if (symbol == s.id) {
            in_any_law = true;
            break;
          }
        }
        if (in_any_law) break;
      }
      if (!in_any_law) {
        warning("species '" + s.id + "' is not referenced by any reaction");
      }
    }
  }

  return issues;
}

bool is_valid(const std::vector<ValidationIssue>& issues) noexcept {
  for (const auto& issue : issues) {
    if (issue.severity == ValidationIssue::Severity::kError) return false;
  }
  return true;
}

std::vector<ValidationIssue> validate_or_throw(const Model& model) {
  auto issues = validate(model);
  if (!is_valid(issues)) {
    std::string message = "SBML model '" + model.id + "' is invalid:";
    for (const auto& issue : issues) {
      if (issue.severity == ValidationIssue::Severity::kError) {
        message += "\n  - " + issue.message;
      }
    }
    throw ValidationError(message);
  }
  std::vector<ValidationIssue> warnings;
  for (auto& issue : issues) {
    if (issue.severity == ValidationIssue::Severity::kWarning) {
      warnings.push_back(std::move(issue));
    }
  }
  return warnings;
}

}  // namespace glva::sbml
