#pragma once

#include <string>
#include <vector>

#include "sbml/model.h"

namespace glva::sbml {

/// One validation finding.
struct ValidationIssue {
  enum class Severity { kError, kWarning };
  Severity severity;
  std::string message;
};

/// Semantic validation of a structurally parsed model. Errors make a model
/// unsimulatable; warnings flag suspicious but runnable constructs.
///
/// Checks (errors): duplicate ids across compartments/species/parameters/
/// reactions; species referencing unknown compartments; reactions
/// referencing unknown species; kinetic-law symbols that resolve to neither
/// a species, a global parameter, a local parameter, nor a compartment;
/// reversible reactions (must be split for SSA); negative or non-integer
/// stoichiometries; negative initial amounts; invalid SBML SIds.
///
/// Checks (warnings): species never referenced by any reaction; reactions
/// whose kinetic law ignores all of their reactants.
[[nodiscard]] std::vector<ValidationIssue> validate(const Model& model);

/// True when `issues` contains no errors.
[[nodiscard]] bool is_valid(const std::vector<ValidationIssue>& issues) noexcept;

/// Validate and throw glva::ValidationError listing every error if any
/// exist; returns the warnings otherwise.
std::vector<ValidationIssue> validate_or_throw(const Model& model);

}  // namespace glva::sbml
