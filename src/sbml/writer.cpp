#include "sbml/writer.h"

#include <fstream>

#include "math/mathml.h"
#include "util/errors.h"
#include "util/string_util.h"
#include "xml/xml_node.h"
#include "xml/xml_writer.h"

namespace glva::sbml {

namespace {

constexpr const char* kSbmlNamespace = "http://www.sbml.org/sbml/level3/version1/core";

const char* bool_str(bool b) { return b ? "true" : "false"; }

void write_parameter(const Parameter& p, const char* element_name,
                     xml::XmlNode& parent) {
  auto& node = parent.add_element(element_name);
  node.set_attribute("id", p.id);
  node.set_attribute("value", util::format_double(p.value));
  node.set_attribute("constant", bool_str(p.constant));
}

void write_species_reference(const SpeciesReference& ref, xml::XmlNode& parent) {
  auto& node = parent.add_element("speciesReference");
  node.set_attribute("species", ref.species);
  node.set_attribute("stoichiometry", util::format_double(ref.stoichiometry));
  node.set_attribute("constant", "true");
}

void write_reaction(const Reaction& r, xml::XmlNode& parent) {
  auto& node = parent.add_element("reaction");
  node.set_attribute("id", r.id);
  if (!r.name.empty()) node.set_attribute("name", r.name);
  node.set_attribute("reversible", bool_str(r.reversible));

  if (!r.reactants.empty()) {
    auto& list = node.add_element("listOfReactants");
    for (const auto& ref : r.reactants) write_species_reference(ref, list);
  }
  if (!r.products.empty()) {
    auto& list = node.add_element("listOfProducts");
    for (const auto& ref : r.products) write_species_reference(ref, list);
  }
  if (!r.modifiers.empty()) {
    auto& list = node.add_element("listOfModifiers");
    for (const auto& ref : r.modifiers) {
      list.add_element("modifierSpeciesReference")
          .set_attribute("species", ref.species);
    }
  }

  auto& law = node.add_element("kineticLaw");
  if (r.kinetic_law.math == nullptr) {
    throw InvalidArgument("write_sbml: reaction '" + r.id +
                          "' has no kinetic law math");
  }
  law.add_child(math::to_mathml(*r.kinetic_law.math));
  if (!r.kinetic_law.local_parameters.empty()) {
    auto& list = law.add_element("listOfLocalParameters");
    for (const auto& p : r.kinetic_law.local_parameters) {
      write_parameter(p, "localParameter", list);
    }
  }
}

}  // namespace

std::string write_sbml(const Model& model) {
  auto root = xml::XmlNode::element("sbml");
  root->set_attribute("xmlns", kSbmlNamespace);
  root->set_attribute("level", "3");
  root->set_attribute("version", "1");

  auto& model_node = root->add_element("model");
  if (!model.id.empty()) model_node.set_attribute("id", model.id);
  if (!model.name.empty()) model_node.set_attribute("name", model.name);

  if (!model.compartments.empty()) {
    auto& list = model_node.add_element("listOfCompartments");
    for (const auto& c : model.compartments) {
      auto& node = list.add_element("compartment");
      node.set_attribute("id", c.id);
      node.set_attribute("size", util::format_double(c.size));
      node.set_attribute("constant", bool_str(c.constant));
    }
  }
  if (!model.species.empty()) {
    auto& list = model_node.add_element("listOfSpecies");
    for (const auto& s : model.species) {
      auto& node = list.add_element("species");
      node.set_attribute("id", s.id);
      if (!s.name.empty()) node.set_attribute("name", s.name);
      node.set_attribute("compartment", s.compartment);
      node.set_attribute("initialAmount", util::format_double(s.initial_amount));
      node.set_attribute("boundaryCondition", bool_str(s.boundary_condition));
      node.set_attribute("constant", bool_str(s.constant));
      node.set_attribute("hasOnlySubstanceUnits",
                         bool_str(s.has_only_substance_units));
    }
  }
  if (!model.parameters.empty()) {
    auto& list = model_node.add_element("listOfParameters");
    for (const auto& p : model.parameters) write_parameter(p, "parameter", list);
  }
  if (!model.reactions.empty()) {
    auto& list = model_node.add_element("listOfReactions");
    for (const auto& r : model.reactions) write_reaction(r, list);
  }

  return xml::write_document(*root);
}

void write_sbml_file(const Model& model, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open SBML output file: " + path);
  f << write_sbml(model);
  if (!f) throw Error("failed writing SBML output file: " + path);
}

}  // namespace glva::sbml
