#include "gates/netlist_to_sbml.h"

#include "util/errors.h"
#include "util/string_util.h"

namespace glva::gates {

namespace {

/// The species id carrying a net's signal.
std::string net_species(const Netlist& netlist, const ModelOptions& options,
                        Net net) {
  if (net.kind == Net::Kind::kInput) {
    return netlist.input_names()[net.index];
  }
  if (netlist.output().kind == Net::Kind::kGate &&
      net.index == netlist.output().index) {
    return options.reporter_id;  // output gate's protein is the reporter
  }
  return netlist.gates()[net.index].repressor;
}

}  // namespace

sbml::Model netlist_to_model(const Netlist& netlist, const GateLibrary& library,
                             const ModelOptions& options) {
  netlist.check();

  sbml::Model model;
  model.id = options.model_id;
  model.name = "generated from gate netlist";
  model.add_compartment("cell", 1.0);

  // Inputs: clamped boundary species, initially absent.
  for (const auto& input : netlist.input_names()) {
    model.add_species(input, 0.0, /*boundary=*/true);
  }

  for (std::size_t g = 0; g < netlist.gate_count(); ++g) {
    const GateInstance& gate = netlist.gates()[g];
    const GateParams& params = library.gate(gate.repressor);
    const std::string protein = net_species(netlist, options, Net::gate(g));

    // Per-gate response parameters, exposed for retuning.
    const std::string p = gate.repressor;  // parameter prefix
    model.add_parameter(p + "_ymax", params.y_max);
    model.add_parameter(p + "_ymin", params.y_min);
    model.add_parameter(p + "_K", params.hill_k);
    model.add_parameter(p + "_n", params.hill_n);
    model.add_parameter(p + "_delta", params.protein_decay);

    // Summed fan-in repression: x = sum of fan-in proteins.
    std::string x;
    std::vector<sbml::ModifierReference> modifiers;
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      const std::string fanin_species =
          net_species(netlist, options, gate.fanin[i]);
      if (i != 0) x += " + ";
      x += fanin_species;
      modifiers.push_back(sbml::ModifierReference{fanin_species});
    }
    const std::string response = p + "_ymin + (" + p + "_ymax - " + p +
                                 "_ymin) * (1 - hill(" + x + ", " + p +
                                 "_K, " + p + "_n))";

    if (options.two_stage) {
      const std::string mrna = protein + "_mRNA";
      model.add_parameter(p + "_mdelta", params.mrna_decay);
      model.add_parameter(p + "_tl", params.translation);
      model.add_species(mrna, 0.0);
      model.add_species(protein, 0.0);
      // Transcription rate scaled so the protein plateau matches the
      // reduced model: tx = ymax * mdelta / tl.
      const double scale = params.mrna_decay / params.translation;
      model.add_parameter(p + "_txscale", scale);
      model.add_reaction(p + "_tx", {}, {{mrna, 1.0}},
                         p + "_txscale * (" + response + ")", modifiers);
      model.add_reaction(p + "_mdeg", {{mrna, 1.0}}, {},
                         p + "_mdelta * " + mrna);
      model.add_reaction(p + "_tlr", {}, {{protein, 1.0}},
                         p + "_tl * " + mrna,
                         {sbml::ModifierReference{mrna}});
      model.add_reaction(p + "_pdeg", {{protein, 1.0}}, {},
                         p + "_delta * " + protein);
    } else {
      model.add_species(protein, 0.0);
      model.add_reaction(p + "_prod", {}, {{protein, 1.0}}, response,
                         modifiers);
      model.add_reaction(p + "_deg", {{protein, 1.0}}, {},
                         p + "_delta * " + protein);
    }
  }

  return model;
}

}  // namespace glva::gates
