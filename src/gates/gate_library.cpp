#include "gates/gate_library.h"

#include "util/errors.h"

namespace glva::gates {

namespace {

std::vector<GateParams> standard_gates() {
  // Response spreads follow the character of Cello's UCF library: shared
  // machinery (decay, translation) but individual half-points, Hill
  // coefficients, and dynamic ranges. Plateaus sit near 55–65 molecules so
  // the paper's nominal 15-molecule threshold cleanly separates the floor
  // (~1–2 molecules) from the plateau.
  const auto gate = [](const char* name, double y_max, double y_min,
                       double hill_k, double hill_n) {
    GateParams p;
    p.name = name;
    p.y_max = y_max;
    p.y_min = y_min;
    p.hill_k = hill_k;
    p.hill_n = hill_n;
    return p;
  };
  // Half-points sit well below the 15-molecule input level (so an asserted
  // input fully represses its gate) and well above the summed leak floor of
  // two OFF fan-ins (~1.2 molecules), keeping residual-repressor leak from
  // cascading through NOR chains. Production and decay are paired so the
  // unrepressed plateau stays near 55–65 molecules while the per-level fall
  // time (~ln(plateau/K)/delta ≈ 130 time units) keeps even the deepest
  // catalog circuit's propagation delay inside the paper's 1000-time-unit
  // hold window.
  return {
      gate("AmtR", 1.20, 0.012, 4.0, 3.0),
      gate("BetI", 1.16, 0.014, 4.5, 3.4),
      gate("BM3R1", 1.24, 0.016, 5.0, 3.8),
      // HlyIIR's lower dynamic range (plateau ~42 molecules) is what makes
      // circuit 0x0B's output "not clearly distinguishable" from a
      // 40-molecule threshold in the Figure 5 experiment, while still
      // standing ~4 sigma above the nominal 15-molecule threshold.
      gate("HlyIIR", 0.88, 0.012, 3.8, 2.8),
      gate("IcaRA", 1.20, 0.016, 5.5, 3.0),
      gate("LitR", 1.14, 0.014, 4.2, 3.2),
      gate("LmrA", 1.26, 0.014, 5.2, 3.1),
      gate("PhlF", 1.30, 0.012, 4.8, 4.2),
      gate("PsrA", 1.12, 0.012, 3.6, 2.9),
      gate("QacR", 1.22, 0.016, 6.0, 3.5),
      gate("SrpR", 1.28, 0.014, 4.4, 4.0),
      gate("TarA", 1.18, 0.014, 4.6, 3.3),
  };
}

}  // namespace

GateLibrary::GateLibrary(std::vector<GateParams> gates)
    : gates_(std::move(gates)) {
  if (gates_.empty()) {
    throw InvalidArgument("GateLibrary: at least one gate is required");
  }
}

const GateLibrary& GateLibrary::standard() {
  static const GateLibrary library(standard_gates());
  return library;
}

const GateParams& GateLibrary::gate(const std::string& name) const {
  for (const auto& g : gates_) {
    if (g.name == name) return g;
  }
  throw InvalidArgument("GateLibrary: unknown gate '" + name + "'");
}

bool GateLibrary::contains(const std::string& name) const noexcept {
  for (const auto& g : gates_) {
    if (g.name == name) return true;
  }
  return false;
}

}  // namespace glva::gates
