#include "gates/netlist.h"

#include <set>

#include "util/errors.h"

namespace glva::gates {

Netlist::Netlist(std::vector<std::string> input_names)
    : input_names_(std::move(input_names)) {
  if (input_names_.empty()) {
    throw InvalidArgument("Netlist: at least one input is required");
  }
}

Net Netlist::add_not(const std::string& repressor, Net in) {
  gates_.push_back(GateInstance{repressor, {in}});
  return Net::gate(gates_.size() - 1);
}

Net Netlist::add_nor(const std::string& repressor, Net a, Net b) {
  gates_.push_back(GateInstance{repressor, {a, b}});
  return Net::gate(gates_.size() - 1);
}

void Netlist::set_output(Net net) {
  if (net.kind != Net::Kind::kGate) {
    throw InvalidArgument("Netlist: output must be a gate net");
  }
  output_ = net;
  output_set_ = true;
}

Net Netlist::output() const {
  if (!output_set_) throw InvalidArgument("Netlist: output not set");
  return output_;
}

bool Netlist::eval_net(Net net, std::size_t combination) const {
  if (net.kind == Net::Kind::kInput) {
    const std::size_t n = input_names_.size();
    return ((combination >> (n - 1 - net.index)) & 1U) != 0;
  }
  const GateInstance& g = gates_[net.index];
  // NOT/NOR: output high iff every fan-in is low.
  for (const Net& in : g.fanin) {
    if (eval_net(in, combination)) return false;
  }
  return true;
}

logic::TruthTable Netlist::ideal_truth_table() const {
  check();
  logic::TruthTable table(input_names_.size());
  for (std::size_t c = 0; c < table.row_count(); ++c) {
    table.set_output(c, eval_net(output_, c));
  }
  return table;
}

PartsSummary Netlist::parts_summary() const {
  PartsSummary parts;
  for (const auto& g : gates_) {
    parts.promoters += g.fanin.size();  // one promoter region per fan-in
    parts.rbs += 1;
    parts.cds += 1;
    parts.terminators += 1;
  }
  // Reporter transcription unit under the output gate's promoter.
  parts.promoters += 1;
  parts.rbs += 1;
  parts.cds += 1;
  parts.terminators += 1;
  return parts;
}

void Netlist::check() const {
  if (!output_set_) throw ValidationError("netlist: output is not set");
  std::set<std::string> used;
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    const GateInstance& gate = gates_[g];
    if (gate.fanin.empty() || gate.fanin.size() > 2) {
      throw ValidationError("netlist: gate " + std::to_string(g) +
                            " must have 1 or 2 fan-ins");
    }
    for (const Net& in : gate.fanin) {
      if (in.kind == Net::Kind::kInput) {
        if (in.index >= input_names_.size()) {
          throw ValidationError("netlist: gate " + std::to_string(g) +
                                " references unknown input");
        }
      } else if (in.index >= g) {
        throw ValidationError(
            "netlist: gate " + std::to_string(g) +
            " references a later gate (combinational cycle)");
      }
    }
    if (!used.insert(gate.repressor).second) {
      throw ValidationError("netlist: repressor '" + gate.repressor +
                            "' is used by more than one gate");
    }
  }
  if (output_.index >= gates_.size()) {
    throw ValidationError("netlist: output references an unknown gate");
  }
}

}  // namespace glva::gates
