#pragma once

#include <string>
#include <vector>

/// The genetic gate library: Cello-style repressor gates [Nielsen et al.,
/// Science 2016]. Each gate is a promoter repressed by its input
/// protein(s); its response is a declining Hill function
///
///   rate(x) = y_min + (y_max - y_min) · K^n / (K^n + x^n),
///
/// where x is the summed input-repressor amount (Cello sums input promoter
/// activities), K the repression half-point, and n the cooperativity. A
/// NOT gate has one input; a NOR gate feeds the sum of two inputs through
/// the same response.
namespace glva::gates {

/// Kinetic/response parameters of one library gate.
struct GateParams {
  std::string name;          ///< repressor name, e.g. "PhlF"
  double y_max = 1.2;        ///< max production rate (molecules / time unit)
  double y_min = 0.012;      ///< leaky production rate (molecules / time unit)
  double hill_k = 4.5;       ///< repression half-point (molecules)
  double hill_n = 3.0;       ///< Hill coefficient
  double protein_decay = 0.02;  ///< first-order decay (1 / time unit)
  // Two-stage (transcription + translation) expansion parameters.
  double mrna_decay = 0.1;      ///< mRNA first-order decay (1 / time unit)
  double translation = 0.5;     ///< proteins per mRNA per time unit

  /// Steady-state output plateau when unrepressed: y_max / protein_decay.
  [[nodiscard]] double plateau() const noexcept { return y_max / protein_decay; }
  /// Steady-state leak floor when fully repressed.
  [[nodiscard]] double floor() const noexcept { return y_min / protein_decay; }
};

/// A named collection of characterized gates, mirroring Cello's UCF gate
/// library. Distinct circuits draw different repressors so cascaded gates
/// never share a repressor (Cello's same-repressor constraint).
class GateLibrary {
public:
  /// The built-in library: twelve repressors with a realistic spread of
  /// response parameters (half-points 6..12 molecules, Hill 1.8..4.0).
  static const GateLibrary& standard();

  /// Construct from explicit parameter sets.
  explicit GateLibrary(std::vector<GateParams> gates);

  /// Look up by repressor name; throws glva::InvalidArgument when unknown.
  [[nodiscard]] const GateParams& gate(const std::string& name) const;

  [[nodiscard]] const std::vector<GateParams>& gates() const noexcept {
    return gates_;
  }
  [[nodiscard]] bool contains(const std::string& name) const noexcept;

private:
  std::vector<GateParams> gates_;
};

}  // namespace glva::gates
