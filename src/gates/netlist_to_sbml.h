#pragma once

#include <string>

#include "gates/gate_library.h"
#include "gates/netlist.h"
#include "sbml/model.h"

namespace glva::gates {

/// Behavioural-model generation options.
struct ModelOptions {
  /// Model id (SBML SId); also used in reaction id prefixes.
  std::string model_id = "circuit";
  /// Reporter species id for the circuit output (the paper's GFP).
  std::string reporter_id = "GFP";
  /// When true, expand each gate into transcription + translation
  /// (promoter → mRNA → protein) instead of the reduced one-step model.
  /// Doubles the species count and adds realistic expression delay.
  bool two_stage = false;
};

/// Compile a gate netlist into a behavioural SBML model — GLVA's
/// substitute for the SBOL→SBML conversion step the paper performs with
/// the Roehner et al. converter [14].
///
/// Mapping: every input becomes a boundary-condition species (clamped by
/// the virtual lab); every gate becomes a production reaction with a
/// declining Hill kinetic law over the *sum* of its fan-in proteins, plus
/// a first-order decay reaction. The output gate's protein is the
/// reporter (`reporter_id`). Gate response parameters are emitted as
/// global SBML parameters named `<Repressor>_{ymax,ymin,K,n,delta}` so a
/// downstream user can retune a circuit without regenerating it.
///
/// Throws glva::ValidationError for malformed netlists and
/// glva::InvalidArgument for repressors missing from `library`.
[[nodiscard]] sbml::Model netlist_to_model(const Netlist& netlist,
                                           const GateLibrary& library,
                                           const ModelOptions& options = {});

}  // namespace glva::gates
