#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "logic/truth_table.h"

/// Gate-level circuit netlists: the structural form in which Cello emits
/// circuits (as SBOL) before behavioural conversion. GLVA's netlist plays
/// the SBOL role — a parts-level description that the model generator
/// turns into behavioural SBML (substituting for the Roehner et al.
/// SBOL→SBML converter the paper uses).
namespace glva::gates {

/// A signal source inside a netlist: either a primary input or the output
/// protein of another gate.
struct Net {
  enum class Kind { kInput, kGate };
  Kind kind = Kind::kInput;
  std::size_t index = 0;  ///< input index or gate index

  static Net input(std::size_t i) { return {Kind::kInput, i}; }
  static Net gate(std::size_t g) { return {Kind::kGate, g}; }
  [[nodiscard]] bool operator==(const Net&) const = default;
};

/// One gate instance: a library repressor wired to 1 (NOT) or 2 (NOR)
/// fan-ins.
struct GateInstance {
  std::string repressor;   ///< name in the GateLibrary
  std::vector<Net> fanin;  ///< 1 or 2 sources
};

/// Structural genetic parts of the compiled circuit, for the paper's
/// "3-26 genetic components" bookkeeping.
struct PartsSummary {
  std::size_t promoters = 0;
  std::size_t rbs = 0;
  std::size_t cds = 0;
  std::size_t terminators = 0;
  [[nodiscard]] std::size_t total() const noexcept {
    return promoters + rbs + cds + terminators;
  }
};

/// A combinational genetic circuit over NOT/NOR gates with one reporter
/// output.
class Netlist {
public:
  /// `input_names[0]` is the MSB of input-combination labels.
  explicit Netlist(std::vector<std::string> input_names);

  /// Append a NOT gate; returns its net.
  Net add_not(const std::string& repressor, Net in);
  /// Append a NOR gate; returns its net.
  Net add_nor(const std::string& repressor, Net a, Net b);

  /// Designate the net whose promoter drives the reporter (GFP). Must be a
  /// gate net; call after wiring.
  void set_output(Net net);

  [[nodiscard]] const std::vector<std::string>& input_names() const noexcept {
    return input_names_;
  }
  [[nodiscard]] const std::vector<GateInstance>& gates() const noexcept {
    return gates_;
  }
  [[nodiscard]] Net output() const;
  [[nodiscard]] std::size_t input_count() const noexcept {
    return input_names_.size();
  }
  [[nodiscard]] std::size_t gate_count() const noexcept { return gates_.size(); }

  /// The ideal Boolean function of the netlist (NOT/NOR semantics),
  /// evaluated exhaustively. This is the *expected* logic the paper's
  /// algorithm verifies extracted logic against.
  [[nodiscard]] logic::TruthTable ideal_truth_table() const;

  /// Structural parts of the compiled circuit: per gate one promoter
  /// region per fan-in, one RBS, one CDS, one terminator; plus the
  /// reporter's RBS/CDS/terminator driven by the output gate's promoter.
  [[nodiscard]] PartsSummary parts_summary() const;

  /// Topological sanity: every fan-in references an existing net, no
  /// combinational cycles (gates only reference earlier gates), every gate
  /// has 1..2 fan-ins, the output is set, and no repressor is used twice
  /// (Cello's same-repressor constraint). Throws glva::ValidationError
  /// otherwise.
  void check() const;

private:
  /// Evaluate one gate's ideal output under `combination`.
  [[nodiscard]] bool eval_net(Net net, std::size_t combination) const;

  std::vector<std::string> input_names_;
  std::vector<GateInstance> gates_;
  Net output_{};
  bool output_set_ = false;
};

}  // namespace glva::gates
