#pragma once

#include <map>
#include <string>
#include <vector>

/// A tiny declarative command-line parser for the example and bench
/// binaries (`--flag`, `--key value`, `--key=value`).
namespace glva::util {

class CliParser {
public:
  /// Declare an option with a default value and help text. Options are
  /// stringly-typed; use the typed getters after parse().
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Declare a boolean flag (present → true).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Throws glva::InvalidArgument on unknown options or a
  /// missing value. Returns false if `--help` was requested (help text is
  /// available via help()).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Positional (non-option) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Formatted help text listing all declared options.
  [[nodiscard]] std::string help(const std::string& program) const;

private:
  struct Option {
    std::string value;
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace glva::util
