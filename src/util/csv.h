#pragma once

#include <ostream>
#include <string>
#include <vector>

/// Minimal RFC-4180-style CSV writing/reading used by the bench harness to
/// dump figure data for external plotting.
namespace glva::util {

/// Incrementally builds a CSV document. Fields containing separators,
/// quotes, or newlines are quoted and escaped.
class CsvWriter {
public:
  explicit CsvWriter(char separator = ',') : separator_(separator) {}

  /// Append one row; each element becomes one field.
  void add_row(const std::vector<std::string>& fields);

  /// Convenience: append a row of already-formatted values.
  template <typename... Ts>
  void row(const Ts&... fields) {
    add_row(std::vector<std::string>{to_field(fields)...});
  }

  /// The document built so far.
  [[nodiscard]] const std::string& str() const noexcept { return out_; }

  /// Write the document to `path`; throws glva::Error on I/O failure.
  void save(const std::string& path) const;

private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(double v);
  static std::string to_field(int v) { return std::to_string(v); }
  static std::string to_field(long v) { return std::to_string(v); }
  static std::string to_field(long long v) { return std::to_string(v); }
  static std::string to_field(unsigned v) { return std::to_string(v); }
  static std::string to_field(unsigned long v) { return std::to_string(v); }
  static std::string to_field(unsigned long long v) { return std::to_string(v); }

  [[nodiscard]] std::string escape(const std::string& field) const;

  char separator_;
  std::string out_;
};

/// Parse a CSV document into rows of fields (quoted fields unescaped).
/// Throws glva::ParseError on unterminated quotes.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    const std::string& text, char separator = ',');

}  // namespace glva::util
