#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// Small string helpers shared across modules. All functions are pure and
/// allocate only when the result requires it.
namespace glva::util {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split `s` on every occurrence of `sep`. Adjacent separators produce empty
/// fields; an empty input yields a single empty field.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Split on runs of ASCII whitespace, discarding empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Join `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lower-casing (locale independent).
[[nodiscard]] std::string to_lower(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Replace every occurrence of `from` (must be non-empty) with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

/// Parse a double; returns nullopt on any trailing garbage or empty input.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;

/// Parse a non-negative integer; returns nullopt on overflow or garbage.
[[nodiscard]] std::optional<long long> parse_int(std::string_view s) noexcept;

/// Render `value` with `digits` significant digits, trimming trailing zeros
/// ("1.25", "3", "0.004").  Used by report and SBML writers so output is
/// stable across platforms.
[[nodiscard]] std::string format_double(double value, int digits = 12);

/// True iff `name` is a valid SBML SId: [A-Za-z_][A-Za-z0-9_]*.
[[nodiscard]] bool is_valid_sid(std::string_view name) noexcept;

}  // namespace glva::util
