#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>
#include <string>

namespace glva::util {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn ";
    case LogLevel::kInfo:
      return "info ";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?????";
}

std::atomic<int>& level_store() {
  // Seeded from GLVA_LOG once; --log-level overwrites later. Stored as
  // int so the hot filter check is a single relaxed load.
  static std::atomic<int>* level = [] {
    auto* l = new std::atomic<int>(static_cast<int>(LogLevel::kInfo));
    if (const char* env = std::getenv("GLVA_LOG")) {
      const std::string_view name(env);
      if (name == "error") l->store(static_cast<int>(LogLevel::kError));
      if (name == "warn") l->store(static_cast<int>(LogLevel::kWarn));
      if (name == "info") l->store(static_cast<int>(LogLevel::kInfo));
      if (name == "debug") l->store(static_cast<int>(LogLevel::kDebug));
    }
    return l;
  }();
  return *level;
}

std::mutex g_sink_mutex;
std::ostream* g_sink = nullptr;  // nullptr -> std::cerr

}  // namespace

bool set_log_level(std::string_view name) {
  if (name == "error") {
    set_log_level(LogLevel::kError);
  } else if (name == "warn") {
    set_log_level(LogLevel::kWarn);
  } else if (name == "info") {
    set_log_level(LogLevel::kInfo);
  } else if (name == "debug") {
    set_log_level(LogLevel::kDebug);
  } else {
    return false;
  }
  return true;
}

void set_log_level(LogLevel level) {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(
      level_store().load(std::memory_order_relaxed));
}

void set_log_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = sink;
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) >
      level_store().load(std::memory_order_relaxed)) {
    return;
  }
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &secs);
#else
  localtime_r(&secs, &tm_buf);
#endif
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "[%02d:%02d:%02d.%03d] ", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(ms));

  std::string line;
  line.reserve(message.size() + 32);
  line += stamp;
  line += level_name(level);
  line += " ";
  line.append(message.data(), message.size());
  line += "\n";

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::ostream& out = g_sink ? *g_sink : std::cerr;
  out << line << std::flush;
}

}  // namespace glva::util
