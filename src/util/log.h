#ifndef GLVA_UTIL_LOG_H
#define GLVA_UTIL_LOG_H

// Tiny leveled logger for diagnostics that must never pollute stdout
// (golden-pinned command output): timestamped lines on stderr, filtered
// by a process-wide level. The default level is info; override with the
// global --log-level CLI flag or the GLVA_LOG environment variable
// (error|warn|info|debug). Tests can redirect the sink.

#include <ostream>
#include <string_view>

namespace glva::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// Returns the level for a name (error|warn|info|debug), or false on an
// unknown name without changing the level.
bool set_log_level(std::string_view name);
void set_log_level(LogLevel level);
LogLevel log_level();

// Redirects log output (default: std::cerr). Pass nullptr to restore the
// default. Not owned.
void set_log_sink(std::ostream* sink);

// Writes "[HH:MM:SS.mmm] level message\n" to the sink when level passes
// the filter. Thread-safe; one line per call.
void log(LogLevel level, std::string_view message);

inline void log_error(std::string_view m) { log(LogLevel::kError, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }

}  // namespace glva::util

#endif  // GLVA_UTIL_LOG_H
