#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/string_util.h"

namespace glva::util {

std::string render_time_series(const std::string& title,
                               const std::vector<double>& times,
                               const std::vector<double>& values,
                               const ChartOptions& options) {
  std::string out = title + "\n";
  const std::size_t n = std::min(times.size(), values.size());
  if (n == 0 || options.width == 0 || options.height == 0) {
    out += "  (no data)\n";
    return out;
  }

  double y_max = options.y_max;
  if (y_max <= options.y_min) {
    y_max = options.y_min;
    for (std::size_t i = 0; i < n; ++i) y_max = std::max(y_max, values[i]);
    y_max = std::max(y_max, options.threshold);
    if (y_max <= options.y_min) y_max = options.y_min + 1.0;
    y_max *= 1.05;
  }
  const double y_min = options.y_min;
  const double t0 = times.front();
  const double t1 = std::max(times[n - 1], t0 + 1e-12);

  // Max-pool samples into columns so single-sample spikes stay visible.
  std::vector<double> column_max(options.width,
                                 -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    auto col = static_cast<std::size_t>((times[i] - t0) / (t1 - t0) *
                                        static_cast<double>(options.width - 1));
    col = std::min(col, options.width - 1);
    column_max[col] = std::max(column_max[col], values[i]);
  }
  // Fill gaps (columns with no sample) with the previous column's value.
  double last = 0.0;
  for (double& v : column_max) {
    if (std::isinf(v)) {
      v = last;
    } else {
      last = v;
    }
  }

  const auto row_of = [&](double v) -> std::ptrdiff_t {
    const double frac = (v - y_min) / (y_max - y_min);
    return static_cast<std::ptrdiff_t>(
        std::floor(frac * static_cast<double>(options.height)));
  };

  const std::ptrdiff_t threshold_row =
      options.threshold >= 0 ? row_of(options.threshold) : -1;

  for (std::ptrdiff_t r = static_cast<std::ptrdiff_t>(options.height) - 1; r >= 0;
       --r) {
    // y-axis label: value at the top of this row band.
    const double band_top = y_min + (y_max - y_min) *
                                        (static_cast<double>(r) + 1.0) /
                                        static_cast<double>(options.height);
    char label[16];
    std::snprintf(label, sizeof label, "%7.1f", band_top);
    out += label;
    out += " |";
    for (std::size_t c = 0; c < options.width; ++c) {
      const std::ptrdiff_t vr = row_of(column_max[c]);
      char ch = ' ';
      if (vr >= r) {
        ch = (vr == r) ? '*' : '.';
      }
      if (r == threshold_row && ch == ' ') ch = '-';
      out += ch;
    }
    out += '\n';
  }
  out += "        +";
  out.append(options.width, '-');
  out += "\n         ";
  char left[32], right[32];
  std::snprintf(left, sizeof left, "%-10.0f", t0);
  std::snprintf(right, sizeof right, "%10.0f", t1);
  out += left;
  if (options.width > 20) out.append(options.width - 20, ' ');
  out += right;
  out += " (time)\n";
  return out;
}

std::string render_bar_chart(const std::string& title,
                             const std::vector<std::string>& labels,
                             const std::vector<double>& values,
                             std::size_t max_bar_width) {
  std::string out = title + "\n";
  const std::size_t n = std::min(labels.size(), values.size());
  double v_max = 0.0;
  std::size_t label_width = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v_max = std::max(v_max, values[i]);
    label_width = std::max(label_width, labels[i].size());
  }
  if (v_max <= 0.0) v_max = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    out += "  ";
    out += labels[i];
    out.append(label_width - labels[i].size(), ' ');
    out += " |";
    const auto bar = static_cast<std::size_t>(
        std::lround(values[i] / v_max * static_cast<double>(max_bar_width)));
    out.append(bar, '#');
    out += ' ';
    out += format_double(values[i], 6);
    out += '\n';
  }
  return out;
}

std::string render_run_length(const std::vector<bool>& bits) {
  if (bits.empty()) return "(empty)";
  std::string out;
  std::size_t i = 0;
  while (i < bits.size()) {
    const bool bit = bits[i];
    std::size_t run = 0;
    while (i < bits.size() && bits[i] == bit) {
      ++run;
      ++i;
    }
    if (!out.empty()) out += ' ';
    out += bit ? '1' : '0';
    out += 'x';
    out += std::to_string(run);
  }
  return out;
}

}  // namespace glva::util
