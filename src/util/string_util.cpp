#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace glva::util {

namespace {

[[nodiscard]] bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}

}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<long long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string format_double(double value, int digits) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Integral values small enough to render exactly are printed without a
  // fractional part so SBML round-trips stay tidy ("15" not "15.0000").
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

bool is_valid_sid(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto is_alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  const auto is_alnum = [&](char c) { return is_alpha(c) || (c >= '0' && c <= '9'); };
  if (!is_alpha(name.front())) return false;
  for (char c : name.substr(1)) {
    if (!is_alnum(c)) return false;
  }
  return true;
}

}  // namespace glva::util
