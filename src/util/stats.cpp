#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/errors.h"

namespace glva::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double variance(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.variance();
}

double normal_ci95_half_width(double stddev, std::size_t n) noexcept {
  // z such that Φ(z) = 0.975 — the standard two-sided 95% quantile.
  constexpr double kZ975 = 1.959963984540054;
  if (n < 2) return 0.0;
  return kZ975 * stddev / std::sqrt(static_cast<double>(n));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw InvalidArgument("percentile of empty sample");
  p = std::clamp(p, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  if (bins == 0) throw InvalidArgument("histogram needs at least one bin");
  if (hi <= lo) throw InvalidArgument("histogram range must be non-empty");
  std::vector<std::size_t> counts(bins, 0);
  for (double x : xs) {
    auto b = static_cast<std::ptrdiff_t>((x - lo) / (hi - lo) *
                                         static_cast<double>(bins));
    b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(b)];
  }
  return counts;
}

double otsu_threshold(std::span<const double> xs, std::size_t bins) {
  if (xs.empty()) throw InvalidArgument("otsu_threshold of empty sample");
  double lo = xs[0];
  double hi = xs[0];
  for (double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (hi <= lo) return lo;  // constant signal: any threshold works
  const auto counts = histogram(xs, lo, hi, bins);
  const double total = static_cast<double>(xs.size());

  // Otsu: maximize between-class variance over candidate split bins.
  double sum_all = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    sum_all += static_cast<double>(b) * static_cast<double>(counts[b]);
  }
  double w0 = 0.0;
  double sum0 = 0.0;
  double best_sigma = -1.0;
  double best_bin_sum = 0.0;
  double best_bin_count = 0.0;
  for (std::size_t b = 0; b + 1 < bins; ++b) {
    w0 += static_cast<double>(counts[b]);
    if (w0 == 0.0) continue;
    const double w1 = total - w0;
    if (w1 == 0.0) break;
    sum0 += static_cast<double>(b) * static_cast<double>(counts[b]);
    const double mu0 = sum0 / w0;
    const double mu1 = (sum_all - sum0) / w1;
    const double sigma = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    // Well-separated modes make a plateau of equally good splits; average
    // all argmax bins so the threshold lands mid-gap, not at a mode's edge.
    if (sigma > best_sigma * (1.0 + 1e-12)) {
      best_sigma = sigma;
      best_bin_sum = static_cast<double>(b);
      best_bin_count = 1.0;
    } else if (sigma >= best_sigma * (1.0 - 1e-12)) {
      best_bin_sum += static_cast<double>(b);
      best_bin_count += 1.0;
    }
  }
  const double best_bin =
      best_bin_count > 0.0 ? best_bin_sum / best_bin_count
                           : static_cast<double>(bins) / 2.0;
  // Threshold at the upper edge of the (averaged) best split bin.
  return lo + (hi - lo) * (best_bin + 1.0) / static_cast<double>(bins);
}

}  // namespace glva::util
