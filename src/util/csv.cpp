#include "util/csv.h"

#include <fstream>

#include "util/errors.h"
#include "util/string_util.h"

namespace glva::util {

void CsvWriter::add_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ += separator_;
    out_ += escape(fields[i]);
  }
  out_ += '\n';
}

std::string CsvWriter::to_field(double v) { return format_double(v); }

std::string CsvWriter::escape(const std::string& field) const {
  const bool needs_quotes =
      field.find(separator_) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open CSV output file: " + path);
  f << out_;
  if (!f) throw Error("failed writing CSV output file: " + path);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text,
                                                char separator) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&] {
    row.push_back(field);
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(row);
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
    } else if (c == separator) {
      end_field();
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field");
  if (field_started || !row.empty()) end_row();
  return rows;
}

}  // namespace glva::util
