#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// Descriptive statistics used by the timing estimators and by the SSA
/// statistical tests.
namespace glva::util {

/// Streaming mean/variance accumulator (Welford's algorithm), numerically
/// stable for long traces.
class RunningStats {
public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Half-width of the normal-approximation 95% confidence interval on a
/// sample mean: z₀.₉₇₅ · stddev / √n. Returns 0 for n < 2 (no spread
/// information) — used by the ensemble runner for PFoBE and wrong-state
/// intervals across replicates.
[[nodiscard]] double normal_ci95_half_width(double stddev,
                                            std::size_t n) noexcept;

/// p in [0,1]; linear interpolation between order statistics. Throws
/// glva::InvalidArgument on an empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Histogram with `bins` equal-width bins over [lo, hi]; out-of-range
/// samples clamp to the boundary bins.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs,
                                                 double lo, double hi,
                                                 std::size_t bins);

/// The valley threshold between the two modes of a bimodal histogram
/// (Otsu's method on a 1-D sample). Used by ThresholdEstimator to separate
/// the OFF and ON expression plateaus. Throws on an empty input.
[[nodiscard]] double otsu_threshold(std::span<const double> xs,
                                    std::size_t bins = 64);

}  // namespace glva::util
