#include "util/text_table.h"

#include <algorithm>

namespace glva::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), aligns_(header_.size(), Align::kLeft) {}

void TextTable::set_align(std::size_t col, Align align) {
  if (col < aligns_.size()) aligns_[col] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      const std::size_t pad = widths[c] - cell.size();
      if (aligns_[c] == Align::kRight) out.append(pad, ' ');
      out += cell;
      if (c + 1 == header_.size()) break;
      if (aligns_[c] == Align::kLeft) out.append(pad, ' ');
      out += "  ";
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace glva::util
