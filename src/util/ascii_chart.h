#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// Terminal rendering of the paper's figure content: time-series strip
/// charts (Figure 2a / Figure 5 simulation plots) and labelled bar charts
/// (Figure 4 Case_I / High_O / Var_O analytics).
namespace glva::util {

/// Options for time-series rendering.
struct ChartOptions {
  std::size_t width = 100;   ///< characters across the plot area
  std::size_t height = 12;   ///< character rows of the plot area
  double y_min = 0.0;        ///< lower bound of the y axis
  double y_max = -1.0;       ///< upper bound; <= y_min means auto-scale
  double threshold = -1.0;   ///< draw a horizontal marker line; < 0 disables
};

/// Render one series (`values[k]` sampled at `times[k]`) as an ASCII strip
/// chart titled `title`. Values are max-pooled into columns so short spikes
/// remain visible. The optional threshold renders as a row of '-' markers.
[[nodiscard]] std::string render_time_series(const std::string& title,
                                             const std::vector<double>& times,
                                             const std::vector<double>& values,
                                             const ChartOptions& options = {});

/// Render a horizontal bar chart: one row per label, bar length proportional
/// to value, annotated with the numeric value.
[[nodiscard]] std::string render_bar_chart(const std::string& title,
                                           const std::vector<std::string>& labels,
                                           const std::vector<double>& values,
                                           std::size_t max_bar_width = 60);

/// Render a binary stream compactly ("0x1850 1x3 0x212 ..."): run-length
/// encoding used when printing per-combination output data streams.
[[nodiscard]] std::string render_run_length(const std::vector<bool>& bits);

}  // namespace glva::util
