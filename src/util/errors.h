#pragma once

#include <stdexcept>
#include <string>

namespace glva {

/// Root of the GLVA exception hierarchy. All errors thrown by the library
/// derive from this type so callers can catch library failures uniformly.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A malformed input document (XML syntax, SBML structure, MathML, ...).
class ParseError : public Error {
public:
  ParseError(const std::string& what_arg, std::size_t line, std::size_t column)
      : Error(what_arg + " (line " + std::to_string(line) + ", column " +
              std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  explicit ParseError(const std::string& what_arg)
      : Error(what_arg), line_(0), column_(0) {}

  /// 1-based line of the offending input, or 0 when unknown.
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  /// 1-based column of the offending input, or 0 when unknown.
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

private:
  std::size_t line_;
  std::size_t column_;
};

/// A structurally valid document that violates a semantic rule
/// (e.g. a reaction referencing an undeclared species).
class ValidationError : public Error {
public:
  using Error::Error;
};

/// An operation invoked with arguments outside its domain
/// (e.g. a negative threshold, an empty trace).
class InvalidArgument : public Error {
public:
  using Error::Error;
};

/// A simulation that cannot proceed (e.g. a kinetic law evaluating to a
/// negative propensity).
class SimulationError : public Error {
public:
  using Error::Error;
};

/// A trace store that cannot be written or read back (unopenable spill
/// file, bad `.glvt` magic, truncated chunk, corrupt section payload).
class StorageError : public Error {
public:
  using Error::Error;
};

}  // namespace glva
