#pragma once

#include <chrono>

/// Wall-clock helpers for the experiment runners and bench harnesses.
namespace glva::util {

/// Seconds elapsed since `start` on the steady clock.
[[nodiscard]] inline double seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace glva::util
