#pragma once

#include <string>
#include <vector>

/// Aligned plain-text tables, used by the bench binaries to print the
/// Figure-4-style analytics tables (Case_I / High_O / Var_O per input
/// combination) the paper reports.
namespace glva::util {

class TextTable {
public:
  /// Per-column alignment.
  enum class Align { kLeft, kRight };

  /// Create a table with the given header row. Column count is fixed by the
  /// header; shorter data rows are padded with empty cells.
  explicit TextTable(std::vector<std::string> header);

  /// Set the alignment of column `col` (default: left).
  void set_align(std::size_t col, Align align);

  /// Append a data row (extra cells beyond the header width are dropped).
  void add_row(std::vector<std::string> cells);

  /// Render with a header underline and two-space column gaps.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept { return header_.size(); }

private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace glva::util
