#include "util/cli.h"

#include "util/errors.h"
#include "util/string_util.h"

namespace glva::util {

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{default_value, default_value, help, false};
  order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{"false", "false", help, true};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      throw InvalidArgument("unknown option: --" + name);
    }
    if (it->second.is_flag) {
      it->second.value = has_value ? value : "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          throw InvalidArgument("missing value for option: --" + name);
        }
        value = argv[++i];
      }
      it->second.value = value;
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) throw InvalidArgument("undeclared option: " + name);
  return it->second.value;
}

double CliParser::get_double(const std::string& name) const {
  const auto v = parse_double(get(name));
  if (!v) throw InvalidArgument("option --" + name + " expects a number");
  return *v;
}

long long CliParser::get_int(const std::string& name) const {
  const auto v = parse_int(get(name));
  if (!v) throw InvalidArgument("option --" + name + " expects an integer");
  return *v;
}

bool CliParser::get_flag(const std::string& name) const {
  return get(name) == "true";
}

std::string CliParser::help(const std::string& program) const {
  std::string out = "usage: " + program + " [options]\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    out += "  --" + name;
    if (!opt.is_flag) out += " <value>";
    out += "\n      " + opt.help;
    if (!opt.is_flag && !opt.default_value.empty()) {
      out += " (default: " + opt.default_value + ")";
    }
    out += '\n';
  }
  return out;
}

}  // namespace glva::util
