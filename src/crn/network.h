#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "math/expr.h"
#include "sbml/model.h"

/// The compiled chemical-reaction-network runtime. An SBML model is
/// compiled once into index-based form (species indices, stoichiometry
/// deltas, stack-machine propensity programs, and a reaction dependency
/// graph); the stochastic simulators then run entirely on indices.
namespace glva::crn {

/// One stoichiometry change applied when a reaction fires.
struct StateChange {
  std::size_t species;  ///< species index
  double delta;         ///< signed molecule-count change
};

/// A compiled reaction.
struct CompiledReaction {
  std::string id;
  math::CompiledExpr propensity;
  /// Net state changes on firing. Boundary-condition species are excluded
  /// at compile time per SBML semantics (they are externally clamped).
  std::vector<StateChange> changes;
  /// (species index, required count) pairs derived from reactant
  /// stoichiometry — a reaction is only applicable when every requirement
  /// holds, which keeps counts non-negative even for laws that do not
  /// vanish at zero.
  std::vector<StateChange> requirements;
  /// Species indices the propensity reads (ascending).
  std::vector<std::size_t> depends_on;
};

/// A compiled reaction network plus its initial state layout.
///
/// Value-vector layout: slots [0, species_count) hold species amounts;
/// slots beyond hold constants (global parameters, compartment sizes, and
/// mangled reaction-local parameters). Simulators mutate only the species
/// slots.
class ReactionNetwork {
public:
  /// Compile `model` (validated with sbml::validate_or_throw first).
  /// Throws glva::ValidationError on semantic problems.
  static ReactionNetwork compile(const sbml::Model& model);

  // -- species -------------------------------------------------------------

  [[nodiscard]] std::size_t species_count() const noexcept {
    return species_names_.size();
  }
  [[nodiscard]] const std::vector<std::string>& species_names() const noexcept {
    return species_names_;
  }
  /// Index of a species by id; throws glva::InvalidArgument when unknown.
  [[nodiscard]] std::size_t species_index(const std::string& id) const;
  [[nodiscard]] bool is_boundary(std::size_t species) const {
    return boundary_[species];
  }

  // -- reactions -----------------------------------------------------------

  [[nodiscard]] std::size_t reaction_count() const noexcept {
    return reactions_.size();
  }
  [[nodiscard]] const CompiledReaction& reaction(std::size_t r) const {
    return reactions_[r];
  }

  /// Reactions whose propensity may change when reaction `r` fires
  /// (including `r` itself when self-affecting). Drives both the direct
  /// method's selective update and the next-reaction method.
  [[nodiscard]] const std::vector<std::size_t>& affected_reactions(
      std::size_t r) const {
    return affects_[r];
  }

  /// Reactions whose propensity depends on `species` — used when the
  /// virtual lab clamps an input to a new level mid-run.
  [[nodiscard]] std::vector<std::size_t> reactions_reading(
      std::size_t species) const;

  // -- state ---------------------------------------------------------------

  /// A fresh value vector: initial species amounts (rounded to whole
  /// molecules) followed by the constant slots.
  [[nodiscard]] std::vector<double> initial_values() const;

  /// Evaluate the propensity of reaction `r` against `values`, returning 0
  /// when the reactant requirements are unmet. Throws glva::SimulationError
  /// on negative or non-finite results.
  [[nodiscard]] double propensity(std::size_t r,
                                  const std::vector<double>& values) const;

  /// Apply reaction `r`'s stoichiometry to `values`.
  void fire(std::size_t r, std::vector<double>& values) const noexcept;

private:
  std::vector<std::string> species_names_;
  std::vector<double> initial_amounts_;
  std::vector<bool> boundary_;
  std::vector<double> constants_;  // values for slots >= species_count()
  std::vector<CompiledReaction> reactions_;
  std::vector<std::vector<std::size_t>> affects_;
};

}  // namespace glva::crn
