#include "crn/network.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "sbml/validate.h"
#include "util/errors.h"

namespace glva::crn {

ReactionNetwork ReactionNetwork::compile(const sbml::Model& model) {
  sbml::validate_or_throw(model);

  ReactionNetwork net;

  // Species occupy the leading value slots.
  std::map<std::string, std::size_t> slot_of;
  for (const auto& s : model.species) {
    slot_of[s.id] = net.species_names_.size();
    net.species_names_.push_back(s.id);
    net.initial_amounts_.push_back(std::round(s.initial_amount));
    net.boundary_.push_back(s.boundary_condition || s.constant);
  }

  // Globals (parameters and compartment sizes) follow as constant slots.
  const auto add_constant = [&](const std::string& id, double value) {
    slot_of[id] = net.species_names_.size() + net.constants_.size();
    net.constants_.push_back(value);
  };
  for (const auto& p : model.parameters) add_constant(p.id, p.value);
  for (const auto& c : model.compartments) add_constant(c.id, c.size);

  // Reactions: local parameters get mangled constant slots visible only to
  // their own kinetic law via a per-reaction symbol table.
  for (const auto& r : model.reactions) {
    std::map<std::string, std::size_t> local_slots;
    for (const auto& lp : r.kinetic_law.local_parameters) {
      const std::string mangled = r.id + "::" + lp.id;
      add_constant(mangled, lp.value);
      local_slots[lp.id] = slot_of.at(mangled);
    }

    const auto symbol_index = [&](const std::string& name) -> std::size_t {
      if (const auto it = local_slots.find(name); it != local_slots.end()) {
        return it->second;
      }
      if (const auto it = slot_of.find(name); it != slot_of.end()) {
        return it->second;
      }
      throw ValidationError("reaction '" + r.id +
                            "': kinetic law symbol '" + name +
                            "' does not resolve");
    };

    CompiledReaction cr;
    cr.id = r.id;
    cr.propensity = math::CompiledExpr(*r.kinetic_law.math, symbol_index);

    // Net stoichiometry (reactants negative, products positive), folding
    // duplicate references and dropping boundary species.
    std::map<std::size_t, double> delta;
    for (const auto& ref : r.reactants) {
      delta[slot_of.at(ref.species)] -= ref.stoichiometry;
    }
    for (const auto& ref : r.products) {
      delta[slot_of.at(ref.species)] += ref.stoichiometry;
    }
    for (const auto& [species, d] : delta) {
      if (d == 0.0) continue;
      if (net.boundary_[species]) continue;  // clamped externally
      cr.changes.push_back(StateChange{species, d});
    }
    // Requirements: gross reactant stoichiometry (before product folding),
    // so A + B -> A + C still requires one A.
    std::map<std::size_t, double> required;
    for (const auto& ref : r.reactants) {
      required[slot_of.at(ref.species)] += ref.stoichiometry;
    }
    for (const auto& [species, count] : required) {
      cr.requirements.push_back(StateChange{species, count});
    }

    // Propensity dependencies restricted to mutable (species) slots.
    for (std::size_t dep : cr.propensity.dependencies()) {
      if (dep < net.species_names_.size()) cr.depends_on.push_back(dep);
    }
    // Requirements also gate applicability, so reactant counts matter even
    // when the law does not read them.
    for (const auto& req : cr.requirements) {
      cr.depends_on.push_back(req.species);
    }
    std::sort(cr.depends_on.begin(), cr.depends_on.end());
    cr.depends_on.erase(std::unique(cr.depends_on.begin(), cr.depends_on.end()),
                        cr.depends_on.end());

    net.reactions_.push_back(std::move(cr));
  }

  // Dependency graph: reaction r affects reaction s iff r changes a species
  // s's propensity (or applicability) depends on.
  std::vector<std::vector<std::size_t>> readers(net.species_count());
  for (std::size_t s = 0; s < net.reactions_.size(); ++s) {
    for (std::size_t dep : net.reactions_[s].depends_on) {
      readers[dep].push_back(s);
    }
  }
  net.affects_.resize(net.reactions_.size());
  for (std::size_t r = 0; r < net.reactions_.size(); ++r) {
    std::set<std::size_t> affected;
    for (const auto& change : net.reactions_[r].changes) {
      for (std::size_t s : readers[change.species]) affected.insert(s);
    }
    net.affects_[r].assign(affected.begin(), affected.end());
  }

  return net;
}

std::size_t ReactionNetwork::species_index(const std::string& id) const {
  for (std::size_t i = 0; i < species_names_.size(); ++i) {
    if (species_names_[i] == id) return i;
  }
  throw InvalidArgument("unknown species: " + id);
}

std::vector<std::size_t> ReactionNetwork::reactions_reading(
    std::size_t species) const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < reactions_.size(); ++r) {
    const auto& deps = reactions_[r].depends_on;
    if (std::binary_search(deps.begin(), deps.end(), species)) {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<double> ReactionNetwork::initial_values() const {
  std::vector<double> values;
  values.reserve(initial_amounts_.size() + constants_.size());
  values.insert(values.end(), initial_amounts_.begin(), initial_amounts_.end());
  values.insert(values.end(), constants_.begin(), constants_.end());
  return values;
}

double ReactionNetwork::propensity(std::size_t r,
                                   const std::vector<double>& values) const {
  const CompiledReaction& reaction = reactions_[r];
  for (const auto& req : reaction.requirements) {
    if (values[req.species] < req.delta) return 0.0;
  }
  const double a = reaction.propensity.evaluate(values);
  if (!(a >= 0.0)) {  // catches negatives and NaN in one test
    throw SimulationError("reaction '" + reaction.id +
                          "' produced an invalid propensity " +
                          std::to_string(a));
  }
  return a;
}

void ReactionNetwork::fire(std::size_t r,
                           std::vector<double>& values) const noexcept {
  for (const auto& change : reactions_[r].changes) {
    values[change.species] += change.delta;
    // Kinetic laws evaluated on whole molecules can never push a species
    // negative when requirements are enforced, but guard against model
    // authors writing laws that fire below their own requirements.
    if (values[change.species] < 0.0) values[change.species] = 0.0;
  }
}

}  // namespace glva::crn
