#include "app/request.h"

#include <cstdio>
#include <utility>

#include "circuits/circuit_repository.h"
#include "core/report.h"
#include "logic/truth_table.h"
#include "props/parser.h"
#include "sbml/reader.h"
#include "util/errors.h"
#include "util/string_util.h"
#include "util/text_table.h"

namespace glva::app {

namespace {

/// Shared analysis options (the vocabulary every analysis op accepts).
void add_analysis_options(util::CliParser& cli) {
  cli.add_option("threshold", "15", "ThVAL (molecules); inputs applied at it");
  cli.add_option("fov-ud", "0.25", "acceptable fraction of output variation");
  cli.add_option("total-time", "10000", "sweep duration (time units)");
  cli.add_option("sampling-period", "1",
                 "trace grid (time units per sample; samples = total-time / "
                 "sampling-period)");
  cli.add_option("seed", "1", "simulation seed");
  cli.add_option("method", "direct", "SSA: direct | next-reaction | tau-leap");
  cli.add_option("backend", "packed",
                 "analysis streams: packed | reference (bit-identical)");
  cli.add_option("sink", "mem",
                 "trace storage: mem | spill | digitize (bit-identical "
                 "results; see docs/STORAGE.md)");
  cli.add_option("spill-dir", "",
                 "directory for .glvt spill files (required for --sink "
                 "spill; with --sink digitize, also writes a bit-plane "
                 ".glvt artifact)");
  cli.add_flag("no-timings",
               "omit wall-clock lines from the report (byte-stable output "
               "for goldens, caching, and CLI/daemon identity)");
}

core::ExperimentConfig config_from(const util::CliParser& cli) {
  core::ExperimentConfig config;
  config.threshold = cli.get_double("threshold");
  config.fov_ud = cli.get_double("fov-ud");
  config.total_time = cli.get_double("total-time");
  config.sampling_period = cli.get_double("sampling-period");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.method = sim::parse_ssa_method(cli.get("method"));
  config.backend = core::parse_analysis_backend(cli.get("backend"));
  config.sink = store::parse_sink_kind(cli.get("sink"));
  config.spill_dir = cli.get("spill-dir");
  return config;
}

/// Exact, canonical rendering of a double for content addressing: the
/// shortest decimal would also round-trip, but hex-float is trivially
/// canonical (no locale, no precision knob) and bit-exact.
std::string canonical_double(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

void append_field(std::string& key, const char* name,
                  const std::string& value) {
  key += name;
  key += '=';
  key += value;
  key += '\x1f';  // unit separator: cannot appear in any field value above
}

circuits::CircuitSpec spec_for(const Request& request) {
  if (request.op != Request::Op::kAnalyze) {
    return circuits::CircuitRepository::build(request.target,
                                              request.two_stage);
  }
  circuits::CircuitSpec spec;
  spec.name = request.target;
  spec.model = sbml::read_sbml_file(request.target);
  spec.input_ids = request.input_ids;
  spec.output_id = request.output_id;
  spec.expected = logic::TruthTable(request.input_ids.size());
  return spec;
}

Response execute_analyze(const Request& request, const circuits::CircuitSpec& spec,
                         const ExecutionHooks& hooks) {
  const auto result = core::run_experiment(spec, request.config);
  if (hooks.on_extraction) hooks.on_extraction(result.extraction);

  Response response;
  response.body = core::render_analytics_table(result.extraction) + "\n" +
                  "expression: " + spec.output_id + " = " +
                  result.extraction.expression() + "\n" +
                  "fitness:    " +
                  util::format_double(result.extraction.fitness(), 6) + " %\n";
  if (!request.expected_hex.empty()) {
    const auto bits = std::stoull(request.expected_hex, nullptr, 16);
    const auto expected =
        logic::TruthTable::from_bits(request.input_ids.size(), bits);
    const auto report = core::verify(result.extraction, expected);
    response.body += "verify:     " + core::summarize(report, expected) + "\n";
    response.exit_code = report.matches ? 0 : 1;
  }
  return response;
}

Response execute_verify(const Request& request,
                        const circuits::CircuitSpec& spec,
                        const ExecutionHooks& hooks) {
  const auto result = core::run_experiment(spec, request.config);
  if (hooks.on_extraction) hooks.on_extraction(result.extraction);

  Response response;
  response.body =
      core::render_analytics_table(result.extraction) + "\n" +
      core::render_experiment_summary(result, spec.expected,
                                      /*timings=*/!request.no_timings);
  response.exit_code = result.verification.matches ? 0 : 1;
  return response;
}

Response execute_ensemble(const Request& request,
                          const circuits::CircuitSpec& spec,
                          const exec::ParallelRunner& runner,
                          const ExecutionHooks& hooks) {
  const core::EnsembleResult ensemble = core::run_ensemble(
      spec, request.config, request.replicates, runner, hooks.on_replicate);
  if (hooks.on_ensemble) hooks.on_ensemble(ensemble);

  Response response;
  response.body = core::render_ensemble_summary(ensemble);
  response.exit_code = ensemble.majority_matches ? 0 : 1;
  return response;
}

Response execute_check(const Request& request,
                       const circuits::CircuitSpec& spec,
                       const exec::ParallelRunner& runner,
                       const ExecutionHooks& hooks) {
  std::vector<props::PropertyPtr> properties;
  properties.reserve(request.properties.size());
  for (const std::string& text : request.properties) {
    properties.push_back(props::parse_property(text));
  }
  const props::CheckResult result =
      props::run_check(spec, request.config, properties, request.replicates,
                       runner, hooks.on_check_replicate);

  Response response;
  response.body = props::render_check_summary(result, request.min_satisfaction);
  response.exit_code = result.satisfied(request.min_satisfaction) ? 0 : 1;
  return response;
}

Response execute_sweep(const Request& request,
                       const circuits::CircuitSpec& spec,
                       const exec::ParallelRunner& runner,
                       const ExecutionHooks& hooks) {
  util::TextTable table(
      {"ThVAL", "expression", "PFoBE %", "total Var_O", "verify"});
  table.set_align(0, util::TextTable::Align::kRight);
  table.set_align(2, util::TextTable::Align::kRight);
  table.set_align(3, util::TextTable::Align::kRight);

  // Points fold into formatted rows as their ordered commits arrive and
  // are then released — the streaming threshold_sweep contract; a dense
  // grid costs one in-flight window of results, not the whole sweep.
  std::size_t matched = 0;
  const core::ThresholdPointObserver fold =
      [&](std::size_t, core::ThresholdPoint&& point) {
        const auto& extraction = point.result.extraction;
        std::size_t total_variation = 0;
        for (const auto& record : extraction.variation.records) {
          total_variation += record.variation_count;
        }
        matched += point.result.verification.matches ? 1 : 0;
        table.add_row(
            {util::format_double(point.threshold, 4),
             spec.output_id + " = " + extraction.expression(),
             util::format_double(extraction.fitness(), 5),
             std::to_string(total_variation),
             core::summarize(point.result.verification, spec.expected)});
        if (hooks.on_point) hooks.on_point(point);
      };
  if (request.redigitize) {
    core::threshold_sweep_redigitize(spec, request.config, request.thresholds,
                                     runner, fold);
  } else {
    core::threshold_sweep(spec, request.config, request.thresholds, runner,
                          fold);
  }

  std::vector<std::string> labels;
  labels.reserve(request.thresholds.size());
  for (const double threshold : request.thresholds) {
    labels.push_back(util::format_double(threshold, 4));
  }

  Response response;
  response.body =
      "circuit:    " + spec.name + "\n" +
      "thresholds: " + util::join(labels, ", ") +
      (request.redigitize
           ? " (re-digitize ablation: one shared simulation)"
           : " (inputs re-applied at each threshold, as in the paper)") +
      "\n\n" + table.str() + "\n" + std::to_string(matched) + "/" +
      std::to_string(request.thresholds.size()) +
      " point(s) recover the intended logic\n";
  response.exit_code = matched == request.thresholds.size() ? 0 : 1;
  return response;
}

}  // namespace

const char* op_name(Request::Op op) noexcept {
  switch (op) {
    case Request::Op::kAnalyze:
      return "analyze";
    case Request::Op::kVerify:
      return "verify";
    case Request::Op::kEnsemble:
      return "ensemble";
    case Request::Op::kSweep:
      return "sweep";
    case Request::Op::kCheck:
      return "check";
  }
  return "unknown";
}

Request::Op parse_op(const std::string& name) {
  if (name == "analyze") return Request::Op::kAnalyze;
  if (name == "verify") return Request::Op::kVerify;
  if (name == "ensemble") return Request::Op::kEnsemble;
  if (name == "sweep") return Request::Op::kSweep;
  if (name == "check") return Request::Op::kCheck;
  throw InvalidArgument(
      "unknown analysis op '" + name +
      "' (expected analyze | verify | ensemble | sweep | check)");
}

void add_request_options(util::CliParser& cli, Request::Op op) {
  if (op == Request::Op::kAnalyze) {
    cli.add_option("inputs", "",
                   "comma-separated input species ids (MSB first)");
    cli.add_option("output", "GFP", "output species id");
    cli.add_option("expected", "",
                   "optional expected function as minterm hex (bit i = "
                   "combination i), e.g. 0x8 for 2-input AND");
  }
  if (op == Request::Op::kEnsemble) {
    cli.add_option("replicates", "8", "independent stochastic replicates");
  }
  if (op == Request::Op::kCheck) {
    cli.add_option("property", "",
                   "semicolon-separated temporal properties over plane "
                   "atoms, e.g. \"G(C->F[0,80]GFP)\" (see "
                   "docs/PROPERTIES.md)");
    cli.add_option("replicates", "1", "independent stochastic replicates");
    cli.add_option("min-satisfaction", "1",
                   "PASS threshold on each property's mean satisfaction "
                   "fraction, in [0, 1]");
  }
  if (op == Request::Op::kSweep) {
    cli.add_option("thresholds", "3,15,40",
                   "comma-separated ThVAL grid; inputs are re-applied at "
                   "each value (the paper's Figure 5 methodology)");
    cli.add_flag("redigitize",
                 "ablation: keep one simulation and only re-digitize the "
                 "output at each threshold");
  }
  add_analysis_options(cli);
  if (op != Request::Op::kAnalyze) {
    cli.add_flag("two-stage", "expand gates to transcription+translation");
  }
}

Request request_from_cli(Request::Op op, std::string target,
                         const util::CliParser& cli) {
  Request request;
  request.op = op;
  request.target = std::move(target);
  request.config = config_from(cli);
  request.no_timings = cli.get_flag("no-timings");
  if (op != Request::Op::kAnalyze) {
    request.two_stage = cli.get_flag("two-stage");
  }
  if (op == Request::Op::kAnalyze) {
    for (const auto& field : util::split(cli.get("inputs"), ',')) {
      const auto trimmed = util::trim(field);
      if (!trimmed.empty()) request.input_ids.emplace_back(trimmed);
    }
    if (request.input_ids.empty()) {
      throw InvalidArgument(
          "analyze: --inputs is required (e.g. --inputs A,B)");
    }
    request.output_id = cli.get("output");
    request.expected_hex = cli.get("expected");
  }
  if (op == Request::Op::kEnsemble) {
    const long long replicates = cli.get_int("replicates");
    if (replicates <= 0) {
      throw InvalidArgument("ensemble: --replicates must be at least 1");
    }
    request.replicates = static_cast<std::size_t>(replicates);
  }
  if (op == Request::Op::kCheck) {
    for (const auto& field : util::split(cli.get("property"), ';')) {
      const auto trimmed = util::trim(field);
      if (trimmed.empty()) continue;
      // Parse now (malformed properties fail before any simulation) and
      // store the canonical spelling, so whitespace/paren variants of one
      // property produce one canonical_key.
      request.properties.push_back(
          props::to_string(*props::parse_property(std::string(trimmed))));
    }
    if (request.properties.empty()) {
      throw InvalidArgument(
          "check: --property is required (e.g. --property "
          "\"G(C->F[0,80]GFP)\"; separate several with ';')");
    }
    const long long replicates = cli.get_int("replicates");
    if (replicates <= 0) {
      throw InvalidArgument("check: --replicates must be at least 1");
    }
    request.replicates = static_cast<std::size_t>(replicates);
    request.min_satisfaction = cli.get_double("min-satisfaction");
    if (request.min_satisfaction < 0.0 || request.min_satisfaction > 1.0) {
      throw InvalidArgument("check: --min-satisfaction must be in [0, 1]");
    }
  }
  if (op == Request::Op::kSweep) {
    for (const auto& field : util::split(cli.get("thresholds"), ',')) {
      const auto trimmed = util::trim(field);
      if (trimmed.empty()) continue;
      const auto value = util::parse_double(trimmed);
      if (!value) {
        throw InvalidArgument("sweep: bad threshold value '" +
                              std::string(trimmed) + "'");
      }
      request.thresholds.push_back(*value);
    }
    if (request.thresholds.empty()) {
      throw InvalidArgument(
          "sweep: --thresholds needs at least one value (e.g. 3,15,40)");
    }
    request.redigitize = cli.get_flag("redigitize");
  }
  return request;
}

Request parse_request(Request::Op op, std::string target,
                      const std::vector<std::string>& options) {
  util::CliParser cli;
  add_request_options(cli, op);
  std::vector<const char*> argv{"glva-request"};
  argv.reserve(options.size() + 1);
  for (const auto& option : options) argv.push_back(option.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    // --help over the wire is an error, not a help screen: the daemon has
    // no interactive surface to print one to.
    throw InvalidArgument(std::string(op_name(op)) +
                          ": --help is not a protocol option");
  }
  return request_from_cli(op, std::move(target), cli);
}

std::string canonical_key(const Request& request) {
  std::string key;
  key.reserve(256);
  append_field(key, "op", op_name(request.op));
  append_field(key, "target", request.target);
  append_field(key, "two_stage", request.two_stage ? "1" : "0");
  append_field(key, "replicates", std::to_string(request.replicates));
  std::string grid = std::to_string(request.thresholds.size());
  for (const double threshold : request.thresholds) {
    grid += ',';
    grid += canonical_double(threshold);
  }
  append_field(key, "thresholds", grid);
  append_field(key, "redigitize", request.redigitize ? "1" : "0");
  std::string inputs = std::to_string(request.input_ids.size());
  for (const auto& id : request.input_ids) {
    inputs += ',';
    inputs += id;
  }
  append_field(key, "inputs", inputs);
  append_field(key, "output", request.output_id);
  append_field(key, "expected", request.expected_hex);
  // Record separator between properties: canonical property text is
  // printable ASCII, so '\x1e' cannot occur inside one.
  std::string properties = std::to_string(request.properties.size());
  for (const auto& property : request.properties) {
    properties += '\x1e';
    properties += property;
  }
  append_field(key, "properties", properties);
  append_field(key, "min_satisfaction",
               canonical_double(request.min_satisfaction));
  append_field(key, "no_timings", request.no_timings ? "1" : "0");

  const core::ExperimentConfig& config = request.config;
  append_field(key, "total_time", canonical_double(config.total_time));
  append_field(key, "threshold", canonical_double(config.threshold));
  append_field(key, "fov_ud", canonical_double(config.fov_ud));
  append_field(key, "input_high_level",
               canonical_double(config.input_high_level));
  append_field(key, "sampling_period",
               canonical_double(config.sampling_period));
  append_field(key, "seed", std::to_string(config.seed));
  switch (config.method) {
    case sim::SsaMethod::kDirect:
      append_field(key, "method", "direct");
      break;
    case sim::SsaMethod::kNextReaction:
      append_field(key, "method", "next-reaction");
      break;
    case sim::SsaMethod::kTauLeap:
      append_field(key, "method", "tau-leap");
      break;
  }
  append_field(key, "backend", core::analysis_backend_name(config.backend));
  append_field(key, "sink", store::sink_kind_name(config.sink));
  return key;
}

std::uint64_t request_fingerprint(const Request& request) {
  // FNV-1a 64.
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : canonical_key(request)) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

Response execute(const Request& request, const ExecutionContext& context,
                 const ExecutionHooks& hooks) {
  const circuits::CircuitSpec spec = spec_for(request);
  switch (request.op) {
    case Request::Op::kAnalyze:
      return execute_analyze(request, spec, hooks);
    case Request::Op::kVerify:
      return execute_verify(request, spec, hooks);
    case Request::Op::kEnsemble:
    case Request::Op::kSweep:
    case Request::Op::kCheck:
      break;
  }
  // The fleet ops fan out over a runner: the caller's persistent one
  // (daemon) or a per-invocation pool sized by context.jobs (CLI).
  const auto run_fleet = [&](const exec::ParallelRunner& runner) {
    switch (request.op) {
      case Request::Op::kEnsemble:
        return execute_ensemble(request, spec, runner, hooks);
      case Request::Op::kSweep:
        return execute_sweep(request, spec, runner, hooks);
      default:
        return execute_check(request, spec, runner, hooks);
    }
  };
  if (context.runner != nullptr) return run_fleet(*context.runner);
  const exec::ParallelRunner runner(context.jobs);
  return run_fleet(runner);
}

}  // namespace glva::app
