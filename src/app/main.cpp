// Entry point of the `glva` command-line tool; all behaviour lives in
// glva::app::run_cli so the test suite can exercise it directly.

#include <iostream>

#include "app/commands.h"

int main(int argc, char** argv) {
  return glva::app::run_cli(argc, argv, std::cout, std::cerr);
}
