#pragma once

#include <string>

/// Build identification for operability: the `glva version` command and
/// the daemon's `status`/`version` responses report the same lines, so a
/// load-bench record or a bug report always carries the environment it
/// was measured in (version, build type, compiler, SIMD tiers).
namespace glva::app {

/// "glva <semver>" (e.g. "glva 0.1.0").
[[nodiscard]] std::string version_string();

/// Multi-line report: version, build configuration (build type, compiler,
/// C++ standard), the SIMD kernel tiers compiled in / runnable on this
/// CPU, and the active tier. The active-tier line reflects the dispatch
/// state at call time (so `--simd` / GLVA_SIMD overrides show up).
[[nodiscard]] std::string version_report();

}  // namespace glva::app
