#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/ensemble.h"
#include "core/experiment.h"
#include "core/threshold_sweep.h"
#include "exec/parallel_runner.h"
#include "props/check.h"
#include "util/cli.h"

/// The request/response layer the CLI and the `glva serve` daemon share.
///
/// One analysis invocation — analyze / verify / ensemble / sweep / check
/// — is a
/// value (`Request`): which workload, which target, and the full semantic
/// flag set, decoupled from where it came from (a CLI argv or a daemon
/// protocol frame). `execute()` turns a Request into a `Response` whose
/// `body` is exactly what the CLI prints for the same flags, so daemon
/// responses are byte-identical to CLI output by construction — there is
/// no second rendering path to drift.
///
/// Requests are also the cache unit: `canonical_key()` serializes every
/// semantic field in a fixed order with exact (hex-float) numeric
/// formatting, so two requests hash identically iff they ask for the same
/// result — whatever order their flags were typed in and whether defaults
/// were spelled out or omitted. Combined with the seed contract (equal
/// (circuit, config, seed) reproduces every byte), this is what makes the
/// daemon's result cache sound (see serve::ResultCache).
namespace glva::app {

/// One analysis request. Fields beyond `config` apply only to the ops
/// that use them but always carry their defaults, so canonical_key() is
/// total over the struct.
struct Request {
  enum class Op { kAnalyze, kVerify, kEnsemble, kSweep, kCheck };

  Op op = Op::kVerify;
  /// Catalog circuit name (verify/ensemble/sweep/check) or SBML model
  /// path (analyze; resolved relative to the executing process).
  std::string target;
  core::ExperimentConfig config;
  bool two_stage = false;          ///< expand gates (verify/ensemble/sweep/check)
  std::size_t replicates = 8;      ///< ensemble (default 8) / check (default 1)
  std::vector<double> thresholds;  ///< sweep grid (ThVAL values)
  bool redigitize = false;         ///< sweep: re-digitize-only ablation
  /// check: properties in canonical text form (props::to_string of the
  /// parse — spelling variants of one property share one cache key).
  std::vector<std::string> properties;
  double min_satisfaction = 1.0;  ///< check: PASS threshold on the fraction
  std::vector<std::string> input_ids;  ///< analyze: input species (MSB first)
  std::string output_id = "GFP";       ///< analyze: output species
  std::string expected_hex;            ///< analyze: optional minterm hex
  /// Omit wall-clock lines from the body (the verify summary's timing
  /// line). Byte-stability across runs — what the daemon/CLI identity
  /// tests and the result cache want — requires this on ops that would
  /// otherwise print timings.
  bool no_timings = false;
};

[[nodiscard]] const char* op_name(Request::Op op) noexcept;
/// Parse "analyze" / "verify" / "ensemble" / "sweep" / "check"; throws
/// glva::InvalidArgument otherwise.
[[nodiscard]] Request::Op parse_op(const std::string& name);

/// Declare `op`'s semantic options on `cli` — the single flag vocabulary
/// both surfaces parse: per-command CLI parsers add their CLI-only extras
/// (--csv and friends) on top, and the daemon feeds protocol options
/// through the same declarations, so an option accepted over the wire is
/// exactly an option the CLI accepts.
void add_request_options(util::CliParser& cli, Request::Op op);

/// Build the Request from a parser that ran over add_request_options
/// declarations. Throws glva::InvalidArgument on invalid field values
/// (bad method/backend/sink names, replicates < 1, empty sweep grid,
/// missing analyze inputs).
[[nodiscard]] Request request_from_cli(Request::Op op, std::string target,
                                       const util::CliParser& cli);

/// Convenience: declare, parse, and build in one step from pre-split
/// option strings (the daemon path). Throws on unknown options too.
[[nodiscard]] Request parse_request(Request::Op op, std::string target,
                                    const std::vector<std::string>& options);

/// The canonical content key: every semantic field in a fixed order,
/// doubles in exact hex-float form, lists length-prefixed — equal keys
/// iff equal results. Placement-only fields (spill_dir, spill_stem) are
/// excluded: they move scratch files around without changing a byte of
/// the response. Job counts are not part of a Request at all (results
/// are bit-identical for every worker count, per the exec/ contract).
[[nodiscard]] std::string canonical_key(const Request& request);

/// FNV-1a 64 of canonical_key — the short content address used in logs
/// and stats displays. The cache itself keys on the full canonical
/// string, so hash collisions can never alias two results.
[[nodiscard]] std::uint64_t request_fingerprint(const Request& request);

/// Everything a request produces: the exit code the CLI would return and
/// the bytes it would print to stdout (CLI-only decorations like
/// "analytics CSV written to ..." excluded — those are side-effect
/// messages, not analysis output).
struct Response {
  int exit_code = 0;
  std::string body;
};

/// Where a request runs: a per-invocation worker budget (CLI) or a
/// borrowed persistent runner whose pool outlives requests (daemon).
struct ExecutionContext {
  std::size_t jobs = 1;  ///< used when `runner` is null; 0 = hw threads
  const exec::ParallelRunner* runner = nullptr;  ///< daemon's runner
};

/// Optional taps for CLI-side extras (CSV files): invoked during
/// execute() with intermediate results the Response does not carry.
/// All default-constructed members are simply not called.
struct ExecutionHooks {
  /// analyze/verify: the single experiment's extraction.
  std::function<void(const core::ExtractionResult&)> on_extraction;
  /// ensemble: forwarded as the core::ReplicateObserver.
  core::ReplicateObserver on_replicate;
  /// ensemble: the reduced ensemble (for --ci-csv).
  std::function<void(const core::EnsembleResult&)> on_ensemble;
  /// sweep: each point from the ordered commit stream, before release.
  std::function<void(const core::ThresholdPoint&)> on_point;
  /// check: forwarded as the props::CheckObserver (per-replicate CSV).
  props::CheckObserver on_check_replicate;
};

/// Run the request and render its body. Exit codes mirror the CLI: 0
/// success, 1 verification failure (wrong extracted logic / majority
/// mismatch). Errors propagate as glva exceptions — the CLI maps them to
/// exit 2, the daemon to a structured error response.
[[nodiscard]] Response execute(const Request& request,
                               const ExecutionContext& context = {},
                               const ExecutionHooks& hooks = {});

}  // namespace glva::app
