#include "app/version.h"

#include <string>

#include "logic/simd/kernel_set.h"
#include "obs/metrics.h"

// The build system injects these on this translation unit only (see
// CMakeLists.txt); fall back to visible placeholders so the file still
// compiles standalone.
#ifndef GLVA_VERSION
#define GLVA_VERSION "unknown"
#endif
#ifndef GLVA_BUILD_TYPE
#define GLVA_BUILD_TYPE "unknown"
#endif
#ifndef GLVA_CXX_COMPILER
#define GLVA_CXX_COMPILER "unknown"
#endif

namespace glva::app {

std::string version_string() { return std::string("glva ") + GLVA_VERSION; }

std::string version_report() {
  std::string compiled;
  std::string runnable;
  for (std::size_t i = 0; i < logic::simd::kIsaLevelCount; ++i) {
    const auto level = static_cast<logic::simd::IsaLevel>(i);
    const char* name = logic::simd::isa_level_name(level);
    if (logic::simd::compiled_kernel_set(level) != nullptr) {
      compiled += compiled.empty() ? name : std::string(" ") + name;
    }
    if (logic::simd::kernel_set(level) != nullptr) {
      runnable += runnable.empty() ? name : std::string(" ") + name;
    }
  }
  std::string out;
  out += version_string() + "\n";
  out += std::string("build:       ") + GLVA_BUILD_TYPE + ", " +
         GLVA_CXX_COMPILER + ", C++20\n";
  out += "simd tiers:  " + compiled + " (compiled); " + runnable +
         " (runnable on this CPU)\n";
  out += std::string("simd active: ") +
         logic::simd::isa_level_name(logic::simd::active_level()) + "\n";
  out += std::string("metrics:     ") +
         (obs::metrics_enabled() ? "enabled"
                                 : "compiled out (GLVA_NO_METRICS)") +
         "\n";
  return out;
}

}  // namespace glva::app
