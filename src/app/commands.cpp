#include "app/commands.h"

#include <filesystem>
#include <fstream>

#include "app/request.h"
#include "app/version.h"
#include "circuits/cello_circuits.h"
#include "circuits/circuit_repository.h"
#include "logic/quine_mccluskey.h"
#include "logic/simd/kernel_set.h"
#include "core/ensemble.h"
#include "core/experiment.h"
#include "core/report.h"
#include "obs/trace.h"
#include "props/check.h"
#include "sbml/validate.h"
#include "sbml/writer.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sbol/converter.h"
#include "sbol/sbol_io.h"
#include "timing/delay_estimator.h"
#include "timing/threshold_estimator.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/errors.h"
#include "util/log.h"
#include "util/string_util.h"
#include "util/text_table.h"

namespace glva::app {

namespace {

constexpr const char* kUsage =
    "usage: glva <command> [options]\n"
    "\n"
    "commands:\n"
    "  list                         catalog circuits and their metadata\n"
    "  show <circuit>               structure, intended logic, model stats\n"
    "  export <circuit>             write SBML (--sbml) and/or SBOL (--sbol)\n"
    "  analyze <model.sbml>         extract logic from a model file\n"
    "  verify <circuit>             run the paper's experiment on a catalog circuit\n"
    "  ensemble <circuit>           N-replicate ensemble: majority logic + FOV stats\n"
    "  sweep <circuit>              threshold-robustness sweep (Figure 5 methodology)\n"
    "  check <circuit>              monitor temporal properties over the sweep\n"
    "                               (bounded-LTL; see docs/PROPERTIES.md)\n"
    "  estimate <circuit>           estimate threshold and propagation delay\n"
    "  serve                        long-lived analysis daemon (see docs/SERVE.md)\n"
    "  stats                        fetch a running daemon's metrics snapshot\n"
    "  version                      build, SIMD tier, and dispatch information\n"
    "\n"
    "global options:\n"
    "  --jobs N                     worker threads for parallel workloads\n"
    "                               (0 = one per hardware thread; default 1;\n"
    "                               results are identical for every N)\n"
    "  --simd LEVEL                 analysis kernel ISA: scalar | sse2 | avx2\n"
    "                               | avx512 (default: widest the CPU "
    "supports;\n"
    "                               results are bit-identical at every "
    "level)\n"
    "  --trace-out FILE             write a Chrome trace-event JSON of the\n"
    "                               run's stages to FILE (open in\n"
    "                               chrome://tracing or Perfetto)\n"
    "  --log-level LEVEL            stderr diagnostics: error | warn | info\n"
    "                               | debug (default info; env GLVA_LOG)\n"
    "\n"
    "run `glva <command> --help` for per-command options\n";

/// Write one CSV document to `path`; throws glva::Error when the file
/// cannot be opened.
void write_csv_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open CSV output file: " + path);
  f << content;
}

int cmd_list(const std::vector<std::string>& args, std::ostream& out) {
  util::CliParser cli;
  cli.add_flag("two-stage", "report the transcription+translation variant");
  std::vector<const char*> argv{"glva-list"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva list");
    return 0;
  }
  util::TextTable table({"circuit", "source", "inputs", "gates", "parts",
                         "intended logic"});
  table.set_align(2, util::TextTable::Align::kRight);
  table.set_align(3, util::TextTable::Align::kRight);
  table.set_align(4, util::TextTable::Align::kRight);
  for (const auto& spec :
       circuits::CircuitRepository::build_all(cli.get_flag("two-stage"))) {
    table.add_row(
        {spec.name, circuits::CircuitRepository::is_myers(spec.name)
                        ? "Myers 2009"
                        : "Cello-style",
         std::to_string(spec.input_ids.size()), std::to_string(spec.gate_count),
         std::to_string(spec.parts.total()),
         logic::minimize(spec.expected, spec.input_ids).to_string()});
  }
  out << table.str();
  return 0;
}

int cmd_show(const std::string& name, std::ostream& out) {
  const auto spec = circuits::CircuitRepository::build(name);
  out << "circuit:     " << spec.name << "\n"
      << "description: " << spec.description << "\n"
      << "source:      " << spec.source << "\n"
      << "inputs:      " << util::join(spec.input_ids, ", ")
      << " (MSB first); output: " << spec.output_id << "\n"
      << "gates:       " << spec.gate_count << ", parts: promoters "
      << spec.parts.promoters << ", rbs " << spec.parts.rbs << ", cds "
      << spec.parts.cds << ", terminators " << spec.parts.terminators << "\n"
      << "model:       " << spec.model.species.size() << " species, "
      << spec.model.reactions.size() << " reactions, "
      << spec.model.parameters.size() << " parameters\n\n"
      << "intended logic: " << spec.output_id << " = "
      << logic::minimize(spec.expected, spec.input_ids).to_string() << "\n\n"
      << spec.expected.to_string(spec.input_ids, spec.output_id);
  return 0;
}

int cmd_export(const std::string& name, const std::vector<std::string>& args,
               std::ostream& out) {
  util::CliParser cli;
  cli.add_option("sbml", "", "output path for the behavioural SBML model");
  cli.add_option("sbol", "", "output path for the structural SBOL-lite design");
  cli.add_flag("two-stage", "expand gates to transcription+translation");
  std::vector<const char*> argv{"glva-export"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva export <circuit>");
    return 0;
  }
  const bool two_stage = cli.get_flag("two-stage");
  const auto spec = circuits::CircuitRepository::build(name, two_stage);
  bool wrote = false;
  if (const std::string path = cli.get("sbml"); !path.empty()) {
    sbml::write_sbml_file(spec.model, path);
    out << "SBML written to " << path << "\n";
    wrote = true;
  }
  if (const std::string path = cli.get("sbol"); !path.empty()) {
    if (circuits::CircuitRepository::is_myers(name)) {
      throw InvalidArgument(
          "Myers book circuits are behavioural models without a gate-level "
          "structure; --sbol applies to the Cello-style circuits");
    }
    const auto design = sbol::design_from_netlist(
        circuits::cello_netlist(name), "design_" + spec.model.id);
    sbol::write_design_file(design, path);
    out << "SBOL-lite written to " << path << "\n";
    wrote = true;
  }
  if (!wrote) {
    out << "nothing to do: pass --sbml <path> and/or --sbol <path>\n";
    return 2;
  }
  return 0;
}

// The analysis commands below all parse into an app::Request and run it
// through app::execute — the exact path the `glva serve` daemon uses — so
// daemon responses are byte-identical to CLI output by construction. Only
// CLI-side extras (CSV files and their "written to" messages) live here.

int cmd_analyze(const std::string& path, const std::vector<std::string>& args,
                std::ostream& out) {
  util::CliParser cli;
  add_request_options(cli, Request::Op::kAnalyze);
  cli.add_option("csv", "", "write per-combination analytics CSV here");
  std::vector<const char*> argv{"glva-analyze"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva analyze <model.sbml>");
    return 0;
  }
  const Request request = request_from_cli(Request::Op::kAnalyze, path, cli);
  ExecutionHooks hooks;
  std::string csv_message;
  const std::string csv_path = cli.get("csv");
  if (!csv_path.empty()) {
    hooks.on_extraction = [&](const core::ExtractionResult& extraction) {
      write_csv_file(csv_path, core::analytics_csv(extraction));
      csv_message = "analytics CSV written to " + csv_path + "\n";
    };
  }
  const Response response = execute(request, {}, hooks);
  out << response.body << csv_message;
  return response.exit_code;
}

int cmd_verify(const std::string& name, const std::vector<std::string>& args,
               std::ostream& out) {
  util::CliParser cli;
  add_request_options(cli, Request::Op::kVerify);
  cli.add_option("csv", "", "write per-combination analytics CSV here");
  std::vector<const char*> argv{"glva-verify"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva verify <circuit>");
    return 0;
  }
  const Request request = request_from_cli(Request::Op::kVerify, name, cli);
  ExecutionHooks hooks;
  std::string csv_message;
  const std::string csv_path = cli.get("csv");
  if (!csv_path.empty()) {
    hooks.on_extraction = [&](const core::ExtractionResult& extraction) {
      write_csv_file(csv_path, core::analytics_csv(extraction));
      csv_message = "analytics CSV written to " + csv_path + "\n";
    };
  }
  const Response response = execute(request, {}, hooks);
  out << response.body << csv_message;
  return response.exit_code;
}

int cmd_ensemble(const std::string& name, const std::vector<std::string>& args,
                 std::size_t jobs, std::ostream& out) {
  util::CliParser cli;
  add_request_options(cli, Request::Op::kEnsemble);
  cli.add_option("csv", "", "write per-combination analytics CSV here");
  cli.add_option("csv-dir", "",
                 "write one per-replicate analytics CSV into this directory");
  cli.add_option("ci-csv", "",
                 "write the replicate-level 95% confidence-interval summary "
                 "CSV here (PFoBE, wrong states)");
  std::vector<const char*> argv{"glva-ensemble"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva ensemble <circuit>");
    return 0;
  }
  const Request request = request_from_cli(Request::Op::kEnsemble, name, cli);

  // Per-replicate analytics stream out of the ensemble's ordered commit
  // stream as each replicate finishes — the runner never materializes the
  // fleet, so --csv / --csv-dir stay O(1) per replicate too. The fleet CSV
  // streams into a sibling temp file that is renamed onto --csv only after
  // a fully successful run, so a failed rerun can never truncate, corrupt,
  // or delete an earlier result file. The temp file is opened (and
  // directories created) before the run so argument errors surface without
  // paying for the simulation.
  const std::string csv_path = cli.get("csv");
  const std::string csv_dir = cli.get("csv-dir");
  const std::string ci_csv_path = cli.get("ci-csv");
  const std::string csv_temp_path =
      csv_path.empty() ? std::string() : csv_path + ".partial";
  std::ofstream csv_stream;
  if (!csv_path.empty()) {
    csv_stream.open(csv_temp_path, std::ios::binary);
    if (!csv_stream) throw Error("cannot open CSV output file: " + csv_path);
    // --csv carries *all* replicates, distinguished by the leading
    // `replicate` index column (see ensemble_analytics_csv_header).
    csv_stream << core::ensemble_analytics_csv_header();
  }
  if (!csv_dir.empty()) std::filesystem::create_directories(csv_dir);

  ExecutionHooks hooks;
  if (!csv_path.empty() || !csv_dir.empty()) {
    hooks.on_replicate = [&](std::size_t r,
                             const core::ExperimentResult& result) {
      if (csv_stream.is_open()) {
        csv_stream << core::ensemble_analytics_csv_rows(r, result.extraction);
        // Fail fast: a bad stream (disk full, pulled mount) aborts the run
        // at this commit instead of simulating the rest of the fleet.
        if (!csv_stream) {
          throw Error("failed writing CSV output file: " + csv_path);
        }
      }
      if (!csv_dir.empty()) {
        // --csv-dir splits the same analytics into one file per replicate.
        std::string index = std::to_string(r);
        index.insert(0, index.size() < 3 ? 3 - index.size() : 0, '0');
        write_csv_file(
            (std::filesystem::path(csv_dir) / ("replicate_" + index + ".csv"))
                .string(),
            core::analytics_csv(result.extraction));
      }
    };
  }
  std::string ci_csv_content;
  std::size_t replicate_count = 0;
  hooks.on_ensemble = [&](const core::EnsembleResult& ensemble) {
    replicate_count = ensemble.replicate_count;
    if (!ci_csv_path.empty()) {
      ci_csv_content = core::ensemble_confidence_csv(ensemble);
    }
  };

  ExecutionContext context;
  context.jobs = jobs;
  Response response;
  try {
    response = execute(request, context, hooks);
  } catch (...) {
    // Only the temp file dies with a failed run; an earlier --csv result
    // file is untouched. Completed replicate_NNN.csv files are each
    // self-contained and are left in place.
    if (csv_stream.is_open()) {
      csv_stream.close();
      std::error_code ec;
      std::filesystem::remove(csv_temp_path, ec);
    }
    throw;
  }
  out << response.body;
  if (csv_stream.is_open()) {
    // Seal the temp file, then move it onto the target in one step — the
    // target is either the previous complete file or the new complete one,
    // never a truncated half-fleet document.
    csv_stream.close();
    std::error_code ec;
    if (!csv_stream) {
      std::filesystem::remove(csv_temp_path, ec);
      throw Error("failed writing CSV output file: " + csv_path);
    }
    std::filesystem::rename(csv_temp_path, csv_path, ec);
    if (ec) {
      std::filesystem::remove(csv_temp_path, ec);
      throw Error("failed writing CSV output file: " + csv_path);
    }
    out << "analytics CSV (all replicates) written to " << csv_path << "\n";
  }
  // --ci-csv carries the replicate-level confidence intervals.
  if (!ci_csv_path.empty()) {
    write_csv_file(ci_csv_path, ci_csv_content);
    out << "confidence-interval CSV written to " << ci_csv_path << "\n";
  }
  if (!csv_dir.empty()) {
    out << replicate_count << " replicate CSV(s) written to " << csv_dir
        << "\n";
  }
  return response.exit_code;
}

int cmd_sweep(const std::string& name, const std::vector<std::string>& args,
              std::size_t jobs, std::ostream& out) {
  util::CliParser cli;
  add_request_options(cli, Request::Op::kSweep);
  cli.add_option("csv", "",
                 "write per-point per-combination variation CSV here");
  std::vector<const char*> argv{"glva-sweep"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva sweep <circuit>");
    return 0;
  }
  const Request request = request_from_cli(Request::Op::kSweep, name, cli);

  const std::string csv_path = cli.get("csv");
  util::CsvWriter csv;
  ExecutionHooks hooks;
  if (!csv_path.empty()) {
    csv.row("threshold", "case", "case_count", "high_count",
            "variation_count", "verdict_high");
    hooks.on_point = [&](const core::ThresholdPoint& point) {
      const auto& extraction = point.result.extraction;
      for (const auto& record : extraction.variation.records) {
        csv.row(point.threshold,
                extraction.extracted().combination_label(record.combination),
                static_cast<unsigned long long>(record.case_count),
                static_cast<unsigned long long>(record.high_count),
                static_cast<unsigned long long>(record.variation_count),
                extraction.construction.outcomes[record.combination].verdict ==
                        core::CaseVerdict::kHigh
                    ? "1"
                    : "0");
      }
    };
  }

  ExecutionContext context;
  context.jobs = jobs;
  const Response response = execute(request, context, hooks);
  out << response.body;
  if (!csv_path.empty()) {
    csv.save(csv_path);
    out << "CSV written to " << csv_path << "\n";
  }
  return response.exit_code;
}

int cmd_check(const std::string& name, const std::vector<std::string>& args,
              std::size_t jobs, std::ostream& out) {
  util::CliParser cli;
  add_request_options(cli, Request::Op::kCheck);
  cli.add_option("csv", "",
                 "write the per-replicate per-combination satisfaction CSV "
                 "here (all replicates, streamed)");
  std::vector<const char*> argv{"glva-check"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva check <circuit>");
    return 0;
  }
  const Request request = request_from_cli(Request::Op::kCheck, name, cli);

  // Same atomic-rename streaming CSV protocol as cmd_ensemble: rows flow
  // out of the ordered commit stream per replicate, into a sibling temp
  // file renamed onto --csv only after a fully successful run.
  const std::string csv_path = cli.get("csv");
  const std::string csv_temp_path =
      csv_path.empty() ? std::string() : csv_path + ".partial";
  std::ofstream csv_stream;
  if (!csv_path.empty()) {
    csv_stream.open(csv_temp_path, std::ios::binary);
    if (!csv_stream) throw Error("cannot open CSV output file: " + csv_path);
    csv_stream << "replicate,seed,property,combination,samples,satisfied,"
                  "fraction,first_violation\n";
  }

  ExecutionHooks hooks;
  if (!csv_path.empty()) {
    hooks.on_check_replicate = [&](std::size_t r,
                                   const props::CheckReplicate& replicate) {
      for (const props::PropertyCheck& check : replicate.properties) {
        // Canonical property text contains commas (window bounds), so the
        // field is quoted; the grammar has no quote character.
        const auto row = [&](const std::string& combination,
                             std::size_t samples, std::size_t satisfied,
                             double fraction, std::size_t first_violation) {
          csv_stream << r << ',' << replicate.seed << ",\"" << check.property
                     << "\"," << combination << ',' << samples << ','
                     << satisfied << ',' << util::format_double(fraction, 6)
                     << ',';
          if (first_violation != props::kNoViolation) {
            csv_stream << first_violation;
          }
          csv_stream << '\n';
        };
        for (const props::CombinationCheck& comb : check.combinations) {
          row(std::to_string(comb.combination), comb.samples, comb.satisfied,
              comb.fraction(), comb.first_violation);
        }
        row("all", check.samples, check.satisfied, check.fraction(),
            check.first_violation);
      }
      if (!csv_stream) {
        throw Error("failed writing CSV output file: " + csv_path);
      }
    };
  }

  ExecutionContext context;
  context.jobs = jobs;
  Response response;
  try {
    response = execute(request, context, hooks);
  } catch (...) {
    if (csv_stream.is_open()) {
      csv_stream.close();
      std::error_code ec;
      std::filesystem::remove(csv_temp_path, ec);
    }
    throw;
  }
  out << response.body;
  if (csv_stream.is_open()) {
    csv_stream.close();
    std::error_code ec;
    if (!csv_stream) {
      std::filesystem::remove(csv_temp_path, ec);
      throw Error("failed writing CSV output file: " + csv_path);
    }
    std::filesystem::rename(csv_temp_path, csv_path, ec);
    if (ec) {
      std::filesystem::remove(csv_temp_path, ec);
      throw Error("failed writing CSV output file: " + csv_path);
    }
    out << "check CSV (all replicates) written to " << csv_path << "\n";
  }
  return response.exit_code;
}

int cmd_estimate(const std::string& name, const std::vector<std::string>& args,
                 std::ostream& out) {
  util::CliParser cli;
  cli.add_option("probe-level", "30", "input level for the probe sweep");
  cli.add_option("total-time", "10000", "probe sweep duration");
  cli.add_option("seed", "1", "simulation seed");
  std::vector<const char*> argv{"glva-estimate"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva estimate <circuit>");
    return 0;
  }
  const auto spec = circuits::CircuitRepository::build(name);
  sim::LabOptions options;
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  sim::VirtualLab lab(spec.model, options);
  lab.declare_inputs(spec.input_ids);

  const double probe = cli.get_double("probe-level");
  const double total = cli.get_double("total-time");
  const auto sweep = lab.run_combination_sweep(total, probe);
  const auto& series = sweep.trace.series(spec.output_id);
  const auto threshold_info = timing::estimate_threshold(
      std::span<const double>(series.data(), series.size()));
  const auto delays = timing::estimate_delays(
      sweep.trace, sweep.schedule, spec.output_id, threshold_info.threshold);

  out << "circuit:            " << spec.name << "\n"
      << "threshold estimate: "
      << util::format_double(threshold_info.threshold, 4) << " molecules (off "
      << util::format_double(threshold_info.off_mean, 4) << ", on "
      << util::format_double(threshold_info.on_mean, 4) << ", separation "
      << util::format_double(threshold_info.separation, 3) << ")\n"
      << "rise delay:         "
      << util::format_double(delays.mean_rise_delay, 4) << " tu\n"
      << "fall delay:         "
      << util::format_double(delays.mean_fall_delay, 4) << " tu\n"
      << "recommended hold:   "
      << util::format_double(delays.recommended_hold_time, 4)
      << " tu per combination\n";
  return 0;
}

int cmd_serve(const std::vector<std::string>& args, std::size_t jobs,
              std::ostream& out, std::ostream& err) {
  util::CliParser cli;
  cli.add_option("listen", "",
                 "TCP listen address as host:port (port 0 = ephemeral; the "
                 "bound port is printed on startup)");
  cli.add_option("unix", "", "Unix-domain socket path to listen on");
  cli.add_option("max-active", "0",
                 "requests executing concurrently (0 = pool thread count)");
  cli.add_option("max-queued", "64",
                 "admitted-but-waiting requests before new ones are "
                 "rejected as overloaded");
  cli.add_option("cache-mb", "64",
                 "result cache budget in MiB (0 disables caching)");
  cli.add_option("stats-interval", "0",
                 "seconds between one-line stats summaries on stderr "
                 "(0 disables)");
  std::vector<const char*> argv{"glva-serve"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva serve");
    return 0;
  }
  serve::ServerOptions options;
  options.listen_addr = cli.get("listen");
  options.unix_path = cli.get("unix");
  options.jobs = jobs;
  const long long max_active = cli.get_int("max-active");
  const long long max_queued = cli.get_int("max-queued");
  const long long cache_mb = cli.get_int("cache-mb");
  const long long stats_interval = cli.get_int("stats-interval");
  if (max_active < 0 || max_queued < 0 || cache_mb < 0 ||
      stats_interval < 0) {
    throw InvalidArgument(
        "serve: --max-active, --max-queued, --cache-mb, and "
        "--stats-interval must be >= 0");
  }
  options.max_active = static_cast<std::size_t>(max_active);
  options.max_queued = static_cast<std::size_t>(max_queued);
  options.cache_bytes = static_cast<std::size_t>(cache_mb) * 1024 * 1024;
  options.stats_interval_seconds = static_cast<unsigned>(stats_interval);
  return serve::run_serve(options, out, err);
}

/// `glva stats`: fetch the metrics snapshot from a running daemon via the
/// `stats` op and print it — text by default (the same layout as the
/// daemon's final dump), raw JSON with --json.
int cmd_stats(const std::vector<std::string>& args, std::ostream& out) {
  util::CliParser cli;
  cli.add_option("unix", "", "daemon unix socket path to connect to");
  cli.add_option("connect", "", "daemon TCP endpoint as host:port");
  cli.add_flag("json", "print the raw JSON snapshot");
  std::vector<const char*> argv{"glva-stats"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  if (!cli.parse(static_cast<int>(argv.size()), argv.data())) {
    out << cli.help("glva stats");
    return 0;
  }
  const std::string unix_path = cli.get("unix");
  const std::string endpoint = cli.get("connect");
  if (unix_path.empty() == endpoint.empty()) {
    throw InvalidArgument(
        "stats: pass exactly one of --unix <path> or --connect <host:port>");
  }
  serve::Client client = [&] {
    if (!unix_path.empty()) return serve::Client::connect_unix(unix_path);
    const auto pos = endpoint.rfind(':');
    if (pos == std::string::npos || pos + 1 == endpoint.size()) {
      throw InvalidArgument("stats: --connect expects host:port, got '" +
                            endpoint + "'");
    }
    return serve::Client::connect_tcp(endpoint.substr(0, pos),
                                      endpoint.substr(pos + 1));
  }();

  const serve::Json request =
      serve::Json::object_of({{"op", serve::Json::of("stats")},
                              {"id", serve::Json::number_token("1")}});
  const serve::Json response = client.round_trip(request.dump());
  const serve::Json* ok = response.find("ok");
  if (ok == nullptr || ok->kind != serve::Json::Kind::kBool || !ok->boolean) {
    throw Error("stats: daemon returned an error: " + response.dump());
  }
  const serve::Json* result = response.find("result");
  if (result == nullptr || !result->is_object()) {
    throw Error("stats: malformed response (no 'result' object)");
  }
  if (cli.get_flag("json")) {
    out << result->dump() << "\n";
    return 0;
  }

  if (const serve::Json* enabled = result->find("metrics_enabled");
      enabled != nullptr && enabled->kind == serve::Json::Kind::kBool &&
      !enabled->boolean) {
    out << "(metrics compiled out: GLVA_NO_METRICS daemon build)\n";
    return 0;
  }
  // Text layout mirrors obs::render_text so a wire snapshot and the
  // daemon's final stderr dump read identically.
  if (const serve::Json* counters = result->find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->object) {
      out << "counter   " << name << " " << value.number << "\n";
    }
  }
  if (const serve::Json* gauges = result->find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->object) {
      out << "gauge     " << name << " " << value.number << "\n";
    }
  }
  if (const serve::Json* histograms = result->find("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, value] : histograms->object) {
      out << "histogram " << name;
      for (const char* field : {"count", "sum", "p50", "p95", "p99"}) {
        if (const serve::Json* member = value.find(field);
            member != nullptr) {
          out << " " << field << "=" << member->number;
        }
      }
      out << "\n";
    }
  }
  return 0;
}

int cmd_version(std::ostream& out) {
  out << version_report();
  return 0;
}

/// Strip the global `--jobs N` / `--jobs=N` flag out of `args`, returning
/// the requested worker count (default 1; 0 = one per hardware thread).
/// Throws glva::InvalidArgument on a missing or non-numeric value.
std::size_t extract_jobs_flag(std::vector<std::string>& args) {
  std::size_t jobs = 1;
  for (std::size_t i = 0; i < args.size();) {
    std::string value;
    if (args[i] == "--jobs") {
      if (i + 1 >= args.size()) {
        throw InvalidArgument("--jobs: missing value");
      }
      value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (util::starts_with(args[i], "--jobs=")) {
      value = args[i].substr(7);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
      continue;
    }
    const auto parsed = util::parse_int(value);
    if (!parsed || *parsed < 0) {
      throw InvalidArgument("--jobs: expected a non-negative integer, got '" +
                            value + "'");
    }
    jobs = static_cast<std::size_t>(*parsed);
  }
  return jobs;
}

/// Strip the global `--simd LEVEL` / `--simd=LEVEL` flag out of `args` and
/// pin the analysis kernel set to that ISA level. Throws
/// glva::InvalidArgument on a missing value, an unknown level name, or a
/// level this host cannot run. Takes precedence over the GLVA_SIMD
/// environment variable (set_active wins over the lazy default resolve).
void extract_simd_flag(std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size();) {
    std::string value;
    if (args[i] == "--simd") {
      if (i + 1 >= args.size()) {
        throw InvalidArgument("--simd: missing value");
      }
      value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (util::starts_with(args[i], "--simd=")) {
      value = args[i].substr(7);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
      continue;
    }
    logic::simd::set_active(logic::simd::parse_isa_level(value));
  }
}

/// Strip the global `--trace-out FILE` / `--trace-out=FILE` flag, returning
/// the file path (empty when absent). Throws on a missing value.
std::string extract_trace_out_flag(std::vector<std::string>& args) {
  std::string path;
  for (std::size_t i = 0; i < args.size();) {
    std::string value;
    if (args[i] == "--trace-out") {
      if (i + 1 >= args.size()) {
        throw InvalidArgument("--trace-out: missing value");
      }
      value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (util::starts_with(args[i], "--trace-out=")) {
      value = args[i].substr(12);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
      continue;
    }
    if (value.empty()) throw InvalidArgument("--trace-out: missing value");
    path = value;
  }
  return path;
}

/// Strip the global `--log-level LEVEL` / `--log-level=LEVEL` flag and
/// apply it. Throws on a missing value or an unknown level name.
void extract_log_level_flag(std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size();) {
    std::string value;
    if (args[i] == "--log-level") {
      if (i + 1 >= args.size()) {
        throw InvalidArgument("--log-level: missing value");
      }
      value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else if (util::starts_with(args[i], "--log-level=")) {
      value = args[i].substr(12);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
      continue;
    }
    if (!util::set_log_level(value)) {
      throw InvalidArgument("--log-level: expected error, warn, info, or "
                            "debug, got '" + value + "'");
    }
  }
}

/// The command router proper: global flags already stripped and applied.
int dispatch_command(const std::vector<std::string>& stripped,
                     std::size_t jobs, std::ostream& out, std::ostream& err) {
  if (stripped.empty() || stripped[0] == "--help" || stripped[0] == "-h" ||
      stripped[0] == "help") {
    out << kUsage;
    return stripped.empty() ? 2 : 0;
  }
  const std::string& command = stripped[0];
  const std::vector<std::string> rest(stripped.begin() + 1, stripped.end());

  if (command == "list") return cmd_list(rest, out);
  if (command == "version") return cmd_version(out);
  if (command == "serve") return cmd_serve(rest, jobs, out, err);
  if (command == "stats") return cmd_stats(rest, out);
  if (command == "show" || command == "export" || command == "analyze" ||
      command == "verify" || command == "ensemble" || command == "sweep" ||
      command == "check" || command == "estimate") {
    if (rest.empty() || util::starts_with(rest[0], "--")) {
      err << "glva " << command << ": missing argument\n" << kUsage;
      return 2;
    }
    const std::string target = rest[0];
    const std::vector<std::string> options(rest.begin() + 1, rest.end());
    if (command == "show") return cmd_show(target, out);
    if (command == "export") return cmd_export(target, options, out);
    if (command == "analyze") return cmd_analyze(target, options, out);
    if (command == "verify") return cmd_verify(target, options, out);
    if (command == "ensemble") return cmd_ensemble(target, options, jobs, out);
    if (command == "sweep") return cmd_sweep(target, options, jobs, out);
    if (command == "check") return cmd_check(target, options, jobs, out);
    return cmd_estimate(target, options, out);
  }
  err << "glva: unknown command '" << command << "'\n" << kUsage;
  return 2;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  // Route util::log through this invocation's error stream so embedded
  // callers (tests, the daemon) capture diagnostics alongside their own
  // stderr writes.
  struct LogSinkGuard {
    explicit LogSinkGuard(std::ostream& sink) { util::set_log_sink(&sink); }
    ~LogSinkGuard() { util::set_log_sink(nullptr); }
  } log_sink_guard(err);
  try {
    std::vector<std::string> stripped = args;
    const std::size_t jobs = extract_jobs_flag(stripped);
    extract_simd_flag(stripped);
    extract_log_level_flag(stripped);
    const std::string trace_path = extract_trace_out_flag(stripped);

    // --trace-out wraps the whole command in a trace window; the file is
    // written even when the command fails nonzero (the spans up to the
    // failure are exactly what one wants to see), but not when it throws.
    if (!trace_path.empty()) obs::trace_begin();
    int code = 0;
    try {
      code = dispatch_command(stripped, jobs, out, err);
    } catch (...) {
      if (!trace_path.empty()) {
        obs::trace_end();
        static_cast<void>(obs::drain_trace());
      }
      throw;
    }
    if (!trace_path.empty()) {
      obs::trace_end();
      obs::write_chrome_trace(trace_path, obs::drain_trace());
      util::log_info("trace written to " + trace_path);
    }
    return code;
  } catch (const Error& e) {
    err << "glva: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "glva: " << e.what() << "\n";
    return 2;
  }
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run_cli(args, out, err);
}

}  // namespace glva::app
