#pragma once

#include <ostream>
#include <string>
#include <vector>

/// The `glva` command-line tool: the D-VASim-style push-button workflow as
/// subcommands. Implemented as a library so the test suite can drive it
/// with argument vectors and captured streams.
///
/// Subcommands:
///   list                                  catalog circuits + metadata
///   show <circuit>                        structure, truth table, model stats
///   export <circuit> [--sbml p] [--sbol p] [--two-stage]
///   analyze <model.sbml> --inputs A,B --output GFP [analysis options]
///   verify <circuit> [analysis options]   catalog circuit vs intended logic
///   ensemble <circuit> [--replicates n]   replicate ensemble with
///                                         majority-vote logic + FOV stats
///                                         + 95% CIs (--ci-csv <path>)
///   sweep <circuit> [--thresholds 3,15,40] threshold-robustness sweep
///                                         (Figure 5; --redigitize ablation)
///   estimate <circuit> [--probe-level n]  threshold + propagation delay
///   serve [--listen h:p] [--unix path]    long-lived analysis daemon with
///                                         admission control + result cache
///                                         (docs/SERVE.md)
///   version                               build + SIMD tier report
///
/// Shared analysis options: --threshold, --fov-ud, --total-time,
/// --sampling-period, --seed, --method (direct|next-reaction|tau-leap),
/// --backend (packed|reference), --sink (mem|spill|digitize),
/// --spill-dir <dir>, --csv <path>, --no-timings. The sink selects trace
/// storage (in-memory trace, chunked .glvt spill files, or fused
/// sampler→ADC digitization — see docs/STORAGE.md); results are
/// bit-identical for every sink.
///
/// The analysis subcommands (analyze/verify/ensemble/sweep) parse into an
/// app::Request and run through app::execute — the same path the daemon
/// serves — so `glva serve` responses are byte-identical to CLI output.
///
/// The global `--jobs N` flag (accepted anywhere on the command line)
/// selects how many worker threads parallel workloads may use; 0 means one
/// per hardware thread. Results are bit-identical for every N.
namespace glva::app {

/// Run one invocation. `args` excludes the program name. Output goes to
/// `out`, diagnostics to `err`. Returns a process exit code (0 success,
/// 1 verification failure, 2 usage error).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// argv adapter for main().
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace glva::app
