#include "circuits/cello_circuits.h"

#include "gates/gate_library.h"
#include "gates/netlist_to_sbml.h"
#include "util/errors.h"

namespace glva::circuits {

namespace {

using gates::Net;
using gates::Netlist;

/// 2-input NOR — a single gate.
Netlist netlist_0x1() {
  Netlist nl({"A", "B"});
  const Net out = nl.add_nor("PhlF", Net::input(0), Net::input(1));
  nl.set_output(out);
  return nl;
}

/// 2-input XOR — the classic 4-NOR XNOR core plus an output inverter.
Netlist netlist_0x6() {
  Netlist nl({"A", "B"});
  const Net n1 = nl.add_nor("AmtR", Net::input(0), Net::input(1));
  const Net n2 = nl.add_nor("BetI", Net::input(0), n1);   // A' * B
  const Net n3 = nl.add_nor("BM3R1", Net::input(1), n1);  // A * B'
  const Net xnor = nl.add_nor("HlyIIR", n2, n3);          // XNOR(A, B)
  const Net out = nl.add_not("PhlF", xnor);               // XOR(A, B)
  nl.set_output(out);
  return nl;
}

/// 2-input AND = NOR(NOT A, NOT B).
Netlist netlist_0x8() {
  Netlist nl({"A", "B"});
  const Net na = nl.add_not("SrpR", Net::input(0));
  const Net nb = nl.add_not("QacR", Net::input(1));
  const Net out = nl.add_nor("PhlF", na, nb);
  nl.set_output(out);
  return nl;
}

/// 2-input OR = NOT(NOR(A, B)).
Netlist netlist_0xE() {
  Netlist nl({"A", "B"});
  const Net n1 = nl.add_nor("LmrA", Net::input(0), Net::input(1));
  const Net out = nl.add_not("PhlF", n1);
  nl.set_output(out);
  return nl;
}

/// A'·B·C' = AND(NOR(A, C), B) = NOR(NOT(NOR(A, C)), NOT(B)).
Netlist netlist_0x04() {
  Netlist nl({"A", "B", "C"});
  const Net n1 = nl.add_nor("AmtR", Net::input(0), Net::input(2));  // A'C'
  const Net n2 = nl.add_not("SrpR", n1);
  const Net n3 = nl.add_not("QacR", Net::input(1));  // B'
  const Net out = nl.add_nor("PhlF", n2, n3);        // A'·B·C'
  nl.set_output(out);
  return nl;
}

/// C·(A' + B) = NOR(NOR(NOT A, B), NOT C). High at {001, 011, 111} —
/// satisfies the paper's constraints on 0x0B: 011 high, 100 low (so the
/// sweep's 011→100 transition leaves the decay tail Filter 2 rejects),
/// 000 low and 111 high (the threshold-3 collapse keeps a conjunctive
/// behaviour).
Netlist netlist_0x0B() {
  Netlist nl({"A", "B", "C"});
  const Net na = nl.add_not("SrpR", Net::input(0));            // A'
  const Net g2 = nl.add_nor("BM3R1", na, Net::input(1));       // A·B'
  const Net nc = nl.add_not("PhlF", Net::input(2));            // C'
  const Net out = nl.add_nor("HlyIIR", g2, nc);                // C·(A'+B)
  nl.set_output(out);
  return nl;
}

/// (A XOR B)·C' = NOR(XNOR(A, B), C).
Netlist netlist_0x14() {
  Netlist nl({"A", "B", "C"});
  const Net n1 = nl.add_nor("AmtR", Net::input(0), Net::input(1));
  const Net n2 = nl.add_nor("BetI", Net::input(0), n1);
  const Net n3 = nl.add_nor("BM3R1", Net::input(1), n1);
  const Net xnor = nl.add_nor("HlyIIR", n2, n3);
  const Net out = nl.add_nor("PhlF", xnor, Net::input(2));
  nl.set_output(out);
  return nl;
}

/// Minority(A, B, C) = NOR(A,B) + NOR(A,C) + NOR(B,C), built as
/// NOT(NOR(OR(t1, t2), t3)) — seven gates, the catalog's largest circuit.
Netlist netlist_0x17() {
  Netlist nl({"A", "B", "C"});
  const Net t1 = nl.add_nor("AmtR", Net::input(0), Net::input(1));
  const Net t2 = nl.add_nor("BetI", Net::input(0), Net::input(2));
  const Net t3 = nl.add_nor("BM3R1", Net::input(1), Net::input(2));
  const Net u = nl.add_nor("HlyIIR", t1, t2);  // (t1 + t2)'
  const Net v = nl.add_not("SrpR", u);         // t1 + t2
  const Net w = nl.add_nor("QacR", v, t3);     // (t1 + t2 + t3)'
  const Net out = nl.add_not("PhlF", w);       // minority
  nl.set_output(out);
  return nl;
}

/// A'·(B + C) = NOR(A, NOR(B, C)).
Netlist netlist_0x1C() {
  Netlist nl({"A", "B", "C"});
  const Net n1 = nl.add_nor("LitR", Net::input(1), Net::input(2));
  const Net out = nl.add_nor("PhlF", Net::input(0), n1);
  nl.set_output(out);
  return nl;
}

/// AND3 = NOR(NOT A, NOT(AND(B, C))).
Netlist netlist_0x80() {
  Netlist nl({"A", "B", "C"});
  const Net na = nl.add_not("AmtR", Net::input(0));
  const Net nb = nl.add_not("BetI", Net::input(1));
  const Net nc = nl.add_not("BM3R1", Net::input(2));
  const Net bc = nl.add_nor("HlyIIR", nb, nc);  // B·C
  const Net nbc = nl.add_not("SrpR", bc);       // (B·C)'
  const Net out = nl.add_nor("PhlF", na, nbc);  // A·B·C
  nl.set_output(out);
  return nl;
}

struct CatalogEntry {
  const char* name;
  const char* description;
  Netlist (*build)();
};

const CatalogEntry kCatalog[] = {
    {"0x1", "2-input NOR (single tandem-repressed promoter)", netlist_0x1},
    {"0x6", "2-input XOR (4-NOR XNOR core plus inverter)", netlist_0x6},
    {"0x8", "2-input AND", netlist_0x8},
    {"0xE", "2-input OR", netlist_0xE},
    {"0x04", "A'*B*C' single-minterm decoder", netlist_0x04},
    {"0x0B", "C*(A'+B) (paper Figure 4/5 subject)", netlist_0x0B},
    {"0x14", "(A xor B)*C'", netlist_0x14},
    {"0x17", "3-input minority", netlist_0x17},
    {"0x1C", "A'*(B+C)", netlist_0x1C},
    {"0x80", "3-input AND", netlist_0x80},
};

}  // namespace

std::vector<std::string> cello_circuit_names() {
  std::vector<std::string> names;
  for (const auto& entry : kCatalog) names.emplace_back(entry.name);
  return names;
}

gates::Netlist cello_netlist(const std::string& name) {
  for (const auto& entry : kCatalog) {
    if (name == entry.name) return entry.build();
  }
  throw InvalidArgument("unknown Cello-style circuit '" + name + "'");
}

CircuitSpec build_cello_circuit(const std::string& name, bool two_stage) {
  const CatalogEntry* entry = nullptr;
  for (const auto& e : kCatalog) {
    if (name == e.name) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    throw InvalidArgument("unknown Cello-style circuit '" + name + "'");
  }

  const Netlist netlist = entry->build();
  CircuitSpec spec;
  spec.name = name;
  spec.description = entry->description;
  spec.source = "Cello-style reconstruction (after Nielsen et al. 2016)";
  spec.input_ids = netlist.input_names();
  spec.output_id = "GFP";
  spec.expected = netlist.ideal_truth_table();
  spec.gate_count = netlist.gate_count();
  spec.parts = netlist.parts_summary();

  gates::ModelOptions options;
  options.model_id = "cello_" +
                     // SIds cannot contain 'x' prefix issues; strip "0x".
                     (name.size() > 2 ? name.substr(2) : name);
  options.reporter_id = "GFP";
  options.two_stage = two_stage;
  spec.model = gates::netlist_to_model(netlist, gates::GateLibrary::standard(),
                                       options);
  return spec;
}

}  // namespace glva::circuits
