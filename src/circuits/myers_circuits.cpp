#include "circuits/myers_circuits.h"

#include "util/errors.h"

namespace glva::circuits {

namespace {

/// Shared promoter kinetics for the book circuits (plateau 60 molecules,
/// leak floor 1.2, repression half-point 8, cooperativity 2.5, protein
/// half-life ~69 time units).
struct PromoterParams {
  double y_max = 1.2;
  double y_min = 0.016;
  double hill_k = 5.0;   // well below the 15-molecule input level
  double hill_n = 3.5;
  double decay = 0.02;   // plateau 60 molecules, fall-to-threshold ~70 tu
};

/// Add the `prefix`_{ymax,ymin,K,n} parameters and return the repressed
/// Hill response "ymin + (ymax-ymin) * (1 - hill(x, K, n))".
std::string add_promoter(sbml::Model& model, const std::string& prefix,
                         const std::string& repressor_sum,
                         const PromoterParams& p) {
  model.add_parameter(prefix + "_ymax", p.y_max);
  model.add_parameter(prefix + "_ymin", p.y_min);
  model.add_parameter(prefix + "_K", p.hill_k);
  model.add_parameter(prefix + "_n", p.hill_n);
  return prefix + "_ymin + (" + prefix + "_ymax - " + prefix +
         "_ymin) * (1 - hill(" + repressor_sum + ", " + prefix + "_K, " +
         prefix + "_n))";
}

void add_decay(sbml::Model& model, const std::string& species,
               const std::string& rate_id, double rate) {
  model.add_parameter(rate_id, rate);
  model.add_reaction(species + "_deg", {{species, 1.0}}, {},
                     rate_id + " * " + species);
}

CircuitSpec make_not() {
  CircuitSpec spec;
  spec.name = "myers_not";
  spec.description = "genetic inverter: TetR represses the GFP promoter";
  spec.source = "Myers, Engineering Genetic Circuits (2009)";
  spec.input_ids = {"TetR"};
  spec.output_id = "GFP";
  spec.expected = logic::TruthTable::not_gate();
  spec.gate_count = 1;
  spec.parts = gates::PartsSummary{1, 1, 1, 1};

  sbml::Model m;
  m.id = "myers_not";
  m.name = "genetic NOT gate";
  m.add_compartment("cell");
  m.add_species("TetR", 0.0, true);
  m.add_species("GFP", 0.0);
  const PromoterParams p;
  m.add_reaction("GFP_prod", {}, {{"GFP", 1.0}},
                 add_promoter(m, "P1", "TetR", p),
                 {sbml::ModifierReference{"TetR"}});
  add_decay(m, "GFP", "GFP_delta", p.decay);
  spec.model = std::move(m);
  return spec;
}

CircuitSpec make_and() {
  CircuitSpec spec;
  spec.name = "myers_and";
  spec.description =
      "Figure 1 AND gate: LacI -| P1, TetR -| P2, P1+P2 -> CI, CI -| P3 -> GFP";
  spec.source = "Myers (2009); paper Figure 1 via Roehner et al. [14]";
  spec.input_ids = {"LacI", "TetR"};
  spec.output_id = "GFP";
  spec.expected = logic::TruthTable::and_gate(2);
  spec.gate_count = 3;
  spec.parts = gates::PartsSummary{3, 2, 2, 2};

  sbml::Model m;
  m.id = "myers_and";
  m.name = "genetic AND gate (Figure 1)";
  m.add_compartment("cell");
  m.add_species("LacI", 0.0, true);
  m.add_species("TetR", 0.0, true);
  m.add_species("CI", 0.0);
  m.add_species("GFP", 0.0);

  PromoterParams p;
  // CI is transcribed from both promoters; its production is the sum of
  // the two repressed activities (tandem transcription units).
  const std::string p1 = add_promoter(m, "P1", "LacI", p);
  const std::string p2 = add_promoter(m, "P2", "TetR", p);
  m.add_reaction("CI_prod", {}, {{"CI", 1.0}}, p1 + " + " + p2,
                 {sbml::ModifierReference{"LacI"},
                  sbml::ModifierReference{"TetR"}});
  add_decay(m, "CI", "CI_delta", p.decay);

  // P3 must stay repressed while either upstream promoter is active
  // (CI plateau ~60–120), and open at the CI floor (~1.6): half-point 20.
  // The raised y_max makes GFP outrun CI during start-up, reproducing the
  // paper's Figure 2 initial-high transient at combination 00 ("the output
  // of some genetic circuit models is initially high which gradually
  // reduces to zero") — the transient that tricks unfiltered extraction
  // into reading XNOR.
  PromoterParams p3 = p;
  p3.hill_k = 20.0;
  p3.y_max = 1.8;
  m.add_reaction("GFP_prod", {}, {{"GFP", 1.0}}, add_promoter(m, "P3", "CI", p3),
                 {sbml::ModifierReference{"CI"}});
  add_decay(m, "GFP", "GFP_delta", p.decay);
  spec.model = std::move(m);
  return spec;
}

CircuitSpec make_nand() {
  CircuitSpec spec;
  spec.name = "myers_nand";
  spec.description =
      "genetic NAND: two parallel promoters (LacI -| P1, TetR -| P2) drive GFP";
  spec.source = "Myers, Engineering Genetic Circuits (2009)";
  spec.input_ids = {"LacI", "TetR"};
  spec.output_id = "GFP";
  spec.expected = logic::TruthTable::nand_gate(2);
  spec.gate_count = 2;
  spec.parts = gates::PartsSummary{2, 1, 1, 1};

  sbml::Model m;
  m.id = "myers_nand";
  m.name = "genetic NAND gate";
  m.add_compartment("cell");
  m.add_species("LacI", 0.0, true);
  m.add_species("TetR", 0.0, true);
  m.add_species("GFP", 0.0);
  const PromoterParams p;
  const std::string p1 = add_promoter(m, "P1", "LacI", p);
  const std::string p2 = add_promoter(m, "P2", "TetR", p);
  m.add_reaction("GFP_prod", {}, {{"GFP", 1.0}}, p1 + " + " + p2,
                 {sbml::ModifierReference{"LacI"},
                  sbml::ModifierReference{"TetR"}});
  add_decay(m, "GFP", "GFP_delta", p.decay);
  spec.model = std::move(m);
  return spec;
}

CircuitSpec make_or() {
  CircuitSpec spec;
  spec.name = "myers_or";
  spec.description =
      "genetic OR: (LacI+TetR) -| P1 -> CI (a NOR), CI -| P2 -> GFP";
  spec.source = "Myers, Engineering Genetic Circuits (2009)";
  spec.input_ids = {"LacI", "TetR"};
  spec.output_id = "GFP";
  spec.expected = logic::TruthTable::or_gate(2);
  spec.gate_count = 2;
  spec.parts = gates::PartsSummary{2, 2, 2, 2};

  sbml::Model m;
  m.id = "myers_or";
  m.name = "genetic OR gate";
  m.add_compartment("cell");
  m.add_species("LacI", 0.0, true);
  m.add_species("TetR", 0.0, true);
  m.add_species("CI", 0.0);
  m.add_species("GFP", 0.0);
  PromoterParams p;
  m.add_reaction("CI_prod", {}, {{"CI", 1.0}},
                 add_promoter(m, "P1", "LacI + TetR", p),
                 {sbml::ModifierReference{"LacI"},
                  sbml::ModifierReference{"TetR"}});
  add_decay(m, "CI", "CI_delta", p.decay);
  PromoterParams p2 = p;
  p2.hill_k = 20.0;  // CI plateau 60 vs floor 1.2
  m.add_reaction("GFP_prod", {}, {{"GFP", 1.0}}, add_promoter(m, "P2", "CI", p2),
                 {sbml::ModifierReference{"CI"}});
  add_decay(m, "GFP", "GFP_delta", p.decay);
  spec.model = std::move(m);
  return spec;
}

CircuitSpec make_nor() {
  CircuitSpec spec;
  spec.name = "myers_nor";
  spec.description = "genetic NOR: (LacI+TetR) -| P1 -> GFP";
  spec.source = "Myers, Engineering Genetic Circuits (2009)";
  spec.input_ids = {"LacI", "TetR"};
  spec.output_id = "GFP";
  spec.expected = logic::TruthTable::nor_gate(2);
  spec.gate_count = 1;
  spec.parts = gates::PartsSummary{1, 1, 1, 1};

  sbml::Model m;
  m.id = "myers_nor";
  m.name = "genetic NOR gate";
  m.add_compartment("cell");
  m.add_species("LacI", 0.0, true);
  m.add_species("TetR", 0.0, true);
  m.add_species("GFP", 0.0);
  const PromoterParams p;
  m.add_reaction("GFP_prod", {}, {{"GFP", 1.0}},
                 add_promoter(m, "P1", "LacI + TetR", p),
                 {sbml::ModifierReference{"LacI"},
                  sbml::ModifierReference{"TetR"}});
  add_decay(m, "GFP", "GFP_delta", p.decay);
  spec.model = std::move(m);
  return spec;
}

}  // namespace

std::vector<std::string> myers_circuit_names() {
  return {"myers_not", "myers_and", "myers_nand", "myers_or", "myers_nor"};
}

CircuitSpec build_myers_circuit(const std::string& name) {
  if (name == "myers_not") return make_not();
  if (name == "myers_and") return make_and();
  if (name == "myers_nand") return make_nand();
  if (name == "myers_or") return make_or();
  if (name == "myers_nor") return make_nor();
  throw InvalidArgument("unknown Myers circuit '" + name + "'");
}

}  // namespace glva::circuits
