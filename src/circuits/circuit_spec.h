#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gates/netlist.h"
#include "logic/truth_table.h"
#include "sbml/model.h"

namespace glva::circuits {

/// One benchmark circuit: the behavioural SBML model plus the metadata the
/// experiments need (I/O species, expected logic, provenance).
struct CircuitSpec {
  std::string name;          ///< catalog name ("0x0B", "myers_and", ...)
  std::string description;   ///< one-line summary
  std::string source;        ///< provenance ("Myers 2009" / "Cello-style")
  std::vector<std::string> input_ids;  ///< input species, MSB first
  std::string output_id;     ///< reporter species ("GFP")
  logic::TruthTable expected;  ///< intended Boolean function
  sbml::Model model;         ///< simulatable behavioural model
  std::size_t gate_count = 0;
  gates::PartsSummary parts;  ///< structural component counts
};

}  // namespace glva::circuits
