#include "circuits/circuit_repository.h"

#include "circuits/cello_circuits.h"
#include "circuits/myers_circuits.h"
#include "util/string_util.h"

namespace glva::circuits {

std::vector<std::string> CircuitRepository::names() {
  std::vector<std::string> all = myers_circuit_names();
  for (auto& name : cello_circuit_names()) all.push_back(name);
  return all;
}

bool CircuitRepository::is_myers(const std::string& name) {
  return util::starts_with(name, "myers_");
}

CircuitSpec CircuitRepository::build(const std::string& name, bool two_stage) {
  if (is_myers(name)) return build_myers_circuit(name);
  return build_cello_circuit(name, two_stage);
}

std::vector<CircuitSpec> CircuitRepository::build_all(bool two_stage) {
  std::vector<CircuitSpec> specs;
  for (const auto& name : names()) {
    specs.push_back(build(name, two_stage));
  }
  return specs;
}

}  // namespace glva::circuits
