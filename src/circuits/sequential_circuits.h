#pragma once

#include "sbml/model.h"

/// Sequential/dynamic genetic circuits from the Myers book, *outside* the
/// paper's 15-circuit combinational benchmark. The DATE'17 algorithm
/// assumes combinational behaviour; these models let GLVA demonstrate what
/// its outputs look like when that assumption breaks (state-holding and
/// oscillation), and how PFoBE/the stability filter flag it.
namespace glva::circuits {

/// The Gardner–Collins genetic toggle switch: two mutually repressing
/// repressors U and V, with external set/reset inducers that force one
/// side down, and GFP reading out the U side. An SR-latch: its "logic"
/// depends on input history, so sweep order changes what the analyzer
/// extracts.
///
/// Species: S_set, S_reset (boundary inputs), U, V, GFP.
[[nodiscard]] sbml::Model toggle_switch_model();

/// The Elowitz–Leibler repressilator: a three-repressor ring oscillator
/// (TetR ⊣ LacI ⊣ CI ⊣ TetR) with GFP tracking one node. Its output never
/// settles, so every input case is oscillatory and the variation filter
/// rejects it — the PFoBE drops far below the combinational circuits'.
/// A single dummy boundary input is included so the sweep machinery runs.
[[nodiscard]] sbml::Model repressilator_model();

}  // namespace glva::circuits
