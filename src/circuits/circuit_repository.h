#pragma once

#include <string>
#include <vector>

#include "circuits/circuit_spec.h"

/// Unified access to the paper's 15-circuit benchmark set: 5 Myers-book
/// behavioural models and 10 Cello-style gate circuits (Section III).
namespace glva::circuits {

class CircuitRepository {
public:
  /// All 15 catalog names, Myers circuits first.
  [[nodiscard]] static std::vector<std::string> names();

  /// Build one circuit by catalog name. `two_stage` selects the
  /// transcription+translation expansion for the netlist-generated
  /// circuits (Myers models are always single-stage, as in the book).
  [[nodiscard]] static CircuitSpec build(const std::string& name,
                                         bool two_stage = false);

  /// Build the full benchmark set.
  [[nodiscard]] static std::vector<CircuitSpec> build_all(bool two_stage = false);

  [[nodiscard]] static bool is_myers(const std::string& name);
};

}  // namespace glva::circuits
