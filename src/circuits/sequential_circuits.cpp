#include "circuits/sequential_circuits.h"

namespace glva::circuits {

sbml::Model toggle_switch_model() {
  sbml::Model m;
  m.id = "toggle_switch";
  m.name = "Gardner-Collins genetic toggle switch (SR latch)";
  m.add_compartment("cell");

  m.add_species("S_set", 0.0, /*boundary=*/true);    // forces U down
  m.add_species("S_reset", 0.0, /*boundary=*/true);  // forces V down
  m.add_species("U", 40.0);  // start latched on the U side
  m.add_species("V", 0.0);
  m.add_species("GFP", 0.0);

  m.add_parameter("beta", 1.2);
  m.add_parameter("leak", 0.012);
  m.add_parameter("K", 5.0);
  m.add_parameter("n", 3.0);
  m.add_parameter("delta", 0.02);
  // Inducer-enhanced degradation: a present inducer strips its target.
  m.add_parameter("kind", 0.02);

  // U repressed by V; V repressed by U (the bistable core).
  m.add_reaction("U_prod", {}, {{"U", 1.0}},
                 "leak + (beta - leak) * (1 - hill(V, K, n))",
                 {sbml::ModifierReference{"V"}});
  m.add_reaction("U_deg", {{"U", 1.0}}, {}, "delta * U");
  m.add_reaction("U_induced_deg", {{"U", 1.0}}, {}, "kind * S_set * U",
                 {sbml::ModifierReference{"S_set"}});

  m.add_reaction("V_prod", {}, {{"V", 1.0}},
                 "leak + (beta - leak) * (1 - hill(U, K, n))",
                 {sbml::ModifierReference{"U"}});
  m.add_reaction("V_deg", {{"V", 1.0}}, {}, "delta * V");
  m.add_reaction("V_induced_deg", {{"V", 1.0}}, {}, "kind * S_reset * V",
                 {sbml::ModifierReference{"S_reset"}});

  // GFP reads out the U side (same promoter as U: repressed by V).
  m.add_reaction("GFP_prod", {}, {{"GFP", 1.0}},
                 "leak + (beta - leak) * (1 - hill(V, K, n))",
                 {sbml::ModifierReference{"V"}});
  m.add_reaction("GFP_deg", {{"GFP", 1.0}}, {}, "delta * GFP");
  return m;
}

sbml::Model repressilator_model() {
  sbml::Model m;
  m.id = "repressilator";
  m.name = "Elowitz-Leibler repressilator (ring oscillator)";
  m.add_compartment("cell");

  m.add_species("dummy_in", 0.0, /*boundary=*/true);
  m.add_species("TetR", 30.0);  // asymmetric start kicks the oscillation
  m.add_species("LacI", 0.0);
  m.add_species("CI", 0.0);
  m.add_species("GFP", 0.0);

  m.add_parameter("beta", 1.2);
  m.add_parameter("leak", 0.012);
  m.add_parameter("K", 5.0);
  m.add_parameter("n", 2.5);
  m.add_parameter("delta", 0.02);

  const auto ring = [&](const char* product, const char* repressor) {
    const std::string p(product);
    m.add_reaction(p + "_prod", {}, {{p, 1.0}},
                   "leak + (beta - leak) * (1 - hill(" + std::string(repressor) +
                       ", K, n))",
                   {sbml::ModifierReference{repressor}});
    m.add_reaction(p + "_deg", {{p, 1.0}}, {}, "delta * " + p);
  };
  ring("LacI", "TetR");
  ring("CI", "LacI");
  ring("TetR", "CI");
  // GFP under the same promoter as LacI (repressed by TetR).
  ring("GFP", "TetR");
  return m;
}

}  // namespace glva::circuits
