#pragma once

#include <string>
#include <vector>

#include "circuits/circuit_spec.h"
#include "gates/netlist.h"

/// The ten Cello-style circuits (after Nielsen et al., Science 2016). Each
/// is a NOT/NOR gate netlist over the standard repressor library, compiled
/// to behavioural SBML — GLVA's reconstruction of the paper's
/// SBOL→SBML-converted real circuits. Circuit IDs are inherited as catalog
/// labels; the intended function of each is fixed by the catalog (see
/// docs/ARCHITECTURE.md, "The benchmark circuits", for the reconstruction
/// rationale, including the behavioural constraints the paper states for
/// 0x0B).
namespace glva::circuits {

/// Names: 2-input "0x1", "0x6", "0x8", "0xE"; 3-input "0x04", "0x0B",
/// "0x14", "0x17", "0x1C", "0x80".
[[nodiscard]] std::vector<std::string> cello_circuit_names();

/// The gate netlist of one catalog circuit (inputs A, B[, C]).
[[nodiscard]] gates::Netlist cello_netlist(const std::string& name);

/// Build the full spec (netlist compiled to SBML with the standard gate
/// library). `two_stage` selects the transcription+translation expansion.
[[nodiscard]] CircuitSpec build_cello_circuit(const std::string& name,
                                              bool two_stage = false);

}  // namespace glva::circuits
