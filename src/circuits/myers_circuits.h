#pragma once

#include <string>
#include <vector>

#include "circuits/circuit_spec.h"

/// The five textbook circuits (Chris Myers, *Engineering Genetic Circuits*,
/// 2009) the paper draws its first model set from. These are hand-written
/// behavioural SBML models — not netlist-generated — mirroring how the
/// book's models describe promoter activity directly with Hill kinetics.
///
/// `myers_and` is the paper's Figure 1 circuit: promoters P1 and P2
/// (repressed by LacI and TetR respectively) both transcribe the repressor
/// CI; promoter P3, repressed by CI, drives GFP. GFP is high only when
/// both LacI and TetR are present.
namespace glva::circuits {

/// Names: "myers_not", "myers_and", "myers_nand", "myers_or", "myers_nor".
[[nodiscard]] std::vector<std::string> myers_circuit_names();

/// Build one of the book circuits; throws glva::InvalidArgument for an
/// unknown name.
[[nodiscard]] CircuitSpec build_myers_circuit(const std::string& name);

}  // namespace glva::circuits
