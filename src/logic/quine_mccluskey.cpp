#include "logic/quine_mccluskey.h"

#include <algorithm>
#include <bit>
#include <set>

#include "util/errors.h"

namespace glva::logic {

namespace {

/// An implicant in combination-index space: covers every combination c with
/// (c & ~dashes) == value. `dashes` marks the eliminated variables.
struct Implicant {
  std::uint32_t value = 0;
  std::uint32_t dashes = 0;

  [[nodiscard]] bool covers(std::uint32_t combination) const noexcept {
    return (combination & ~dashes) == value;
  }
  [[nodiscard]] auto operator<=>(const Implicant&) const = default;
};

/// Convert a combination-space implicant to a variable-indexed Cube
/// (variable i is the MSB-first input i, i.e. combination bit n-1-i).
Cube to_cube(const Implicant& imp, std::size_t n) {
  Cube cube;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t combo_bit = 1U << (n - 1 - i);
    if ((imp.dashes & combo_bit) == 0) {
      cube.mask |= (1U << i);
      if (imp.value & combo_bit) cube.polarity |= (1U << i);
    }
  }
  return cube;
}

/// Branch-and-bound minimum cover: pick the uncovered minterm with the
/// fewest candidate primes and branch on its candidates. Cost is the cube
/// count with literal count as tie-break.
struct CoverSearch {
  const std::vector<Implicant>& primes;
  const std::vector<std::uint32_t>& minterms;
  std::size_t n = 0;

  std::vector<std::size_t> best;
  std::size_t best_literals = 0;
  bool have_best = false;

  [[nodiscard]] std::size_t literals_of(const std::vector<std::size_t>& chosen) const {
    std::size_t total = 0;
    for (std::size_t p : chosen) {
      total += n - static_cast<std::size_t>(std::popcount(primes[p].dashes));
    }
    return total;
  }

  void search(std::vector<std::size_t>& chosen, std::vector<bool>& covered,
              std::size_t covered_count) {
    if (have_best && chosen.size() >= best.size()) {
      // Equal size can still win on literals only when fully covered now.
      if (chosen.size() > best.size() || covered_count < minterms.size()) return;
    }
    if (covered_count == minterms.size()) {
      const std::size_t lits = literals_of(chosen);
      if (!have_best || chosen.size() < best.size() ||
          (chosen.size() == best.size() && lits < best_literals)) {
        best = chosen;
        best_literals = lits;
        have_best = true;
      }
      return;
    }
    // Most-constrained uncovered minterm.
    std::size_t pick = minterms.size();
    std::size_t pick_options = primes.size() + 1;
    for (std::size_t m = 0; m < minterms.size(); ++m) {
      if (covered[m]) continue;
      std::size_t options = 0;
      for (const auto& prime : primes) {
        if (prime.covers(minterms[m])) ++options;
      }
      if (options < pick_options) {
        pick_options = options;
        pick = m;
      }
    }
    if (pick == minterms.size() || pick_options == 0) return;  // uncoverable

    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (!primes[p].covers(minterms[pick])) continue;
      std::vector<std::size_t> newly;
      for (std::size_t m = 0; m < minterms.size(); ++m) {
        if (!covered[m] && primes[p].covers(minterms[m])) {
          covered[m] = true;
          newly.push_back(m);
        }
      }
      chosen.push_back(p);
      search(chosen, covered, covered_count + newly.size());
      chosen.pop_back();
      for (std::size_t m : newly) covered[m] = false;
    }
  }
};

std::vector<Implicant> compute_primes(std::size_t n,
                                      const std::vector<std::uint32_t>& ones) {
  std::set<Implicant> current;
  for (std::uint32_t c : ones) current.insert(Implicant{c, 0});

  std::vector<Implicant> primes;
  while (!current.empty()) {
    std::set<Implicant> next;
    std::set<Implicant> combined;
    const std::vector<Implicant> list(current.begin(), current.end());
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        if (list[i].dashes != list[j].dashes) continue;
        const std::uint32_t diff = list[i].value ^ list[j].value;
        if (std::popcount(diff) != 1) continue;
        next.insert(Implicant{list[i].value & ~diff, list[i].dashes | diff});
        combined.insert(list[i]);
        combined.insert(list[j]);
      }
    }
    for (const auto& imp : list) {
      if (combined.count(imp) == 0) primes.push_back(imp);
    }
    current = std::move(next);
  }
  (void)n;
  return primes;
}

}  // namespace

std::vector<Cube> prime_implicants(const TruthTable& table,
                                   const std::vector<std::size_t>& dont_cares) {
  const std::size_t n = table.input_count();
  std::set<std::uint32_t> ones_set;
  for (std::size_t m : table.minterms()) {
    ones_set.insert(static_cast<std::uint32_t>(m));
  }
  for (std::size_t d : dont_cares) {
    if (d >= table.row_count()) {
      throw InvalidArgument("prime_implicants: don't-care out of range");
    }
    ones_set.insert(static_cast<std::uint32_t>(d));
  }
  const std::vector<std::uint32_t> ones(ones_set.begin(), ones_set.end());
  std::vector<Cube> cubes;
  for (const auto& imp : compute_primes(n, ones)) {
    cubes.push_back(to_cube(imp, n));
  }
  return cubes;
}

SopExpr minimize(const TruthTable& table, std::vector<std::string> input_names,
                 const std::vector<std::size_t>& dont_cares) {
  const std::size_t n = table.input_count();
  SopExpr expr(n, std::move(input_names));

  std::set<std::uint32_t> dc_set;
  for (std::size_t d : dont_cares) {
    if (d >= table.row_count()) {
      throw InvalidArgument("minimize: don't-care out of range");
    }
    dc_set.insert(static_cast<std::uint32_t>(d));
  }
  std::vector<std::uint32_t> required;
  std::set<std::uint32_t> ones_set(dc_set);
  for (std::size_t m : table.minterms()) {
    const auto c = static_cast<std::uint32_t>(m);
    if (dc_set.count(c) == 0) required.push_back(c);
    ones_set.insert(c);
  }
  if (required.empty()) return expr;  // constant 0 (dont-cares default low)

  const std::vector<std::uint32_t> ones(ones_set.begin(), ones_set.end());
  const std::vector<Implicant> primes = compute_primes(n, ones);

  CoverSearch searcher{primes, required, n, {}, 0, false};
  std::vector<std::size_t> chosen;
  std::vector<bool> covered(required.size(), false);
  searcher.search(chosen, covered, 0);
  if (!searcher.have_best) {
    throw InvalidArgument("minimize: internal cover failure");
  }
  std::vector<std::size_t> picked = searcher.best;
  std::sort(picked.begin(), picked.end());
  for (std::size_t p : picked) expr.add_cube(to_cube(primes[p], n));
  return expr;
}

}  // namespace glva::logic
