#include "logic/truth_table.h"

#include <bit>

#include "util/errors.h"

namespace glva::logic {

TruthTable::TruthTable(std::size_t input_count) : input_count_(input_count) {
  if (input_count == 0 || input_count > 16) {
    throw InvalidArgument("TruthTable supports 1..16 inputs, got " +
                          std::to_string(input_count));
  }
  outputs_ = BitStream(row_count());
}

TruthTable TruthTable::from_minterms(std::size_t input_count,
                                     const std::vector<std::size_t>& minterms) {
  TruthTable table(input_count);
  for (std::size_t m : minterms) table.set_output(m, true);
  return table;
}

TruthTable TruthTable::from_bits(std::size_t input_count, std::uint64_t bits) {
  TruthTable table(input_count);
  for (std::size_t i = 0; i < table.row_count() && i < 64; ++i) {
    table.set_output(i, ((bits >> i) & 1U) != 0);
  }
  return table;
}

bool TruthTable::output(std::size_t combination) const {
  if (combination >= outputs_.size()) {
    throw InvalidArgument("TruthTable: combination out of range");
  }
  return outputs_[combination];
}

void TruthTable::set_output(std::size_t combination, bool value) {
  if (combination >= outputs_.size()) {
    throw InvalidArgument("TruthTable: combination out of range");
  }
  outputs_.set(combination, value);
}

std::vector<std::size_t> TruthTable::minterms() const {
  std::vector<std::size_t> out;
  out.reserve(minterm_count());
  for (std::size_t w = 0; w < outputs_.word_count(); ++w) {
    std::uint64_t word = outputs_.word(w);
    while (word != 0) {
      out.push_back(w * BitStream::kWordBits +
                    static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
  return out;
}

std::uint64_t TruthTable::to_bits() const {
  if (input_count_ > 6) {
    throw InvalidArgument("TruthTable::to_bits requires <= 6 inputs");
  }
  // <= 6 inputs means <= 64 rows, all in word 0 (the tail invariant keeps
  // the unused high bits zero).
  return outputs_.word(0);
}

std::string TruthTable::combination_label(std::size_t combination) const {
  std::string label(input_count_, '0');
  for (std::size_t bit = 0; bit < input_count_; ++bit) {
    if ((combination >> (input_count_ - 1 - bit)) & 1U) label[bit] = '1';
  }
  return label;
}

std::string TruthTable::to_string(const std::vector<std::string>& input_names,
                                  const std::string& output_name) const {
  std::string out;
  for (std::size_t i = 0; i < input_count_; ++i) {
    out += i < input_names.size() ? input_names[i] : "?";
    out += ' ';
  }
  out += "| ";
  out += output_name;
  out += '\n';
  for (std::size_t c = 0; c < row_count(); ++c) {
    const std::string label = combination_label(c);
    for (std::size_t i = 0; i < input_count_; ++i) {
      const std::size_t width = i < input_names.size() ? input_names[i].size() : 1;
      out += label[i];
      out.append(width > 0 ? width - 1 : 0, ' ');
      out += ' ';
    }
    out += "| ";
    out += outputs_[c] ? '1' : '0';
    out += '\n';
  }
  return out;
}

std::vector<std::size_t> TruthTable::differing_rows(const TruthTable& other) const {
  if (other.input_count_ != input_count_) {
    throw InvalidArgument("differing_rows: input counts differ");
  }
  std::vector<std::size_t> rows;
  for (std::size_t w = 0; w < outputs_.word_count(); ++w) {
    std::uint64_t diff = outputs_.word(w) ^ other.outputs_.word(w);
    while (diff != 0) {
      rows.push_back(w * BitStream::kWordBits +
                     static_cast<std::size_t>(std::countr_zero(diff)));
      diff &= diff - 1;
    }
  }
  return rows;
}

TruthTable TruthTable::and_gate(std::size_t inputs) {
  TruthTable t(inputs);
  t.set_output(t.row_count() - 1, true);
  return t;
}

TruthTable TruthTable::or_gate(std::size_t inputs) {
  TruthTable t(inputs);
  for (std::size_t c = 1; c < t.row_count(); ++c) t.set_output(c, true);
  return t;
}

TruthTable TruthTable::nand_gate(std::size_t inputs) {
  TruthTable t(inputs);
  for (std::size_t c = 0; c + 1 < t.row_count(); ++c) t.set_output(c, true);
  return t;
}

TruthTable TruthTable::nor_gate(std::size_t inputs) {
  TruthTable t(inputs);
  t.set_output(0, true);
  return t;
}

TruthTable TruthTable::xor_gate(std::size_t inputs) {
  TruthTable t(inputs);
  for (std::size_t c = 0; c < t.row_count(); ++c) {
    t.set_output(c, (std::popcount(c) % 2) == 1);
  }
  return t;
}

TruthTable TruthTable::xnor_gate(std::size_t inputs) {
  TruthTable t(inputs);
  for (std::size_t c = 0; c < t.row_count(); ++c) {
    t.set_output(c, (std::popcount(c) % 2) == 0);
  }
  return t;
}

TruthTable TruthTable::not_gate() {
  TruthTable t(1);
  t.set_output(0, true);
  return t;
}

TruthTable TruthTable::majority(std::size_t inputs) {
  TruthTable t(inputs);
  for (std::size_t c = 0; c < t.row_count(); ++c) {
    t.set_output(c, 2 * static_cast<std::size_t>(std::popcount(c)) > inputs);
  }
  return t;
}

TruthTable TruthTable::minority(std::size_t inputs) {
  TruthTable t(inputs);
  for (std::size_t c = 0; c < t.row_count(); ++c) {
    t.set_output(c, 2 * static_cast<std::size_t>(std::popcount(c)) <= inputs &&
                        !(2 * static_cast<std::size_t>(std::popcount(c)) == inputs));
  }
  return t;
}

}  // namespace glva::logic
