#include "logic/bool_expr.h"

#include <bit>

#include "util/errors.h"

namespace glva::logic {

bool Cube::covers(std::size_t combination, std::size_t input_count) const noexcept {
  // Combination bit for variable i (i = 0 is the MSB of the label).
  std::uint32_t value_bits = 0;
  for (std::size_t i = 0; i < input_count; ++i) {
    if ((combination >> (input_count - 1 - i)) & 1U) {
      value_bits |= (1U << i);
    }
  }
  return (value_bits & mask) == (polarity & mask);
}

std::size_t Cube::literal_count() const noexcept {
  return static_cast<std::size_t>(std::popcount(mask));
}

SopExpr::SopExpr(std::size_t input_count, std::vector<std::string> input_names)
    : input_count_(input_count), input_names_(std::move(input_names)) {
  if (input_count == 0 || input_count > 32) {
    throw InvalidArgument("SopExpr supports 1..32 inputs");
  }
  if (input_names_.size() != input_count_) {
    throw InvalidArgument("SopExpr: name count does not match input count");
  }
}

SopExpr SopExpr::canonical(const TruthTable& table,
                           std::vector<std::string> input_names) {
  SopExpr expr(table.input_count(), std::move(input_names));
  const auto n = table.input_count();
  for (std::size_t m : table.minterms()) {
    Cube cube;
    cube.mask = (n >= 32) ? ~0U : ((1U << n) - 1U);
    for (std::size_t i = 0; i < n; ++i) {
      if ((m >> (n - 1 - i)) & 1U) cube.polarity |= (1U << i);
    }
    expr.add_cube(cube);
  }
  return expr;
}

void SopExpr::add_cube(const Cube& cube) { cubes_.push_back(cube); }

bool SopExpr::evaluate(std::size_t combination) const noexcept {
  for (const auto& cube : cubes_) {
    if (cube.covers(combination, input_count_)) return true;
  }
  return false;
}

TruthTable SopExpr::to_truth_table() const {
  TruthTable table(input_count_);
  for (std::size_t c = 0; c < table.row_count(); ++c) {
    table.set_output(c, evaluate(c));
  }
  return table;
}

bool SopExpr::equivalent_to(const TruthTable& table) const {
  if (table.input_count() != input_count_) return false;
  return to_truth_table() == table;
}

std::string SopExpr::to_string(const ExprStyle& style) const {
  if (cubes_.empty()) return style.false_text;
  std::string out;
  for (std::size_t t = 0; t < cubes_.size(); ++t) {
    if (t != 0) out += style.or_sep;
    const Cube& cube = cubes_[t];
    if (cube.mask == 0) {
      out += style.true_text;
      continue;
    }
    bool first = true;
    for (std::size_t i = 0; i < input_count_; ++i) {
      if (((cube.mask >> i) & 1U) == 0) continue;
      if (!first) out += style.and_sep;
      first = false;
      out += input_names_[i];
      if (((cube.polarity >> i) & 1U) == 0) out += style.not_suffix;
    }
  }
  return out;
}

std::size_t SopExpr::literal_count() const noexcept {
  std::size_t total = 0;
  for (const auto& cube : cubes_) total += cube.literal_count();
  return total;
}

std::vector<std::string> default_input_names(std::size_t count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i < 26) {
      names.emplace_back(1, static_cast<char>('A' + i));
    } else {
      // Built with += rather than operator+ to dodge a spurious -Wrestrict
      // from GCC 12's inlined string concatenation (GCC PR 105329).
      std::string name = "X";
      name += std::to_string(i);
      names.push_back(std::move(name));
    }
  }
  return names;
}

}  // namespace glva::logic
