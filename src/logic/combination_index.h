#pragma once

#include <cstddef>
#include <vector>

#include "logic/bit_stream.h"

/// The packed sample-to-combination classifier of the analysis stage: given
/// the digitized input streams (the bit-planes of the paper's "input
/// combination" id, input 0 = MSB), it derives, for every combination c,
/// the selection mask of samples observed under c — replacing the
/// reference CaseAnalyzer's per-sample branch with word-parallel AND
/// masks, the digitize-then-count structure used by truth-table extraction
/// from simulation data.
namespace glva::logic {

/// One packed pass over N input BitStreams producing 2^N sample-selection
/// masks plus their popcount occupancy (the paper's Case_I).
///
/// Mask construction: combination c's word w is the AND over inputs i of
/// (input i's word w if bit i of c is set, else its complement), so every
/// sample is selected by exactly one mask — the masks partition [0, n).
/// Cost: O(2^N · N · samples / 64) time and O(2^N · samples / 8) bytes,
/// which is why the packed representation is capped at kMaxInputs (the
/// reference path still handles up to 16 inputs).
class CombinationIndex {
public:
  /// Hard cap on mask materialization: 2^N masks each occupy the bytes of
  /// one packed stream, so 8 inputs cost 256× one stream (32 MB at 10^6
  /// samples) — already far past the point where the reference path's
  /// O(N · samples) is the better trade. LogicAnalyzer stops *defaulting*
  /// to the packed backend well below this (see kPackedAutoInputLimit in
  /// core/logic_analyzer.h); the cap only bounds explicit users.
  static constexpr std::size_t kMaxInputs = 8;

  /// Empty placeholder (input_count() == 0), so result structs carrying an
  /// index stay default-constructible before being filled in.
  CombinationIndex() = default;

  /// Build from the digitized input streams, MSB first (inputs[0] is the
  /// paper's leftmost input bit). Throws glva::InvalidArgument when
  /// `inputs` is empty, has more than kMaxInputs entries, or the streams
  /// have mismatched lengths.
  explicit CombinationIndex(const std::vector<BitStream>& inputs);

  [[nodiscard]] std::size_t input_count() const noexcept { return input_count_; }
  [[nodiscard]] std::size_t sample_count() const noexcept { return sample_count_; }
  /// 2^input_count (0 for the default-constructed placeholder).
  [[nodiscard]] std::size_t combination_count() const noexcept {
    return masks_.size();
  }

  /// Selection mask of combination c: bit k set iff sample k was observed
  /// under c. Throws glva::InvalidArgument when c >= combination_count().
  [[nodiscard]] const BitStream& mask(std::size_t c) const;

  /// Case_I[c] — number of samples observed under combination c
  /// (popcount(mask(c)), precomputed). Throws glva::InvalidArgument when
  /// c >= combination_count(). The counts sum to sample_count().
  [[nodiscard]] std::size_t count(std::size_t c) const;

  /// Combination id of one sample (the inverse view of the masks; O(2^N),
  /// intended for tests and spot checks, not hot loops). Throws
  /// glva::InvalidArgument when sample >= sample_count().
  [[nodiscard]] std::size_t id(std::size_t sample) const;

private:
  std::size_t input_count_ = 0;
  std::size_t sample_count_ = 0;
  std::vector<BitStream> masks_;      ///< indexed by combination
  std::vector<std::size_t> counts_;   ///< popcount(masks_[c]), cached
};

}  // namespace glva::logic
