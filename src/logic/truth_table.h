#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "logic/bit_stream.h"

/// Complete single-output truth tables over up to 16 inputs. Input
/// combinations are indexed by their binary value with input 0 as the MSB —
/// i.e. index("A=1,B=0,C=0") == 0b100 — matching the paper's "input
/// combination 100" notation. Outputs are stored bit-packed
/// (logic::BitStream), so row-set operations (minterm listing, table
/// comparison) run as word-parallel popcount scans.
namespace glva::logic {

class TruthTable {
public:
  /// All-false table over `input_count` inputs. Throws
  /// glva::InvalidArgument unless 1 <= input_count <= 16.
  explicit TruthTable(std::size_t input_count);

  /// Default: a 1-input constant-0 placeholder, so result structs that
  /// carry a table stay default-constructible before being filled in.
  TruthTable() : TruthTable(1) {}

  /// Table from the list of high combinations.
  static TruthTable from_minterms(std::size_t input_count,
                                  const std::vector<std::size_t>& minterms);

  /// Table from packed bits: bit i of `bits` is the output for combination
  /// i. Only the low 2^input_count bits are read.
  static TruthTable from_bits(std::size_t input_count, std::uint64_t bits);

  [[nodiscard]] std::size_t input_count() const noexcept { return input_count_; }
  [[nodiscard]] std::size_t row_count() const noexcept {
    return static_cast<std::size_t>(1) << input_count_;
  }

  /// Output for one combination; throws glva::InvalidArgument when
  /// combination >= row_count().
  [[nodiscard]] bool output(std::size_t combination) const;
  /// Set one combination's output; same range check as output().
  void set_output(std::size_t combination, bool value);

  /// Ascending list of high combinations.
  [[nodiscard]] std::vector<std::size_t> minterms() const;

  /// Number of high combinations (popcount over the packed rows). O(2^N/64).
  /// Not noexcept: the first popcount in the process resolves the SIMD
  /// kernel set, which throws on an invalid GLVA_SIMD.
  [[nodiscard]] std::size_t minterm_count() const {
    return outputs_.popcount();
  }

  /// Packed form: bit i = output(i). Throws glva::InvalidArgument when
  /// input_count > 6 (the rows would not fit in 64 bits).
  [[nodiscard]] std::uint64_t to_bits() const;

  /// Binary rendering of a combination index, MSB first ("011").
  [[nodiscard]] std::string combination_label(std::size_t combination) const;

  /// Multi-line rendering with the given input names and an output column.
  [[nodiscard]] std::string to_string(const std::vector<std::string>& input_names,
                                      const std::string& output_name) const;

  /// Combinations where the two tables disagree, ascending (word-parallel
  /// XOR over the packed rows — what the verifier's wrong-state totals
  /// are computed from); throws glva::InvalidArgument when the input
  /// counts differ.
  [[nodiscard]] std::vector<std::size_t> differing_rows(const TruthTable& other) const;

  [[nodiscard]] bool operator==(const TruthTable& other) const = default;

  // -- standard functions, for tests and the circuit catalog ---------------
  static TruthTable and_gate(std::size_t inputs);
  static TruthTable or_gate(std::size_t inputs);
  static TruthTable nand_gate(std::size_t inputs);
  static TruthTable nor_gate(std::size_t inputs);
  static TruthTable xor_gate(std::size_t inputs);   // odd parity
  static TruthTable xnor_gate(std::size_t inputs);  // even parity
  static TruthTable not_gate();                     // 1 input
  static TruthTable majority(std::size_t inputs);   // strictly more 1s than 0s
  static TruthTable minority(std::size_t inputs);   // complement of majority

private:
  std::size_t input_count_;
  BitStream outputs_;  ///< bit c = output for combination c
};

}  // namespace glva::logic
