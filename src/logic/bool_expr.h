#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "logic/truth_table.h"

/// Sum-of-products Boolean expressions — the form in which the paper
/// reports extracted circuit logic ("The Boolean expression is then
/// constructed for each filtered result").
namespace glva::logic {

/// A product term (cube) over n variables (n <= 32): variable i
/// participates when bit i of `mask` is set (bit 0 = input 0 = MSB of
/// combination labels) and must equal bit i of `polarity`. Polarity bits
/// outside the mask are ignored; an all-zero mask is the constant-1 cube.
struct Cube {
  std::uint32_t mask = 0;
  std::uint32_t polarity = 0;

  /// True when the cube covers the given input combination (combination
  /// encoded with input 0 as MSB, per TruthTable convention).
  [[nodiscard]] bool covers(std::size_t combination,
                            std::size_t input_count) const noexcept;

  /// Literal count of the cube.
  [[nodiscard]] std::size_t literal_count() const noexcept;

  [[nodiscard]] bool operator==(const Cube& other) const = default;
};

/// Rendering style for expressions.
struct ExprStyle {
  std::string and_sep = "·";   ///< between literals
  std::string or_sep = " + ";  ///< between product terms
  std::string not_suffix = "'"; ///< after a complemented variable
  std::string true_text = "1";
  std::string false_text = "0";
};

/// A disjunction of cubes over named variables.
class SopExpr {
public:
  SopExpr(std::size_t input_count, std::vector<std::string> input_names);

  /// Default: a 1-input constant-0 placeholder (see TruthTable's default).
  SopExpr() : SopExpr(1, {"A"}) {}

  /// Canonical (unminimized) sum of minterms of a truth table.
  static SopExpr canonical(const TruthTable& table,
                           std::vector<std::string> input_names);

  void add_cube(const Cube& cube);

  [[nodiscard]] std::size_t input_count() const noexcept { return input_count_; }
  [[nodiscard]] const std::vector<Cube>& cubes() const noexcept { return cubes_; }
  [[nodiscard]] const std::vector<std::string>& input_names() const noexcept {
    return input_names_;
  }

  /// Evaluate on one combination (input 0 = MSB).
  [[nodiscard]] bool evaluate(std::size_t combination) const noexcept;

  /// Expand to a complete truth table.
  [[nodiscard]] TruthTable to_truth_table() const;

  /// True iff this expression computes the same function as `table`.
  [[nodiscard]] bool equivalent_to(const TruthTable& table) const;

  /// Render ("A·B' + C"); an empty cube list renders as "0", a cube with no
  /// literals as "1".
  [[nodiscard]] std::string to_string(const ExprStyle& style = {}) const;

  /// Total literals across all cubes (the standard minimization cost).
  [[nodiscard]] std::size_t literal_count() const noexcept;

private:
  std::size_t input_count_;
  std::vector<std::string> input_names_;
  std::vector<Cube> cubes_;
};

/// Default variable names "A", "B", ... used when a caller has none.
[[nodiscard]] std::vector<std::string> default_input_names(std::size_t count);

}  // namespace glva::logic
