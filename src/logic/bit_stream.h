#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// Bit-packed binary streams — the storage format of the digitized species
/// traces Algorithm 1 scans. One logic sample per bit, 64 samples per
/// machine word. `std::vector<bool>` packs bits too, but only exposes
/// them through per-element proxies; BitStream's words are first-class,
/// so the per-sample loops of the analysis stage become word-parallel
/// mask/popcount passes — 64 samples per AND/XOR and one hardware
/// popcount per word instead of a read-modify-write per bit.
namespace glva::logic {

/// A growable bit sequence stored LSB-first in 64-bit words: sample k
/// lives in bit (k mod 64) of word (k / 64).
///
/// Class invariant: bits at positions >= size() in the last word are zero
/// (the "tail invariant"). Every mutator maintains it, which is what makes
/// `popcount()`, `operator~`, and word-level iteration safe without
/// per-call tail handling.
class BitStream {
public:
  static constexpr std::size_t kWordBits = 64;

  /// Empty stream (size() == 0, word_count() == 0).
  BitStream() = default;

  /// Zero-filled stream of `size` bits.
  explicit BitStream(std::size_t size)
      : size_(size), words_((size + kWordBits - 1) / kWordBits, 0) {}

  /// Pack a `vector<bool>` (the reference representation) bit for bit.
  /// O(bits.size()).
  [[nodiscard]] static BitStream pack(const std::vector<bool>& bits);

  /// Adopt a pre-built word array (the zero-overhead path for bulk
  /// producers like the packed ADC: fill a plain vector, move it in, pay
  /// one tail-masking at adoption instead of a range check per word).
  /// `words.size()` must be exactly ceil(size / 64) — throws
  /// glva::InvalidArgument otherwise. Bits beyond `size` in the last word
  /// are masked off. O(1) beyond the move.
  [[nodiscard]] static BitStream from_words(std::size_t size,
                                            std::vector<std::uint64_t> words);

  /// Unpack back to the reference representation. O(size()).
  [[nodiscard]] std::vector<bool> unpack() const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  /// Append one bit. Amortized O(1).
  void push_back(bool bit);

  /// Append 64 bits in one store (bit j of `word` becomes sample
  /// size() + j) — the bulk path of word-buffering producers like
  /// `store::DigitizingSink`, 64 samples per call instead of 64
  /// read-modify-writes. Requires size() to be a word multiple; throws
  /// glva::InvalidArgument otherwise. Amortized O(1).
  void append_word(std::uint64_t word);

  /// Append the low `count` bits of `word` (count <= 64; higher bits are
  /// ignored) — the tail flush of a word-buffering producer. Same
  /// word-alignment precondition as `append_word`; throws
  /// glva::InvalidArgument when size() is not a word multiple or
  /// count > 64. O(1).
  void append_bits(std::uint64_t word, std::size_t count);

  /// Append a run of whole words in one bulk insert (one alignment check
  /// and one capacity step for the batch instead of per word) — the
  /// batched commit of `store::DigitizingSink::append_block`. Same
  /// word-alignment precondition as `append_word`. Amortized
  /// O(words.size()).
  void append_words(std::span<const std::uint64_t> words);

  /// Read bit `index` without a range check (precondition: index < size()).
  [[nodiscard]] bool operator[](std::size_t index) const noexcept {
    return ((words_[index / kWordBits] >> (index % kWordBits)) & 1U) != 0;
  }
  /// Read bit `index`; throws glva::InvalidArgument when index >= size().
  [[nodiscard]] bool test(std::size_t index) const;
  /// Write bit `index`; throws glva::InvalidArgument when index >= size().
  void set(std::size_t index, bool value);

  /// Word `w` (bits [64w, 64w+64) of the stream, LSB = lowest sample
  /// index); throws glva::InvalidArgument when w >= word_count(). Tail bits
  /// of the last word are guaranteed zero.
  [[nodiscard]] std::uint64_t word(std::size_t w) const;

  /// Read-only view of the whole word array — the unchecked fast path for
  /// word-level iteration in hot kernels (the tail invariant makes every
  /// word safe to consume as-is).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Bulk-set word `w` in one store (the fast path of the packed ADC);
  /// bits beyond size() are masked off to keep the tail invariant. Throws
  /// glva::InvalidArgument when w >= word_count().
  void set_word(std::size_t w, std::uint64_t value);

  /// Number of 1-bits, counted word-parallel through the active SIMD
  /// kernel set (simd::active(); may throw glva::InvalidArgument on the
  /// first call when GLVA_SIMD names an unavailable level). O(size()/64).
  [[nodiscard]] std::size_t popcount() const;

  /// Number of adjacent 0→1 / 1→0 transitions (the paper's O_Var counting
  /// applied to the whole stream), word-parallel through the active SIMD
  /// kernel set. O(size()/64).
  [[nodiscard]] std::size_t transition_count() const;

  // Word-parallel bitwise combinations. The binary operators throw
  // glva::InvalidArgument when the sizes differ; operator~ re-masks the
  // tail so the invariant holds. All are O(size()/64).
  [[nodiscard]] BitStream operator&(const BitStream& other) const;
  [[nodiscard]] BitStream operator|(const BitStream& other) const;
  [[nodiscard]] BitStream operator^(const BitStream& other) const;
  [[nodiscard]] BitStream operator~() const;

  [[nodiscard]] bool operator==(const BitStream& other) const = default;

private:
  /// Mask with ones at the valid bit positions of the last word (all-ones
  /// when size() is a word multiple or the stream is empty).
  [[nodiscard]] std::uint64_t tail_mask() const noexcept {
    const std::size_t rem = size_ % kWordBits;
    return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// popcount(a & b) without materializing the intermediate stream — the
/// HIGH_O counter of the packed analysis stage. Throws glva::InvalidArgument
/// when the sizes differ. O(size/64).
[[nodiscard]] std::size_t and_popcount(const BitStream& a, const BitStream& b);

/// Transitions of `stream` restricted to the samples `mask` selects, in
/// sample order — exactly the transition count of the *compacted* stream
/// the reference CaseAnalyzer logs per input combination (the paper's
/// O_Var), computed without materializing it. Two selected samples form a
/// transition iff their stream bits differ and no selected sample lies
/// between them; gaps (runs of unselected samples) do not reset the
/// comparison. Throws glva::InvalidArgument when the sizes differ.
/// O(size/64) plus O(1) per selection gap.
[[nodiscard]] std::size_t masked_transition_count(const BitStream& mask,
                                                  const BitStream& stream);

}  // namespace glva::logic
