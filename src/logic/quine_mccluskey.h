#pragma once

#include <vector>

#include "logic/bool_expr.h"
#include "logic/truth_table.h"

/// Two-level minimization of extracted Boolean functions. The paper prints
/// extracted logic as Boolean expressions; GLVA additionally minimizes them
/// (exact Quine–McCluskey with a branch-and-bound minimum cover — feasible
/// because genetic circuits have few inputs).
namespace glva::logic {

/// Minimize `table` (with optional don't-care combinations) into a
/// minimum-cube, then minimum-literal, sum-of-products expression.
///
/// Don't-cares may be covered but need not be; they arise in GLVA from
/// input combinations the simulation never applied, which carry no
/// evidence either way (see core::BoolConstruction::unobserved).
///
/// Precondition: every minterm of `table` and every don't-care index is a
/// valid combination (< table.row_count()); `input_names` has one name per
/// input. Postcondition: the returned expression is equivalent to `table`
/// on all non-don't-care combinations and has a minimum cube count, then
/// minimum literal count, among such covers.
[[nodiscard]] SopExpr minimize(const TruthTable& table,
                               std::vector<std::string> input_names,
                               const std::vector<std::size_t>& dont_cares = {});

/// The prime implicants of `table` (+ don't-cares), unsorted. Exposed for
/// tests and for ablation benches.
[[nodiscard]] std::vector<Cube> prime_implicants(
    const TruthTable& table, const std::vector<std::size_t>& dont_cares = {});

}  // namespace glva::logic
