#include "logic/bit_stream.h"

#include <bit>

#include "logic/simd/kernel_set.h"
#include "util/errors.h"

namespace glva::logic {

BitStream BitStream::pack(const std::vector<bool>& bits) {
  BitStream stream(bits.size());
  for (std::size_t w = 0; w < stream.words_.size(); ++w) {
    const std::size_t base = w * kWordBits;
    const std::size_t limit = std::min(kWordBits, bits.size() - base);
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < limit; ++j) {
      word |= static_cast<std::uint64_t>(bits[base + j]) << j;
    }
    stream.words_[w] = word;
  }
  return stream;
}

BitStream BitStream::from_words(std::size_t size,
                                std::vector<std::uint64_t> words) {
  if (words.size() != (size + kWordBits - 1) / kWordBits) {
    throw InvalidArgument("BitStream::from_words: word count does not match");
  }
  BitStream stream;
  stream.size_ = size;
  stream.words_ = std::move(words);
  if (!stream.words_.empty()) stream.words_.back() &= stream.tail_mask();
  return stream;
}

std::vector<bool> BitStream::unpack() const {
  std::vector<bool> bits(size_);
  for (std::size_t k = 0; k < size_; ++k) bits[k] = (*this)[k];
  return bits;
}

void BitStream::push_back(bool bit) {
  const std::size_t index = size_++;
  if (index % kWordBits == 0) words_.push_back(0);
  if (bit) words_.back() |= std::uint64_t{1} << (index % kWordBits);
}

void BitStream::append_word(std::uint64_t word) {
  if (size_ % kWordBits != 0) {
    throw InvalidArgument(
        "BitStream::append_word: size() must be a word multiple");
  }
  words_.push_back(word);
  size_ += kWordBits;
}

void BitStream::append_words(std::span<const std::uint64_t> words) {
  if (size_ % kWordBits != 0) {
    throw InvalidArgument(
        "BitStream::append_words: size() must be a word multiple");
  }
  words_.insert(words_.end(), words.begin(), words.end());
  size_ += words.size() * kWordBits;
}

void BitStream::append_bits(std::uint64_t word, std::size_t count) {
  if (size_ % kWordBits != 0) {
    throw InvalidArgument(
        "BitStream::append_bits: size() must be a word multiple");
  }
  if (count > kWordBits) {
    throw InvalidArgument("BitStream::append_bits: count must be <= 64");
  }
  if (count == 0) return;
  size_ += count;
  words_.push_back(word & tail_mask());
}

bool BitStream::test(std::size_t index) const {
  if (index >= size_) {
    throw InvalidArgument("BitStream::test: index out of range");
  }
  return (*this)[index];
}

void BitStream::set(std::size_t index, bool value) {
  if (index >= size_) {
    throw InvalidArgument("BitStream::set: index out of range");
  }
  const std::uint64_t bit = std::uint64_t{1} << (index % kWordBits);
  if (value) {
    words_[index / kWordBits] |= bit;
  } else {
    words_[index / kWordBits] &= ~bit;
  }
}

std::uint64_t BitStream::word(std::size_t w) const {
  if (w >= words_.size()) {
    throw InvalidArgument("BitStream::word: index out of range");
  }
  return words_[w];
}

void BitStream::set_word(std::size_t w, std::uint64_t value) {
  if (w >= words_.size()) {
    throw InvalidArgument("BitStream::set_word: index out of range");
  }
  if (w + 1 == words_.size()) value &= tail_mask();
  words_[w] = value;
}

std::size_t BitStream::popcount() const {
  return simd::active().popcount_words(words_.data(), words_.size());
}

std::size_t BitStream::transition_count() const {
  if (size_ < 2) return 0;
  return simd::active().transition_count_words(words_.data(), words_.size(),
                                               tail_mask());
}

namespace {

/// Shared size check for the binary word-parallel operations.
void require_same_size(const BitStream& a, const BitStream& b,
                       const char* what) {
  if (a.size() != b.size()) {
    throw InvalidArgument(std::string(what) + ": stream sizes differ");
  }
}

template <typename Op>
BitStream combine(const BitStream& a, const BitStream& b, Op op,
                  const char* what) {
  require_same_size(a, b, what);
  BitStream out(a.size());
  for (std::size_t w = 0; w < a.word_count(); ++w) {
    out.set_word(w, op(a.word(w), b.word(w)));
  }
  return out;
}

}  // namespace

BitStream BitStream::operator&(const BitStream& other) const {
  return combine(*this, other,
                 [](std::uint64_t x, std::uint64_t y) { return x & y; },
                 "BitStream::operator&");
}

BitStream BitStream::operator|(const BitStream& other) const {
  return combine(*this, other,
                 [](std::uint64_t x, std::uint64_t y) { return x | y; },
                 "BitStream::operator|");
}

BitStream BitStream::operator^(const BitStream& other) const {
  return combine(*this, other,
                 [](std::uint64_t x, std::uint64_t y) { return x ^ y; },
                 "BitStream::operator^");
}

BitStream BitStream::operator~() const {
  BitStream out(size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    out.set_word(w, ~words_[w]);  // set_word re-masks the tail
  }
  return out;
}

std::size_t and_popcount(const BitStream& a, const BitStream& b) {
  require_same_size(a, b, "and_popcount");
  const std::span<const std::uint64_t> wa = a.words();
  const std::span<const std::uint64_t> wb = b.words();
  return simd::active().and_popcount_words(wa.data(), wb.data(), wa.size());
}

std::size_t masked_transition_count(const BitStream& mask,
                                    const BitStream& stream) {
  require_same_size(mask, stream, "masked_transition_count");
  const std::span<const std::uint64_t> mask_words = mask.words();
  const std::span<const std::uint64_t> stream_words = stream.words();

  // Word-parallel common case — transitions between consecutive samples
  // that are both selected — is the dispatched bulk kernel.
  std::size_t count = simd::active().masked_pair_transitions(
      mask_words.data(), stream_words.data(), mask_words.size());

  // Run starts (a selected sample whose predecessor sample is not
  // selected) are patched scalar: compare against the most recent
  // selected sample across the gap. Rare — one per input-combination
  // phase in sweep data.
  std::uint64_t carry_m = 0;  // bit 0 := last mask bit of the previous word
  bool have_prev = false;     // a selected sample has been seen
  bool prev_bit = false;      // stream bit of the most recent selected sample

  for (std::size_t w = 0; w < mask_words.size(); ++w) {
    const std::uint64_t m = mask_words[w];
    const std::uint64_t s = stream_words[w];
    if (m != 0) {
      const std::uint64_t m_prev = (m << 1) | carry_m;
      std::uint64_t starts = m & ~m_prev;
      while (starts != 0) {
        const int p = std::countr_zero(starts);
        starts &= starts - 1;
        const std::uint64_t below =
            m & ((p == 0) ? 0 : ((std::uint64_t{1} << p) - 1));
        bool have = have_prev;
        bool last = prev_bit;
        if (below != 0) {
          const int q = BitStream::kWordBits - 1 - std::countl_zero(below);
          have = true;
          last = ((s >> q) & 1U) != 0;
        }
        if (have && (((s >> p) & 1U) != 0) != last) ++count;
      }

      const int top = BitStream::kWordBits - 1 - std::countl_zero(m);
      prev_bit = ((s >> top) & 1U) != 0;
      have_prev = true;
    }
    carry_m = m >> (BitStream::kWordBits - 1);
  }
  return count;
}

}  // namespace glva::logic
