#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "logic/simd/kernel_set.h"

/// The threshold word packers shared by the analysis-stage ADC
/// (`core::adc_packed`) and the fused sampler→ADC sink
/// (`store::DigitizingSink`). Lives in logic/ so both layers reuse one
/// kernel without a core/ ↔ store/ dependency cycle. Since the SIMD
/// dispatch layer landed, these are thin wrappers over the active
/// `simd::KernelSet` — bulk producers should call
/// `simd::active().pack_threshold_block` directly and amortize the
/// dispatch over a whole batch of words.
namespace glva::logic {

/// Pack 64 consecutive threshold comparisons into one word, bit j =
/// (samples[j] >= threshold); NaN compares false, exactly like the
/// scalar `>=`.
///
/// PRECONDITION: `samples` points at exactly 64 readable doubles — this
/// function always reads all 64 (asserted in debug builds; in release
/// a short buffer is out-of-bounds UB). For a ragged tail of fewer than
/// 64 samples use `pack_threshold_bits`, which takes the length.
inline std::uint64_t pack_threshold_word64(const double* samples,
                                           double threshold) {
  assert(samples != nullptr && "pack_threshold_word64: 64 doubles required");
  std::uint64_t word = 0;
  simd::active().pack_threshold_block(samples, 1, threshold, &word);
  return word;
}

/// Length-taking safe variant for ragged tails: pack the first `count`
/// comparisons (count <= 64, asserted) into the low `count` bits of the
/// result; higher bits are zero — ready for `BitStream::append_bits` or
/// ORing into a partially filled pending word. Reads exactly `count`
/// doubles, so it is safe on buffers shorter than a full word. O(count).
inline std::uint64_t pack_threshold_bits(const double* samples,
                                         std::size_t count, double threshold) {
  assert(count <= 64 && "pack_threshold_bits: at most one word per call");
  std::uint64_t word = 0;
  for (std::size_t j = 0; j < count; ++j) {
    word |= static_cast<std::uint64_t>(samples[j] >= threshold) << j;
  }
  return word;
}

}  // namespace glva::logic
