#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

/// The threshold word packer shared by the analysis-stage ADC
/// (`core::adc_packed`) and the fused sampler→ADC sink
/// (`store::DigitizingSink::append_block`): 64 double comparisons packed
/// into one BitStream word per call. Lives in logic/ so both layers reuse
/// one kernel without a core/ ↔ store/ dependency cycle.
namespace glva::logic {

/// Pack 64 consecutive threshold comparisons into one word, bit j =
/// (samples[j] >= threshold). The SSE2 path turns each pair of doubles
/// into two mask bits with cmpge + movmskpd (NaN compares false, exactly
/// like the scalar >=); the portable path compares into a byte buffer the
/// autovectorizer handles, then gathers each 8-byte group into 8 bits with
/// one multiply (magic 0x0102040810204080: byte t of the group lands at
/// bit 56+t of the product).
inline std::uint64_t pack_threshold_word64(const double* samples,
                                           double threshold) {
#if defined(__SSE2__)
  const __m128d vth = _mm_set1_pd(threshold);
  std::uint64_t word = 0;
  for (std::size_t j = 0; j < 64; j += 2) {
    const int pair =
        _mm_movemask_pd(_mm_cmpge_pd(_mm_loadu_pd(samples + j), vth));
    word |= static_cast<std::uint64_t>(pair) << j;
  }
  return word;
#else
  unsigned char bytes[64];
  for (std::size_t j = 0; j < 64; ++j) bytes[j] = samples[j] >= threshold;
  std::uint64_t word = 0;
  for (std::size_t g = 0; g < 8; ++g) {
    std::uint64_t group;
    std::memcpy(&group, bytes + g * 8, sizeof group);
    word |= ((group * 0x0102040810204080ULL) >> 56) << (g * 8);
  }
  return word;
#endif
}

}  // namespace glva::logic
