#pragma once

#include "logic/simd/kernel_set.h"

/// Internal seam between the dispatcher (dispatch.cpp) and the per-ISA
/// translation units. Each `*_kernels()` factory returns the TU's table,
/// or nullptr when the toolchain could not compile that ISA (the TU is
/// then an empty stub — see the CMake per-file COMPILE_OPTIONS). The
/// scalar entry points are exported individually so wider tiers can
/// reuse them for kernels their ISA does not accelerate (e.g. SSE2 has
/// no popcount instruction).
namespace glva::logic::simd::detail {

const KernelSet* scalar_kernels() noexcept;  // never null
const KernelSet* sse2_kernels() noexcept;
const KernelSet* avx2_kernels() noexcept;
const KernelSet* avx512_kernels() noexcept;

// The scalar reference implementations (kernels_scalar.cpp).
void scalar_pack_threshold_block(const double* samples, std::size_t words,
                                 double threshold, std::uint64_t* out);
std::size_t scalar_popcount_words(const std::uint64_t* words, std::size_t n);
std::size_t scalar_and_popcount_words(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n);
std::size_t scalar_transition_count_words(const std::uint64_t* words,
                                          std::size_t n,
                                          std::uint64_t tail_mask);
std::size_t scalar_masked_pair_transitions(const std::uint64_t* mask,
                                           const std::uint64_t* stream,
                                           std::size_t n);
void scalar_combine_masks(const std::uint64_t* const* planes,
                          const std::uint64_t* invert, std::size_t inputs,
                          std::size_t words, std::uint64_t* out);
void scalar_or_shift_down_words(const std::uint64_t* src, std::size_t n,
                                std::size_t shift, std::uint64_t* dst);
void scalar_and_shift_down_words(const std::uint64_t* src, std::size_t n,
                                 std::size_t shift, std::uint64_t* dst);
void scalar_or_shift_up_words(const std::uint64_t* src, std::size_t n,
                              std::size_t shift, std::uint64_t* dst);

}  // namespace glva::logic::simd::detail
