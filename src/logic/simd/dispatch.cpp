#include <atomic>
#include <cstdlib>

#include "logic/simd/kernels.h"
#include "obs/metrics.h"
#include "util/errors.h"

namespace glva::logic::simd {

namespace {

constexpr const char* kLevelNames[kIsaLevelCount] = {"scalar", "sse2", "avx2",
                                                     "avx512"};

/// The resolved dispatch table. A benign race is possible on first use
/// (two threads both resolve the same value); once non-null it only
/// changes through set_active().
std::atomic<const KernelSet*> g_active{nullptr};

const KernelSet* compiled(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kScalar: return detail::scalar_kernels();
    case IsaLevel::kSSE2: return detail::sse2_kernels();
    case IsaLevel::kAVX2: return detail::avx2_kernels();
    case IsaLevel::kAVX512: return detail::avx512_kernels();
  }
  return nullptr;
}

/// Resolve the default table: GLVA_SIMD override first (an unknown or
/// unavailable name is an error — a forced CI level must never silently
/// fall back), else the widest available tier.
// Mirrors the dispatch decision into the metrics registry so a stats
// snapshot is self-describing about which kernel tier produced it
// (0=scalar, 1=sse2, 2=avx2, 3=avx512 — the IsaLevel enum order).
void publish_tier(const KernelSet& set) {
  static obs::Gauge& tier = obs::gauge("simd.active_tier");
  tier.set(static_cast<std::int64_t>(set.level));
}

const KernelSet* resolve_default() {
  const char* env = std::getenv("GLVA_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const IsaLevel level = parse_isa_level(env);
    const KernelSet* set = kernel_set(level);
    if (set == nullptr) {
      throw InvalidArgument(
          std::string("GLVA_SIMD=") + env +
          ": level not available on this host (not compiled in, or the "
          "CPU lacks the instructions)");
    }
    return set;
  }
  const KernelSet* best = detail::scalar_kernels();
  for (std::size_t i = 0; i < kIsaLevelCount; ++i) {
    if (const KernelSet* set = kernel_set(static_cast<IsaLevel>(i))) {
      best = set;
    }
  }
  return best;
}

}  // namespace

const char* isa_level_name(IsaLevel level) noexcept {
  return kLevelNames[static_cast<std::size_t>(level)];
}

IsaLevel parse_isa_level(const std::string& name) {
  for (std::size_t i = 0; i < kIsaLevelCount; ++i) {
    if (name == kLevelNames[i]) return static_cast<IsaLevel>(i);
  }
  throw InvalidArgument("unknown SIMD level '" + name +
                        "' (expected scalar, sse2, avx2, or avx512)");
}

bool cpu_supports(IsaLevel level) noexcept {
  if (level == IsaLevel::kScalar) return true;
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  __builtin_cpu_init();
  switch (level) {
    case IsaLevel::kScalar:
      return true;
    case IsaLevel::kSSE2:
      return __builtin_cpu_supports("sse2") != 0;
    case IsaLevel::kAVX2:
      return __builtin_cpu_supports("avx2") != 0;
    case IsaLevel::kAVX512:
      // Gate on every feature the AVX-512 TU is compiled with, not just
      // the ones its intrinsics strictly need — the compiler is free to
      // use any of them anywhere in that TU.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
#endif
  return false;
}

const KernelSet* compiled_kernel_set(IsaLevel level) noexcept {
  return compiled(level);
}

const KernelSet* kernel_set(IsaLevel level) noexcept {
  const KernelSet* set = compiled(level);
  return (set != nullptr && cpu_supports(level)) ? set : nullptr;
}

std::vector<const KernelSet*> available_kernel_sets() {
  std::vector<const KernelSet*> sets;
  for (std::size_t i = 0; i < kIsaLevelCount; ++i) {
    if (const KernelSet* set = kernel_set(static_cast<IsaLevel>(i))) {
      sets.push_back(set);
    }
  }
  return sets;
}

const KernelSet& active() {
  const KernelSet* set = g_active.load(std::memory_order_acquire);
  if (set == nullptr) {
    set = resolve_default();
    g_active.store(set, std::memory_order_release);
    publish_tier(*set);
  }
  return *set;
}

IsaLevel active_level() { return active().level; }

void set_active(IsaLevel level) {
  const KernelSet* set = kernel_set(level);
  if (set == nullptr) {
    throw InvalidArgument(
        std::string("SIMD level '") + isa_level_name(level) +
        "' is not available on this host (not compiled in, or the CPU "
        "lacks the instructions)");
  }
  g_active.store(set, std::memory_order_release);
  publish_tier(*set);
}

}  // namespace glva::logic::simd
