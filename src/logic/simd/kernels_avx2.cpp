#include "logic/simd/kernels.h"

// This TU is compiled with -mavx2 -mpopcnt when the toolchain supports
// them (see the per-file COMPILE_OPTIONS in CMakeLists.txt); otherwise it
// collapses to a nullptr stub and dispatch skips the tier.
#if defined(__AVX2__) && defined(__POPCNT__)

#include <immintrin.h>

/// The AVX2 tier: 4 doubles per threshold compare, hardware POPCNT for
/// the counting kernels (every AVX2 CPU has it), and 4-word vector
/// passes for the diff/mask kernels with the popcount taken on the
/// extracted lanes.
namespace glva::logic::simd::detail {

namespace {

inline std::size_t popcount256(__m256i v) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return static_cast<std::size_t>(_mm_popcnt_u64(lanes[0])) +
         static_cast<std::size_t>(_mm_popcnt_u64(lanes[1])) +
         static_cast<std::size_t>(_mm_popcnt_u64(lanes[2])) +
         static_cast<std::size_t>(_mm_popcnt_u64(lanes[3]));
}

inline __m256i loadu(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

void avx2_pack_threshold_block(const double* samples, std::size_t words,
                               double threshold, std::uint64_t* out) {
  const __m256d vth = _mm256_set1_pd(threshold);
  for (std::size_t w = 0; w < words; ++w) {
    const double* block = samples + w * 64;
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < 64; j += 4) {
      // _CMP_GE_OQ: ordered quiet greater-or-equal — NaN produces a zero
      // mask, exactly like the scalar `>=`.
      const int quad = _mm256_movemask_pd(
          _mm256_cmp_pd(_mm256_loadu_pd(block + j), vth, _CMP_GE_OQ));
      word |= static_cast<std::uint64_t>(quad) << j;
    }
    out[w] = word;
  }
}

std::size_t avx2_popcount_words(const std::uint64_t* words, std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) count += popcount256(loadu(words + i));
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(_mm_popcnt_u64(words[i]));
  }
  return count;
}

std::size_t avx2_and_popcount_words(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    count += popcount256(_mm256_and_si256(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(_mm_popcnt_u64(a[i] & b[i]));
  }
  return count;
}

/// diff vector for words [i, i+4): v ^ ((v << 1) | (prev >> 63)), where
/// prev is the unaligned load one word behind — each lane sees its own
/// predecessor's top bit, so the cross-word carry chain vectorizes.
inline __m256i diff4(const std::uint64_t* words, std::size_t i) {
  const __m256i v = loadu(words + i);
  const __m256i prev = loadu(words + i - 1);
  return _mm256_xor_si256(
      v, _mm256_or_si256(_mm256_slli_epi64(v, 1), _mm256_srli_epi64(prev, 63)));
}

std::size_t avx2_transition_count_words(const std::uint64_t* words,
                                        std::size_t n,
                                        std::uint64_t tail_mask) {
  // Word 0 (no predecessor word; sample 0 has no predecessor sample).
  std::uint64_t diff0 = words[0] ^ (words[0] << 1);
  std::uint64_t valid0 = ~std::uint64_t{1};
  if (n == 1) valid0 &= tail_mask;
  std::size_t count = static_cast<std::size_t>(_mm_popcnt_u64(diff0 & valid0));
  if (n == 1) return count;

  // Interior words [1, n-1): full 64-bit diffs, vectorized.
  std::size_t i = 1;
  for (; i + 4 <= n - 1; i += 4) count += popcount256(diff4(words, i));
  for (; i < n - 1; ++i) {
    const std::uint64_t diff =
        words[i] ^ ((words[i] << 1) | (words[i - 1] >> 63));
    count += static_cast<std::size_t>(_mm_popcnt_u64(diff));
  }

  // Last word: mask off the zero tail.
  const std::uint64_t diff =
      words[n - 1] ^ ((words[n - 1] << 1) | (words[n - 2] >> 63));
  count += static_cast<std::size_t>(_mm_popcnt_u64(diff & tail_mask));
  return count;
}

std::size_t avx2_masked_pair_transitions(const std::uint64_t* mask,
                                         const std::uint64_t* stream,
                                         std::size_t n) {
  if (n == 0) return 0;
  // Word 0: zero carries.
  std::size_t count = static_cast<std::size_t>(_mm_popcnt_u64(
      mask[0] & (mask[0] << 1) & (stream[0] ^ (stream[0] << 1))));
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i m = loadu(mask + i);
    const __m256i mp = _mm256_or_si256(_mm256_slli_epi64(m, 1),
                                       _mm256_srli_epi64(loadu(mask + i - 1), 63));
    const __m256i s = loadu(stream + i);
    const __m256i sp = _mm256_or_si256(
        _mm256_slli_epi64(s, 1), _mm256_srli_epi64(loadu(stream + i - 1), 63));
    count += popcount256(
        _mm256_and_si256(_mm256_and_si256(m, mp), _mm256_xor_si256(s, sp)));
  }
  for (; i < n; ++i) {
    const std::uint64_t mp = (mask[i] << 1) | (mask[i - 1] >> 63);
    const std::uint64_t sp = (stream[i] << 1) | (stream[i - 1] >> 63);
    count += static_cast<std::size_t>(
        _mm_popcnt_u64(mask[i] & mp & (stream[i] ^ sp)));
  }
  return count;
}

void avx2_combine_masks(const std::uint64_t* const* planes,
                        const std::uint64_t* invert, std::size_t inputs,
                        std::size_t words, std::uint64_t* out) {
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i bits =
        _mm256_xor_si256(loadu(planes[0] + w), _mm256_set1_epi64x(
                             static_cast<long long>(invert[0])));
    for (std::size_t i = 1; i < inputs; ++i) {
      bits = _mm256_and_si256(
          bits, _mm256_xor_si256(loadu(planes[i] + w),
                                 _mm256_set1_epi64x(
                                     static_cast<long long>(invert[i]))));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), bits);
  }
  for (; w < words; ++w) {
    std::uint64_t bits = planes[0][w] ^ invert[0];
    for (std::size_t i = 1; i < inputs; ++i) bits &= planes[i][w] ^ invert[i];
    out[w] = bits;
  }
}

// The monitor shift kernels below tolerate dst == src because every
// vector block loads before it stores and the other indices a block reads
// have not been written yet: the down forms iterate forward and read
// indices >= the block start, the up form iterates backward and reads
// indices <= the block end.

void avx2_or_shift_down_words(const std::uint64_t* src, std::size_t n,
                              std::size_t shift, std::uint64_t* dst) {
  const std::size_t q = shift / 64;
  const int r = static_cast<int>(shift % 64);
  if (q >= n) return;
  const std::size_t last = n - q;
  std::size_t i = 0;
  if (r == 0) {
    for (; i + 4 <= last; i += 4) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_or_si256(loadu(dst + i), loadu(src + i + q)));
    }
    for (; i < last; ++i) dst[i] |= src[i + q];
  } else {
    // The vector body reads src[i+q .. i+q+4], so it stops one block
    // early (i + q + 4 <= n - 1); the scalar tail handles the edge.
    for (; i + 5 <= last; i += 4) {
      const __m256i v =
          _mm256_or_si256(_mm256_srli_epi64(loadu(src + i + q), r),
                          _mm256_slli_epi64(loadu(src + i + q + 1), 64 - r));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_or_si256(loadu(dst + i), v));
    }
    for (; i < last; ++i) {
      std::uint64_t v = src[i + q] >> r;
      if (i + q + 1 < n) v |= src[i + q + 1] << (64 - r);
      dst[i] |= v;
    }
  }
}

void avx2_and_shift_down_words(const std::uint64_t* src, std::size_t n,
                               std::size_t shift, std::uint64_t* dst) {
  const std::size_t q = shift / 64;
  const int r = static_cast<int>(shift % 64);
  if (q >= n) return;
  const std::size_t last = n - q;
  std::size_t i = 0;
  if (r == 0) {
    for (; i + 4 <= last; i += 4) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst + i),
          _mm256_and_si256(loadu(dst + i), loadu(src + i + q)));
    }
    for (; i < last; ++i) dst[i] &= src[i + q];
  } else {
    for (; i + 5 <= last; i += 4) {
      const __m256i v =
          _mm256_or_si256(_mm256_srli_epi64(loadu(src + i + q), r),
                          _mm256_slli_epi64(loadu(src + i + q + 1), 64 - r));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_and_si256(loadu(dst + i), v));
    }
    for (; i < last; ++i) {
      const std::uint64_t high =
          i + q + 1 < n ? src[i + q + 1] : ~std::uint64_t{0};
      dst[i] &= (src[i + q] >> r) | (high << (64 - r));
    }
  }
}

void avx2_or_shift_up_words(const std::uint64_t* src, std::size_t n,
                            std::size_t shift, std::uint64_t* dst) {
  const std::size_t q = shift / 64;
  const int r = static_cast<int>(shift % 64);
  if (q >= n) return;
  std::size_t i = n;
  if (r == 0) {
    while (i >= q + 4) {
      i -= 4;
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_or_si256(loadu(dst + i), loadu(src + i - q)));
    }
    while (i-- > q) dst[i] |= src[i - q];
  } else {
    // The vector body reads src[i-q-1 .. i+3-q], so the lowest block
    // start stays at q + 1; the scalar tail handles the edge.
    while (i >= q + 5) {
      i -= 4;
      const __m256i v =
          _mm256_or_si256(_mm256_slli_epi64(loadu(src + i - q), r),
                          _mm256_srli_epi64(loadu(src + i - q - 1), 64 - r));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_or_si256(loadu(dst + i), v));
    }
    while (i-- > q) {
      std::uint64_t v = src[i - q] << r;
      if (i > q) v |= src[i - q - 1] >> (64 - r);
      dst[i] |= v;
    }
  }
}

}  // namespace

const KernelSet* avx2_kernels() noexcept {
  static constexpr KernelSet kSet = {
      IsaLevel::kAVX2,
      "avx2",
      &avx2_pack_threshold_block,
      &avx2_popcount_words,
      &avx2_and_popcount_words,
      &avx2_transition_count_words,
      &avx2_masked_pair_transitions,
      &avx2_combine_masks,
      &avx2_or_shift_down_words,
      &avx2_and_shift_down_words,
      &avx2_or_shift_up_words,
  };
  return &kSet;
}

}  // namespace glva::logic::simd::detail

#else  // TU built without -mavx2 -mpopcnt

namespace glva::logic::simd::detail {
const KernelSet* avx2_kernels() noexcept { return nullptr; }
}  // namespace glva::logic::simd::detail

#endif
