#include "logic/simd/kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

/// The SSE2 tier — x86-64 baseline, so it is always runnable wherever it
/// compiles. Only the threshold packer gains from SSE2 (cmpge + movmskpd,
/// two doubles per compare); SSE2 has no popcount instruction, so the
/// counting kernels reuse the scalar entries.
namespace glva::logic::simd::detail {

namespace {

void sse2_pack_threshold_block(const double* samples, std::size_t words,
                               double threshold, std::uint64_t* out) {
  const __m128d vth = _mm_set1_pd(threshold);
  for (std::size_t w = 0; w < words; ++w) {
    const double* block = samples + w * 64;
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < 64; j += 2) {
      // cmpge is the ordered compare: NaN produces a zero mask, exactly
      // like the scalar `>=`.
      const int pair =
          _mm_movemask_pd(_mm_cmpge_pd(_mm_loadu_pd(block + j), vth));
      word |= static_cast<std::uint64_t>(pair) << j;
    }
    out[w] = word;
  }
}

}  // namespace

const KernelSet* sse2_kernels() noexcept {
  static constexpr KernelSet kSet = {
      IsaLevel::kSSE2,
      "sse2",
      &sse2_pack_threshold_block,
      &scalar_popcount_words,
      &scalar_and_popcount_words,
      &scalar_transition_count_words,
      &scalar_masked_pair_transitions,
      &scalar_combine_masks,
      &scalar_or_shift_down_words,
      &scalar_and_shift_down_words,
      &scalar_or_shift_up_words,
  };
  return &kSet;
}

}  // namespace glva::logic::simd::detail

#else  // !defined(__SSE2__)

namespace glva::logic::simd::detail {
const KernelSet* sse2_kernels() noexcept { return nullptr; }
}  // namespace glva::logic::simd::detail

#endif
