#include "logic/simd/kernels.h"

// This TU is compiled with the AVX-512 F/BW/DQ/VL/VPOPCNTDQ flags when
// the toolchain supports them (per-file COMPILE_OPTIONS in
// CMakeLists.txt); otherwise it collapses to a nullptr stub. Runtime
// dispatch additionally gates on CPUID for the same five features, so a
// binary built here runs unchanged on narrower hosts.
#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

// GCC's unmasked 512-bit shift intrinsics are defined in terms of
// _mm512_undefined_epi32() and trip -Wmaybe-uninitialized on every use;
// the "uninitialized" value is the ignored merge source of an all-ones
// mask, so the warning is a false positive for this whole TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

/// The AVX-512 tier: 8 doubles per threshold compare straight into a
/// __mmask8 (no movemask shuffle), and VPOPCNTDQ for in-register 64-bit
/// lane popcounts — the counting kernels never leave the vector unit
/// until the final reduce.
namespace glva::logic::simd::detail {

namespace {

inline __m512i loadu(const std::uint64_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

/// Horizontal sum of the 8 lanes via an explicit store — GCC's
/// _mm512_reduce_add_epi64 goes through _mm256_undefined_si256 and trips
/// -Wmaybe-uninitialized on warnings-as-errors builds.
inline std::uint64_t reduce_add_epi64(__m512i v) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(reinterpret_cast<void*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
         lanes[6] + lanes[7];
}

void avx512_pack_threshold_block(const double* samples, std::size_t words,
                                 double threshold, std::uint64_t* out) {
  const __m512d vth = _mm512_set1_pd(threshold);
  for (std::size_t w = 0; w < words; ++w) {
    const double* block = samples + w * 64;
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < 64; j += 8) {
      // _CMP_GE_OQ: ordered quiet — NaN lanes produce 0 mask bits,
      // exactly like the scalar `>=`.
      const __mmask8 m =
          _mm512_cmp_pd_mask(_mm512_loadu_pd(block + j), vth, _CMP_GE_OQ);
      word |= static_cast<std::uint64_t>(m) << j;
    }
    out[w] = word;
  }
}

std::size_t avx512_popcount_words(const std::uint64_t* words, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(loadu(words + i)));
  }
  std::size_t count =
      static_cast<std::size_t>(reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(_mm_popcnt_u64(words[i]));
  }
  return count;
}

std::size_t avx512_and_popcount_words(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_and_si512(loadu(a + i), loadu(b + i))));
  }
  std::size_t count =
      static_cast<std::size_t>(reduce_add_epi64(acc));
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(_mm_popcnt_u64(a[i] & b[i]));
  }
  return count;
}

/// diff vector for words [i, i+8): v ^ ((v << 1) | (prev >> 63)), prev
/// loaded one word behind so each lane carries its predecessor's top bit.
inline __m512i diff8(const std::uint64_t* words, std::size_t i) {
  const __m512i v = loadu(words + i);
  const __m512i prev = loadu(words + i - 1);
  return _mm512_xor_si512(
      v, _mm512_or_si512(_mm512_slli_epi64(v, 1), _mm512_srli_epi64(prev, 63)));
}

std::size_t avx512_transition_count_words(const std::uint64_t* words,
                                          std::size_t n,
                                          std::uint64_t tail_mask) {
  std::uint64_t diff0 = words[0] ^ (words[0] << 1);
  std::uint64_t valid0 = ~std::uint64_t{1};
  if (n == 1) valid0 &= tail_mask;
  std::size_t count = static_cast<std::size_t>(_mm_popcnt_u64(diff0 & valid0));
  if (n == 1) return count;

  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 1;
  for (; i + 8 <= n - 1; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(diff8(words, i)));
  }
  count += static_cast<std::size_t>(reduce_add_epi64(acc));
  for (; i < n - 1; ++i) {
    const std::uint64_t diff =
        words[i] ^ ((words[i] << 1) | (words[i - 1] >> 63));
    count += static_cast<std::size_t>(_mm_popcnt_u64(diff));
  }

  const std::uint64_t diff =
      words[n - 1] ^ ((words[n - 1] << 1) | (words[n - 2] >> 63));
  count += static_cast<std::size_t>(_mm_popcnt_u64(diff & tail_mask));
  return count;
}

std::size_t avx512_masked_pair_transitions(const std::uint64_t* mask,
                                           const std::uint64_t* stream,
                                           std::size_t n) {
  if (n == 0) return 0;
  std::size_t count = static_cast<std::size_t>(_mm_popcnt_u64(
      mask[0] & (mask[0] << 1) & (stream[0] ^ (stream[0] << 1))));
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 1;
  for (; i + 8 <= n; i += 8) {
    const __m512i m = loadu(mask + i);
    const __m512i mp = _mm512_or_si512(
        _mm512_slli_epi64(m, 1), _mm512_srli_epi64(loadu(mask + i - 1), 63));
    const __m512i s = loadu(stream + i);
    const __m512i sp = _mm512_or_si512(
        _mm512_slli_epi64(s, 1), _mm512_srli_epi64(loadu(stream + i - 1), 63));
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_and_si512(
                 _mm512_and_si512(m, mp), _mm512_xor_si512(s, sp))));
  }
  count += static_cast<std::size_t>(reduce_add_epi64(acc));
  for (; i < n; ++i) {
    const std::uint64_t mp = (mask[i] << 1) | (mask[i - 1] >> 63);
    const std::uint64_t sp = (stream[i] << 1) | (stream[i - 1] >> 63);
    count += static_cast<std::size_t>(
        _mm_popcnt_u64(mask[i] & mp & (stream[i] ^ sp)));
  }
  return count;
}

void avx512_combine_masks(const std::uint64_t* const* planes,
                          const std::uint64_t* invert, std::size_t inputs,
                          std::size_t words, std::uint64_t* out) {
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    __m512i bits = _mm512_xor_si512(
        loadu(planes[0] + w),
        _mm512_set1_epi64(static_cast<long long>(invert[0])));
    for (std::size_t i = 1; i < inputs; ++i) {
      bits = _mm512_and_si512(
          bits, _mm512_xor_si512(
                    loadu(planes[i] + w),
                    _mm512_set1_epi64(static_cast<long long>(invert[i]))));
    }
    _mm512_storeu_si512(reinterpret_cast<void*>(out + w), bits);
  }
  for (; w < words; ++w) {
    std::uint64_t bits = planes[0][w] ^ invert[0];
    for (std::size_t i = 1; i < inputs; ++i) bits &= planes[i][w] ^ invert[i];
    out[w] = bits;
  }
}

// The monitor shift kernels tolerate dst == src for the same reason the
// AVX2 tier's do: every vector block loads before it stores, the down
// forms iterate forward reading indices >= the block start, and the up
// form iterates backward reading indices <= the block end.

void avx512_or_shift_down_words(const std::uint64_t* src, std::size_t n,
                                std::size_t shift, std::uint64_t* dst) {
  const std::size_t q = shift / 64;
  const unsigned r = static_cast<unsigned>(shift % 64);
  if (q >= n) return;
  const std::size_t last = n - q;
  std::size_t i = 0;
  if (r == 0) {
    for (; i + 8 <= last; i += 8) {
      _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                          _mm512_or_si512(loadu(dst + i), loadu(src + i + q)));
    }
    for (; i < last; ++i) dst[i] |= src[i + q];
  } else {
    for (; i + 9 <= last; i += 8) {
      const __m512i v =
          _mm512_or_si512(_mm512_srli_epi64(loadu(src + i + q), r),
                          _mm512_slli_epi64(loadu(src + i + q + 1), 64 - r));
      _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                          _mm512_or_si512(loadu(dst + i), v));
    }
    for (; i < last; ++i) {
      std::uint64_t v = src[i + q] >> r;
      if (i + q + 1 < n) v |= src[i + q + 1] << (64 - r);
      dst[i] |= v;
    }
  }
}

void avx512_and_shift_down_words(const std::uint64_t* src, std::size_t n,
                                 std::size_t shift, std::uint64_t* dst) {
  const std::size_t q = shift / 64;
  const unsigned r = static_cast<unsigned>(shift % 64);
  if (q >= n) return;
  const std::size_t last = n - q;
  std::size_t i = 0;
  if (r == 0) {
    for (; i + 8 <= last; i += 8) {
      _mm512_storeu_si512(
          reinterpret_cast<void*>(dst + i),
          _mm512_and_si512(loadu(dst + i), loadu(src + i + q)));
    }
    for (; i < last; ++i) dst[i] &= src[i + q];
  } else {
    for (; i + 9 <= last; i += 8) {
      const __m512i v =
          _mm512_or_si512(_mm512_srli_epi64(loadu(src + i + q), r),
                          _mm512_slli_epi64(loadu(src + i + q + 1), 64 - r));
      _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                          _mm512_and_si512(loadu(dst + i), v));
    }
    for (; i < last; ++i) {
      const std::uint64_t high =
          i + q + 1 < n ? src[i + q + 1] : ~std::uint64_t{0};
      dst[i] &= (src[i + q] >> r) | (high << (64 - r));
    }
  }
}

void avx512_or_shift_up_words(const std::uint64_t* src, std::size_t n,
                              std::size_t shift, std::uint64_t* dst) {
  const std::size_t q = shift / 64;
  const unsigned r = static_cast<unsigned>(shift % 64);
  if (q >= n) return;
  std::size_t i = n;
  if (r == 0) {
    while (i >= q + 8) {
      i -= 8;
      _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                          _mm512_or_si512(loadu(dst + i), loadu(src + i - q)));
    }
    while (i-- > q) dst[i] |= src[i - q];
  } else {
    while (i >= q + 9) {
      i -= 8;
      const __m512i v =
          _mm512_or_si512(_mm512_slli_epi64(loadu(src + i - q), r),
                          _mm512_srli_epi64(loadu(src + i - q - 1), 64 - r));
      _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                          _mm512_or_si512(loadu(dst + i), v));
    }
    while (i-- > q) {
      std::uint64_t v = src[i - q] << r;
      if (i > q) v |= src[i - q - 1] >> (64 - r);
      dst[i] |= v;
    }
  }
}

}  // namespace

const KernelSet* avx512_kernels() noexcept {
  static constexpr KernelSet kSet = {
      IsaLevel::kAVX512,
      "avx512",
      &avx512_pack_threshold_block,
      &avx512_popcount_words,
      &avx512_and_popcount_words,
      &avx512_transition_count_words,
      &avx512_masked_pair_transitions,
      &avx512_combine_masks,
      &avx512_or_shift_down_words,
      &avx512_and_shift_down_words,
      &avx512_or_shift_up_words,
  };
  return &kSet;
}

}  // namespace glva::logic::simd::detail

#else  // TU built without the AVX-512 flags

namespace glva::logic::simd::detail {
const KernelSet* avx512_kernels() noexcept { return nullptr; }
}  // namespace glva::logic::simd::detail

#endif
