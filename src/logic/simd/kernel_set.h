#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// Runtime-dispatched SIMD variants of the analysis-stage hot kernels.
///
/// Every kernel in a `KernelSet` is **bit-identical by contract** to the
/// scalar reference set (`kernel_set(IsaLevel::kScalar)`): same results
/// for NaN, signed zero, infinities, threshold-equal samples, ragged
/// tails, and misaligned pointers. The conformance suite
/// (`tests/test_simd_kernels.cpp`) fuzz-pins each compiled-in variant
/// against the scalar set; the dispatch choice is therefore a pure
/// throughput knob — it can never change a verdict, PFoBE, or FOV bit.
///
/// Dispatch is resolved once per process from, in priority order:
///  1. `set_active(level)` — the CLI's global `--simd` flag and tests;
///  2. the `GLVA_SIMD=scalar|sse2|avx2|avx512` environment variable
///     (used by CI to force fallback levels through the full test run);
///  3. CPUID: the widest level both compiled in and supported by the
///     host (`__builtin_cpu_supports`).
/// Forcing a level the host cannot run (or that was not compiled in) is
/// an error, not a silent fallback — a CI job forcing `avx512` on an
/// AVX2-only runner must fail, not quietly test nothing.
///
/// See docs/ANALYSIS.md ("The kernel dispatch table") for the layer map
/// and the checklist for adding a kernel.
namespace glva::logic::simd {

/// Instruction-set tiers, narrowest first. Each tier's kernel set may
/// reuse entries from a narrower tier when the wider ISA adds nothing
/// (e.g. kSSE2 shares the scalar popcount — SSE2 has no popcount
/// instruction).
enum class IsaLevel : std::uint8_t { kScalar = 0, kSSE2, kAVX2, kAVX512 };

/// Number of IsaLevel values (array sizing).
inline constexpr std::size_t kIsaLevelCount = 4;

/// The dispatch table: one function pointer per hot kernel. All word
/// arrays are `logic::BitStream` words (LSB-first, 64 samples per word);
/// none of the pointers need any particular alignment beyond the
/// element type's natural alignment.
struct KernelSet {
  IsaLevel level;
  const char* name;  ///< "scalar" | "sse2" | "avx2" | "avx512"

  /// Pack `words * 64` threshold comparisons: out[w] bit j =
  /// (samples[64w + j] >= threshold), NaN comparing false exactly like
  /// the scalar `>=`. Precondition: `samples` points at exactly
  /// `words * 64` readable doubles (use logic::pack_threshold_bits for
  /// ragged tails).
  void (*pack_threshold_block)(const double* samples, std::size_t words,
                               double threshold, std::uint64_t* out);

  /// Σ popcount(words[i]) over i in [0, n).
  std::size_t (*popcount_words)(const std::uint64_t* words, std::size_t n);

  /// Σ popcount(a[i] & b[i]) over i in [0, n) — the HIGH_O counter.
  std::size_t (*and_popcount_words)(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n);

  /// Adjacent-bit transitions across the word array: bit k of word w
  /// counts iff sample 64w+k differs from its predecessor sample. Bit 0
  /// of word 0 has no predecessor and never counts; the last word's
  /// diff bits are masked by `tail_mask` (ones at the valid bit
  /// positions). Precondition: n >= 1 and bits above the tail mask in
  /// words[n-1] are zero (the BitStream tail invariant).
  std::size_t (*transition_count_words)(const std::uint64_t* words,
                                        std::size_t n,
                                        std::uint64_t tail_mask);

  /// The word-parallel term of masked_transition_count: with carries
  /// flowing between consecutive words,
  ///   Σ popcount(m & ((m << 1) | carry_m) & (s ^ ((s << 1) | carry_s)))
  /// — transitions between *consecutive* samples that are both selected.
  /// Run starts across selection gaps are patched scalar by the caller.
  std::size_t (*masked_pair_transitions)(const std::uint64_t* mask,
                                         const std::uint64_t* stream,
                                         std::size_t n);

  /// The CombinationIndex mask build: out[w] = AND over i in
  /// [0, inputs) of (planes[i][w] ^ invert[i]), where invert[i] is 0
  /// (keep the plane) or ~0 (complement it). Precondition: inputs >= 1.
  void (*combine_masks)(const std::uint64_t* const* planes,
                        const std::uint64_t* invert, std::size_t inputs,
                        std::size_t words, std::uint64_t* out);

  // Sliding-window building blocks of the temporal-property monitor
  // (src/props/monitor.cpp, docs/PROPERTIES.md): combine `dst` with a
  // bit-shifted view of `src` across the whole n-word array. "Down"
  // shifts toward sample 0 (bit j of the view is src bit j + shift),
  // "up" toward higher samples (bit j is src bit j - shift); `shift` is
  // an arbitrary bit count, not a word multiple. Bits of the view that
  // fall outside [0, 64n) read as 0 for the OR forms and as 1 for the
  // AND form (a bounded-globally window truncated at the trace edge must
  // not fail) — measured against the 64n-bit word array, so callers with
  // ragged tails pre-fill the tail bits to match and re-mask afterwards.
  // `dst` may alias `src` exactly (the in-place cascade case); partial
  // overlap is not supported.

  /// dst[j] |= src[j + shift] over the whole array (zero past the end).
  void (*or_shift_down_words)(const std::uint64_t* src, std::size_t n,
                              std::size_t shift, std::uint64_t* dst);

  /// dst[j] &= src[j + shift] over the whole array (ones past the end).
  void (*and_shift_down_words)(const std::uint64_t* src, std::size_t n,
                               std::size_t shift, std::uint64_t* dst);

  /// dst[j] |= src[j - shift] over the whole array (zero before bit 0).
  void (*or_shift_up_words)(const std::uint64_t* src, std::size_t n,
                            std::size_t shift, std::uint64_t* dst);
};

/// Canonical lower-case name of a level ("scalar", "sse2", ...).
[[nodiscard]] const char* isa_level_name(IsaLevel level) noexcept;

/// Parse a level name (the GLVA_SIMD / --simd vocabulary, case-sensitive
/// lower-case). Throws glva::InvalidArgument on anything else.
[[nodiscard]] IsaLevel parse_isa_level(const std::string& name);

/// True when the running CPU can execute `level`'s instructions
/// (kScalar is always true; the x86 tiers use __builtin_cpu_supports
/// and are false on non-x86 builds).
[[nodiscard]] bool cpu_supports(IsaLevel level) noexcept;

/// The kernel set compiled into this binary for `level`, or nullptr
/// when the toolchain could not build it (non-x86 target, or the
/// compiler lacks the ISA flags). Compiled-in does NOT imply runnable
/// here — see kernel_set().
[[nodiscard]] const KernelSet* compiled_kernel_set(IsaLevel level) noexcept;

/// The kernel set for `level` iff it is both compiled in and supported
/// by the running CPU; nullptr otherwise. kScalar never returns null.
[[nodiscard]] const KernelSet* kernel_set(IsaLevel level) noexcept;

/// Every kernel set runnable on this host, narrowest (scalar) first —
/// what the conformance suite enumerates.
[[nodiscard]] std::vector<const KernelSet*> available_kernel_sets();

/// The resolved dispatch table (see the resolution order above). The
/// first call resolves and caches; throws glva::InvalidArgument when
/// GLVA_SIMD names an unknown or unavailable level.
[[nodiscard]] const KernelSet& active();

/// Convenience: active().level.
[[nodiscard]] IsaLevel active_level();

/// Force the dispatch table to `level` (the --simd flag and the
/// forced-level conformance tests). Throws glva::InvalidArgument when
/// `level` is not available on this host. Not synchronized against
/// concurrently *running* kernels — call at startup or between runs;
/// results are bit-identical across levels regardless.
void set_active(IsaLevel level);

}  // namespace glva::logic::simd
