#include <bit>
#include <cstring>

#include "logic/simd/kernels.h"

/// The scalar reference tier: portable C++ only, no intrinsics. Every
/// wider tier is fuzz-pinned bit-identical to these functions, so this
/// file is the executable specification of the kernel contracts.
namespace glva::logic::simd::detail {

void scalar_pack_threshold_block(const double* samples, std::size_t words,
                                 double threshold, std::uint64_t* out) {
  for (std::size_t w = 0; w < words; ++w) {
    // Compare into a byte buffer the autovectorizer handles, then gather
    // each 8-byte group into 8 bits with one multiply (magic
    // 0x0102040810204080: byte t of the group lands at bit 56+t of the
    // product). NaN compares false, exactly like every other tier.
    const double* block = samples + w * 64;
    unsigned char bytes[64];
    for (std::size_t j = 0; j < 64; ++j) bytes[j] = block[j] >= threshold;
    std::uint64_t word = 0;
    for (std::size_t g = 0; g < 8; ++g) {
      std::uint64_t group;
      std::memcpy(&group, bytes + g * 8, sizeof group);
      word |= ((group * 0x0102040810204080ULL) >> 56) << (g * 8);
    }
    out[w] = word;
  }
}

std::size_t scalar_popcount_words(const std::uint64_t* words, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return count;
}

std::size_t scalar_and_popcount_words(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

std::size_t scalar_transition_count_words(const std::uint64_t* words,
                                          std::size_t n,
                                          std::uint64_t tail_mask) {
  std::size_t count = 0;
  std::uint64_t carry = 0;  // bit 0 := last bit of the previous word
  for (std::size_t w = 0; w < n; ++w) {
    const std::uint64_t word = words[w];
    // diff bit k set iff sample 64w+k differs from its predecessor.
    const std::uint64_t diff = word ^ ((word << 1) | carry);
    std::uint64_t valid = ~std::uint64_t{0};
    if (w == 0) valid &= ~std::uint64_t{1};  // sample 0: no predecessor
    if (w + 1 == n) valid &= tail_mask;      // exclude the zero tail
    count += static_cast<std::size_t>(std::popcount(diff & valid));
    carry = word >> 63;
  }
  return count;
}

std::size_t scalar_masked_pair_transitions(const std::uint64_t* mask,
                                           const std::uint64_t* stream,
                                           std::size_t n) {
  std::size_t count = 0;
  std::uint64_t carry_m = 0;  // bit 0 := last mask bit of the previous word
  std::uint64_t carry_s = 0;  // bit 0 := last stream bit of the previous word
  for (std::size_t w = 0; w < n; ++w) {
    const std::uint64_t m = mask[w];
    const std::uint64_t s = stream[w];
    const std::uint64_t m_prev = (m << 1) | carry_m;
    const std::uint64_t s_prev = (s << 1) | carry_s;
    count +=
        static_cast<std::size_t>(std::popcount(m & m_prev & (s ^ s_prev)));
    carry_m = m >> 63;
    carry_s = s >> 63;
  }
  return count;
}

void scalar_combine_masks(const std::uint64_t* const* planes,
                          const std::uint64_t* invert, std::size_t inputs,
                          std::size_t words, std::uint64_t* out) {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = planes[0][w] ^ invert[0];
    for (std::size_t i = 1; i < inputs; ++i) {
      bits &= planes[i][w] ^ invert[i];
    }
    out[w] = bits;
  }
}

void scalar_or_shift_down_words(const std::uint64_t* src, std::size_t n,
                                std::size_t shift, std::uint64_t* dst) {
  const std::size_t q = shift / 64;
  const std::size_t r = shift % 64;
  if (q >= n) return;  // the whole view is past the end: OR with zero
  const std::size_t last = n - q;  // i < last has src[i + q] in range
  if (r == 0) {
    // Forward iteration is what makes dst == src (the in-place cascade)
    // safe: iteration i writes index i and reads indices >= i, and a
    // same-index read happens before the write.
    for (std::size_t i = 0; i < last; ++i) dst[i] |= src[i + q];
  } else {
    for (std::size_t i = 0; i < last; ++i) {
      std::uint64_t v = src[i + q] >> r;
      if (i + q + 1 < n) v |= src[i + q + 1] << (64 - r);
      dst[i] |= v;
    }
  }
}

void scalar_and_shift_down_words(const std::uint64_t* src, std::size_t n,
                                 std::size_t shift, std::uint64_t* dst) {
  const std::size_t q = shift / 64;
  const std::size_t r = shift % 64;
  if (q >= n) return;  // AND with all-ones: dst unchanged
  const std::size_t last = n - q;
  if (r == 0) {
    for (std::size_t i = 0; i < last; ++i) dst[i] &= src[i + q];
  } else {
    for (std::size_t i = 0; i < last; ++i) {
      const std::uint64_t high =
          i + q + 1 < n ? src[i + q + 1] : ~std::uint64_t{0};
      dst[i] &= (src[i + q] >> r) | (high << (64 - r));
    }
  }
  // Words at i >= last view only past-the-end bits (all ones): unchanged.
}

void scalar_or_shift_up_words(const std::uint64_t* src, std::size_t n,
                              std::size_t shift, std::uint64_t* dst) {
  const std::size_t q = shift / 64;
  const std::size_t r = shift % 64;
  if (q >= n) return;
  if (r == 0) {
    // Backward iteration keeps dst == src safe for the up direction:
    // iteration i writes index i and reads indices <= i.
    for (std::size_t i = n; i-- > q;) dst[i] |= src[i - q];
  } else {
    for (std::size_t i = n; i-- > q;) {
      std::uint64_t v = src[i - q] << r;
      if (i > q) v |= src[i - q - 1] >> (64 - r);
      dst[i] |= v;
    }
  }
}

const KernelSet* scalar_kernels() noexcept {
  static constexpr KernelSet kSet = {
      IsaLevel::kScalar,
      "scalar",
      &scalar_pack_threshold_block,
      &scalar_popcount_words,
      &scalar_and_popcount_words,
      &scalar_transition_count_words,
      &scalar_masked_pair_transitions,
      &scalar_combine_masks,
      &scalar_or_shift_down_words,
      &scalar_and_shift_down_words,
      &scalar_or_shift_up_words,
  };
  return &kSet;
}

}  // namespace glva::logic::simd::detail
