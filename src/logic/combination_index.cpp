#include "logic/combination_index.h"

#include <array>

#include "logic/simd/kernel_set.h"
#include "util/errors.h"

namespace glva::logic {

CombinationIndex::CombinationIndex(const std::vector<BitStream>& inputs) {
  if (inputs.empty()) {
    throw InvalidArgument("CombinationIndex: no input streams");
  }
  if (inputs.size() > kMaxInputs) {
    throw InvalidArgument("CombinationIndex: more than " +
                          std::to_string(kMaxInputs) + " inputs");
  }
  input_count_ = inputs.size();
  sample_count_ = inputs.front().size();
  for (const BitStream& input : inputs) {
    if (input.size() != sample_count_) {
      throw InvalidArgument("CombinationIndex: input stream lengths differ");
    }
  }

  const std::size_t combinations = std::size_t{1} << input_count_;
  masks_.reserve(combinations);
  counts_.assign(combinations, 0);

  // Combination c's stream is the AND over inputs i of (plane i if bit i
  // of c is set, else its complement), with input 0 as the MSB — the
  // paper's "input combination 100" notation and the reference
  // CaseAnalyzer's bit order. Selecting plane-vs-complement is one XOR
  // with an all-ones/all-zero constant hoisted out of the word loop, so
  // the build is pure load/xor/and/store — the `combine_masks` entry of
  // the active SIMD kernel set (4/8 words per pass on AVX tiers).
  const std::size_t words = inputs.front().word_count();
  const simd::KernelSet& kernels = simd::active();
  std::array<const std::uint64_t*, kMaxInputs> planes{};
  for (std::size_t i = 0; i < input_count_; ++i) {
    planes[i] = inputs[i].words().data();
  }

  for (std::size_t c = 0; c < combinations; ++c) {
    std::array<std::uint64_t, kMaxInputs> invert{};
    for (std::size_t i = 0; i < input_count_; ++i) {
      const bool bit_set = ((c >> (input_count_ - 1 - i)) & 1U) != 0;
      invert[i] = bit_set ? 0 : ~std::uint64_t{0};
    }
    std::vector<std::uint64_t> mask_words(words);
    kernels.combine_masks(planes.data(), invert.data(), input_count_, words,
                          mask_words.data());
    // Complemented planes can select the zero tail bits of the last input
    // word, which are not samples; from_words masks them off, so counting
    // the adopted stream (still cache-hot) gives the exact Case_I.
    BitStream mask = BitStream::from_words(sample_count_, std::move(mask_words));
    counts_[c] = mask.popcount();
    masks_.push_back(std::move(mask));
  }
}

const BitStream& CombinationIndex::mask(std::size_t c) const {
  if (c >= masks_.size()) {
    throw InvalidArgument("CombinationIndex::mask: combination out of range");
  }
  return masks_[c];
}

std::size_t CombinationIndex::count(std::size_t c) const {
  if (c >= counts_.size()) {
    throw InvalidArgument("CombinationIndex::count: combination out of range");
  }
  return counts_[c];
}

std::size_t CombinationIndex::id(std::size_t sample) const {
  if (sample >= sample_count_) {
    throw InvalidArgument("CombinationIndex::id: sample out of range");
  }
  for (std::size_t c = 0; c < masks_.size(); ++c) {
    if (masks_[c][sample]) return c;
  }
  // Unreachable: the masks partition the sample axis.
  throw InvalidArgument("CombinationIndex::id: sample not classified");
}

}  // namespace glva::logic
