#ifndef GLVA_OBS_METRICS_H
#define GLVA_OBS_METRICS_H

// Process-wide metrics registry: named monotonic counters, gauges, and
// fixed-boundary latency histograms (docs/OBSERVABILITY.md has the full
// catalog). Counters and histograms write to lock-free per-thread shards
// (one relaxed fetch_add on the owner thread's slot); readers merge every
// live shard plus the retired accumulator under the registry mutex, so a
// snapshot never blocks the hot path. Gauges are single process-global
// atomics (last-writer-wins set, or add for up/down tracking).
//
// Handles returned by counter()/gauge()/histogram() are interned and live
// for the whole process; call sites cache them once:
//
//   static obs::Counter& steps = obs::counter("sim.ssa.steps");
//   steps.add(local_steps);
//
// Compiling with -DGLVA_NO_METRICS replaces every handle with an inline
// no-op and snapshot() with an empty result, so instrumented call sites
// compile away entirely.

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace glva::obs {

// Snapshot types are real in both build flavors so renderers and tests
// compile unconditionally; under GLVA_NO_METRICS the snapshot is empty.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // One count per boundary in histogram_boundaries(), plus a final
  // overflow bucket for values above the largest boundary.
  std::vector<std::uint64_t> buckets;
};

struct Snapshot {
  std::vector<CounterSample> counters;      // sorted by name
  std::vector<GaugeSample> gauges;          // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name
};

// Upper bucket boundaries shared by every histogram: a 1-2-5 ladder from
// 1 to 5e8 in the caller's unit (the name suffix states the unit, e.g.
// serve.latency_us.verify observes microseconds).
const std::vector<double>& histogram_boundaries();

// Human-readable snapshot (one metric per line) and a JSON object with
// "counters" / "gauges" / "histograms" members. Both are deterministic:
// metrics sorted by name.
std::string render_text(const Snapshot& snap);
std::string render_json(const Snapshot& snap);

#ifdef GLVA_NO_METRICS

class Counter {
 public:
  void add(std::uint64_t) noexcept {}
  void increment() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
};

class Histogram {
 public:
  void observe(double) noexcept {}
};

inline Counter& counter(std::string_view) {
  static Counter c;
  return c;
}

inline Gauge& gauge(std::string_view) {
  static Gauge g;
  return g;
}

inline Histogram& histogram(std::string_view) {
  static Histogram h;
  return h;
}

inline Snapshot snapshot() { return {}; }

inline constexpr bool metrics_enabled() { return false; }

class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram&) noexcept {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
};

#else  // !GLVA_NO_METRICS

class Counter {
 public:
  // Owner-thread write into this thread's shard slot; wait-free.
  void add(std::uint64_t n) noexcept;
  void increment() noexcept { add(1); }

 private:
  friend class Registry;
  explicit Counter(std::size_t slot) : slot_(slot) {}
  std::size_t slot_;
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept;
  void add(std::int64_t delta) noexcept;

 private:
  friend class Registry;
  explicit Gauge(std::size_t index) : index_(index) {}
  std::size_t index_;
};

class Histogram {
 public:
  // Records v into the matching bucket and accumulates count/sum.
  void observe(double v) noexcept;

 private:
  friend class Registry;
  explicit Histogram(std::size_t first_slot) : first_slot_(first_slot) {}
  // Shard slot layout: [count][sum as double bits][buckets...].
  std::size_t first_slot_;
};

// Interned lookup: the first call for a name registers the metric, later
// calls return the same handle. Thread-safe; handles are process-lifetime.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

// Merges every live per-thread shard plus the retired accumulator.
Snapshot snapshot();

inline constexpr bool metrics_enabled() { return true; }

// RAII latency probe: observes the scope's elapsed time in microseconds.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h) noexcept
      : hist_(h), start_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_.observe(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            elapsed)
            .count());
  }

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

#endif  // GLVA_NO_METRICS

}  // namespace glva::obs

#endif  // GLVA_OBS_METRICS_H
