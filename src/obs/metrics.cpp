#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace glva::obs {
namespace {

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const std::vector<double>& boundaries() {
  // 1-2-5 ladder: wide enough that one shared shape covers microsecond
  // latencies (sub-us to ~8 min) and millisecond ones alike.
  static const std::vector<double> kBoundaries = [] {
    std::vector<double> b;
    double decade = 1.0;
    while (decade <= 1e8) {
      b.push_back(decade);
      b.push_back(2 * decade);
      b.push_back(5 * decade);
      decade *= 10.0;
    }
    return b;
  }();
  return kBoundaries;
}

}  // namespace

const std::vector<double>& histogram_boundaries() { return boundaries(); }

#ifndef GLVA_NO_METRICS

namespace {

double bits_to_double(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::uint64_t double_to_bits(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Bucket-interpolated quantile over merged bucket counts: the estimate is
// always inside the bucket that contains the requested rank, which is the
// bound test_obs pins.
double quantile_estimate(const std::vector<std::uint64_t>& buckets,
                         std::uint64_t count, double q) {
  if (count == 0) return 0.0;
  const auto& bounds = boundaries();
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      // The overflow bucket has no upper edge; clamp to its lower edge so
      // the estimate stays a lower bound instead of inventing a tail.
      const double upper = i < bounds.size() ? bounds[i] : bounds.back();
      const double frac =
          std::min(1.0, std::max(0.0, (rank - static_cast<double>(cum)) /
                                          static_cast<double>(in_bucket)));
      return lower + (upper - lower) * frac;
    }
    cum += in_bucket;
  }
  return bounds.back();
}

constexpr std::size_t kMaxSlots = 4096;

struct Shard {
  std::atomic<std::uint64_t> slots[kMaxSlots] = {};
};

struct CounterEntry {
  std::string name;
  std::size_t slot;
  Counter handle;
};

struct GaugeEntry {
  std::string name;
  std::atomic<std::int64_t> value{0};
  Gauge handle;
  GaugeEntry(std::string n, Gauge h) : name(std::move(n)), handle(h) {}
};

struct HistogramEntry {
  std::string name;
  std::size_t first_slot;  // [count][sum bits][buckets...]
  Histogram handle;
};

}  // namespace

class Registry {
 public:
  Counter& intern_counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counter_index_.find(std::string(name));
    if (it != counter_index_.end()) return counters_[it->second].handle;
    const std::size_t slot = allocate_slots(1);
    counters_.push_back(CounterEntry{std::string(name), slot, Counter(slot)});
    counter_index_.emplace(std::string(name), counters_.size() - 1);
    return counters_.back().handle;
  }

  Gauge& intern_gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauge_index_.find(std::string(name));
    if (it != gauge_index_.end()) return gauges_[it->second].handle;
    gauges_.emplace_back(std::string(name), Gauge(gauges_.size()));
    gauge_index_.emplace(std::string(name), gauges_.size() - 1);
    return gauges_.back().handle;
  }

  Histogram& intern_histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histogram_index_.find(std::string(name));
    if (it != histogram_index_.end()) return histograms_[it->second].handle;
    const std::size_t slots = 2 + boundaries().size() + 1;
    const std::size_t first = allocate_slots(slots);
    is_sum_slot_[first + 1] = true;
    histograms_.push_back(
        HistogramEntry{std::string(name), first, Histogram(first)});
    histogram_index_.emplace(std::string(name), histograms_.size() - 1);
    return histograms_.back().handle;
  }

  std::atomic<std::int64_t>& gauge_value(std::size_t index) {
    // Gauge entries live in a deque and are never removed, so the
    // reference is stable without holding the mutex.
    return gauges_[index].value;
  }

  void register_shard(Shard* shard) {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(shard);
  }

  // Thread exit: fold the dying thread's slots into the retired
  // accumulator so pool threads that come and go never lose counts.
  void retire_shard(Shard* shard) {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                  shards_.end());
    for (std::size_t i = 0; i < next_slot_; ++i) {
      const std::uint64_t v = shard->slots[i].load(std::memory_order_relaxed);
      if (v == 0) continue;
      if (is_sum_slot_[i]) {
        retired_[i] =
            double_to_bits(bits_to_double(retired_[i]) + bits_to_double(v));
      } else {
        retired_[i] += v;
      }
    }
    delete shard;
  }

  Snapshot make_snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    // Merge retired + live shards once, then slice per metric.
    std::vector<std::uint64_t> merged(next_slot_, 0);
    std::vector<double> merged_sums(next_slot_, 0.0);
    for (std::size_t i = 0; i < next_slot_; ++i) {
      if (is_sum_slot_[i]) {
        merged_sums[i] = bits_to_double(retired_[i]);
      } else {
        merged[i] = retired_[i];
      }
    }
    for (Shard* shard : shards_) {
      for (std::size_t i = 0; i < next_slot_; ++i) {
        const std::uint64_t v = shard->slots[i].load(std::memory_order_relaxed);
        if (v == 0) continue;
        if (is_sum_slot_[i]) {
          merged_sums[i] += bits_to_double(v);
        } else {
          merged[i] += v;
        }
      }
    }

    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const CounterEntry& c : counters_) {
      snap.counters.push_back(CounterSample{c.name, merged[c.slot]});
    }
    snap.gauges.reserve(gauges_.size());
    for (const GaugeEntry& g : gauges_) {
      snap.gauges.push_back(
          GaugeSample{g.name, g.value.load(std::memory_order_relaxed)});
    }
    const std::size_t n_buckets = boundaries().size() + 1;
    snap.histograms.reserve(histograms_.size());
    for (const HistogramEntry& h : histograms_) {
      HistogramSample s;
      s.name = h.name;
      s.count = merged[h.first_slot];
      s.sum = merged_sums[h.first_slot + 1];
      s.buckets.assign(merged.begin() + h.first_slot + 2,
                       merged.begin() + h.first_slot + 2 + n_buckets);
      s.p50 = quantile_estimate(s.buckets, s.count, 0.50);
      s.p95 = quantile_estimate(s.buckets, s.count, 0.95);
      s.p99 = quantile_estimate(s.buckets, s.count, 0.99);
      snap.histograms.push_back(std::move(s));
    }
    auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
    std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
    return snap;
  }

 private:
  std::size_t allocate_slots(std::size_t n) {
    // Registration is rare (a few dozen metrics, interned once); running
    // out means a runaway dynamic-name call site, which deserves a crash
    // in tests rather than silent slot aliasing.
    const std::size_t first = next_slot_;
    next_slot_ += n;
    if (next_slot_ > kMaxSlots) std::abort();
    return first;
  }

  std::mutex mutex_;
  std::vector<Shard*> shards_;
  std::uint64_t retired_[kMaxSlots] = {};
  bool is_sum_slot_[kMaxSlots] = {};
  std::size_t next_slot_ = 0;
  std::deque<CounterEntry> counters_;
  std::deque<GaugeEntry> gauges_;
  std::deque<HistogramEntry> histograms_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
};

namespace {

// Leaked on purpose: detached daemon threads and thread_local shard
// destructors may touch the registry during process teardown, after
// function-local statics would have been destroyed.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

// One shard per thread, registered on first metric write and folded into
// the retired accumulator when the thread exits.
struct ShardOwner {
  Shard* shard;
  ShardOwner() : shard(new Shard()) { registry().register_shard(shard); }
  ~ShardOwner() { registry().retire_shard(shard); }
};

Shard& local_shard() {
  thread_local ShardOwner owner;
  return *owner.shard;
}

}  // namespace

void Counter::add(std::uint64_t n) noexcept {
  local_shard().slots[slot_].fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(std::int64_t v) noexcept {
  registry().gauge_value(index_).store(v, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t delta) noexcept {
  registry().gauge_value(index_).fetch_add(delta, std::memory_order_relaxed);
}

void Histogram::observe(double v) noexcept {
  const auto& bounds = boundaries();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds.begin());
  Shard& shard = local_shard();
  shard.slots[first_slot_].fetch_add(1, std::memory_order_relaxed);
  // The sum slot holds double bits. Only the owner thread writes it, so
  // the load/store pair cannot race with another writer; the atomic makes
  // the concurrent snapshot read well-defined.
  std::atomic<std::uint64_t>& sum_slot = shard.slots[first_slot_ + 1];
  const double prev = bits_to_double(sum_slot.load(std::memory_order_relaxed));
  sum_slot.store(double_to_bits(prev + v), std::memory_order_relaxed);
  shard.slots[first_slot_ + 2 + bucket].fetch_add(1,
                                                  std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  return registry().intern_counter(name);
}

Gauge& gauge(std::string_view name) { return registry().intern_gauge(name); }

Histogram& histogram(std::string_view name) {
  return registry().intern_histogram(name);
}

Snapshot snapshot() { return registry().make_snapshot(); }

#endif  // !GLVA_NO_METRICS

std::string render_text(const Snapshot& snap) {
  std::string out;
  for (const CounterSample& c : snap.counters) {
    out += "counter   ";
    out += c.name;
    out += " ";
    out += std::to_string(c.value);
    out += "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    out += "gauge     ";
    out += g.name;
    out += " ";
    out += std::to_string(g.value);
    out += "\n";
  }
  for (const HistogramSample& h : snap.histograms) {
    out += "histogram ";
    out += h.name;
    out += " count=";
    out += std::to_string(h.count);
    out += " sum=";
    out += format_number(h.sum);
    out += " p50=";
    out += format_number(h.p50);
    out += " p95=";
    out += format_number(h.p95);
    out += " p99=";
    out += format_number(h.p99);
    out += "\n";
  }
  return out;
}

std::string render_json(const Snapshot& snap) {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const CounterSample& c : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(c.name);
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& g : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(g.name);
    out += "\":";
    out += std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& h : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += json_escape(h.name);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += format_number(h.sum);
    out += ",\"p50\":";
    out += format_number(h.p50);
    out += ",\"p95\":";
    out += format_number(h.p95);
    out += ",\"p99\":";
    out += format_number(h.p99);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::uint64_t b : h.buckets) {
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += std::to_string(b);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace glva::obs
