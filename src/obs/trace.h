#ifndef GLVA_OBS_TRACE_H
#define GLVA_OBS_TRACE_H

// Scoped stage tracer emitting Chrome about:tracing "trace event" JSON
// (docs/OBSERVABILITY.md). Usage:
//
//   void run_stage() {
//     GLVA_SPAN("simulate");
//     ...
//   }
//
// Spans are RAII scopes recorded on destruction into a per-thread buffer
// (one uncontended mutex lock per completed span), so events from any
// number of worker threads interleave without a global hot lock. Tracing
// is off by default: a disabled GLVA_SPAN costs one relaxed atomic load.
// trace_begin()/trace_end() nest; drain_trace() moves out everything
// buffered so far. Timestamps are nanoseconds from a process-stable
// steady-clock epoch, emitted as fractional microseconds in the JSON.
//
// Unlike the metrics registry, the tracer has no GLVA_NO_METRICS variant:
// it is always compiled and purely runtime-gated.

#include <cstdint>
#include <string>
#include <vector>

namespace glva::obs {

struct TraceEvent {
  const char* name;        // static string from the GLVA_SPAN literal
  std::uint64_t ts_ns;     // start, nanoseconds since trace epoch
  std::uint64_t dur_ns;    // duration, nanoseconds
  std::uint32_t tid;       // small per-thread ordinal (1 = first thread)
};

// Refcounted enable switch: nested begin/end pairs keep tracing on until
// the outermost end.
void trace_begin();
void trace_end();
bool trace_enabled() noexcept;

// Moves out every buffered event (all threads), sorted by (ts, longest
// duration first) so parents precede their children.
std::vector<TraceEvent> drain_trace();

// Chrome trace-event JSON array of complete ("ph":"X") events.
std::string render_chrome_trace(const std::vector<TraceEvent>& events);

// Renders and writes events to path; throws util::Error on I/O failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (trace_enabled()) start(name);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (active_) finish();
  }

 private:
  void start(const char* name) noexcept;
  void finish() noexcept;

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

#define GLVA_SPAN_CONCAT2(a, b) a##b
#define GLVA_SPAN_CONCAT(a, b) GLVA_SPAN_CONCAT2(a, b)
#define GLVA_SPAN(name) \
  ::glva::obs::Span GLVA_SPAN_CONCAT(glva_span_, __LINE__)(name)

}  // namespace glva::obs

#endif  // GLVA_OBS_TRACE_H
