#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

#include "util/errors.h"

namespace glva::obs {
namespace {

std::uint64_t now_ns() {
  // Epoch fixed at first use so timestamps stay monotonic across
  // repeated trace_begin()/drain_trace() cycles in one process.
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

struct ThreadBuffer {
  std::mutex mutex;  // owner appends (uncontended); drain steals
  std::vector<TraceEvent> events;
};

class TraceRegistry {
 public:
  void attach(ThreadBuffer* buf) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(buf);
  }

  // Thread exit: move the dying thread's events into the orphan store so
  // spans recorded on short-lived pool threads survive until drain.
  void detach(ThreadBuffer* buf) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.erase(std::remove(buffers_.begin(), buffers_.end(), buf),
                   buffers_.end());
    orphaned_.insert(orphaned_.end(), buf->events.begin(), buf->events.end());
    delete buf;
  }

  std::vector<TraceEvent> drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out = std::move(orphaned_);
    orphaned_.clear();
    for (ThreadBuffer* buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
      buf->events.clear();
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                return a.dur_ns > b.dur_ns;  // parents before children
              });
    return out;
  }

  std::uint32_t next_tid() {
    return next_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  std::mutex mutex_;
  std::vector<ThreadBuffer*> buffers_;
  std::vector<TraceEvent> orphaned_;
  std::atomic<std::uint32_t> next_tid_{0};
};

// Leaked like the metrics registry: thread_local destructors on detached
// threads may run during process teardown.
TraceRegistry& trace_registry() {
  static TraceRegistry* r = new TraceRegistry();
  return *r;
}

std::atomic<int> g_trace_refcount{0};
std::atomic<bool> g_trace_enabled{false};

struct BufferOwner {
  ThreadBuffer* buf;
  std::uint32_t tid;
  BufferOwner() : buf(new ThreadBuffer()), tid(trace_registry().next_tid()) {
    trace_registry().attach(buf);
  }
  ~BufferOwner() { trace_registry().detach(buf); }
};

BufferOwner& local_buffer() {
  thread_local BufferOwner owner;
  return owner;
}

}  // namespace

void trace_begin() {
  trace_registry();  // construct before any Span can race the first attach
  g_trace_refcount.fetch_add(1, std::memory_order_relaxed);
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void trace_end() {
  if (g_trace_refcount.fetch_sub(1, std::memory_order_relaxed) == 1) {
    g_trace_enabled.store(false, std::memory_order_relaxed);
  }
}

bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> drain_trace() { return trace_registry().drain(); }

void Span::start(const char* name) noexcept {
  name_ = name;
  start_ns_ = now_ns();
  active_ = true;
}

void Span::finish() noexcept {
  const std::uint64_t end_ns = now_ns();
  BufferOwner& owner = local_buffer();
  std::lock_guard<std::mutex> lock(owner.buf->mutex);
  owner.buf->events.push_back(
      TraceEvent{name_, start_ns_, end_ns - start_ns_, owner.tid});
}

std::string render_chrome_trace(const std::vector<TraceEvent>& events) {
  // Complete events ("ph":"X") with fractional-microsecond timestamps;
  // chrome://tracing and https://ui.perfetto.dev load this directly.
  std::string out = "[";
  bool first = true;
  char buf[256];
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":1,\"tid\":%u}",
                  e.name, static_cast<double>(e.ts_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.tid);
    out += buf;
  }
  out += "]\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw Error("cannot open trace output file: " + path);
  }
  const std::string body = render_chrome_trace(events);
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  file.flush();
  if (!file) {
    throw Error("failed writing trace output file: " + path);
  }
}

}  // namespace glva::obs
