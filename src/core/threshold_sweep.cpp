#include "core/threshold_sweep.h"

#include "exec/parallel_runner.h"

namespace glva::core {

ThresholdSweepResult threshold_sweep(const circuits::CircuitSpec& spec,
                                     const ExperimentConfig& base_config,
                                     const std::vector<double>& thresholds,
                                     std::size_t jobs) {
  const exec::ParallelRunner runner(jobs);

  ThresholdSweepResult sweep;
  sweep.points = runner.map<ThresholdPoint>(
      thresholds.size(), [&](std::size_t i) {
        ExperimentConfig config = base_config;
        config.threshold = thresholds[i];
        config.input_high_level = -1.0;  // re-apply inputs at the threshold
        return ThresholdPoint{thresholds[i], run_experiment(spec, config)};
      });
  return sweep;
}

ThresholdSweepResult threshold_sweep_redigitize(
    const circuits::CircuitSpec& spec, const ExperimentConfig& base_config,
    const std::vector<double>& thresholds, std::size_t jobs) {
  // One simulation at the base input level...
  ExperimentResult base = run_experiment(spec, base_config);

  const exec::ParallelRunner runner(jobs);
  ThresholdSweepResult sweep;
  sweep.points = runner.map<ThresholdPoint>(
      thresholds.size(), [&](std::size_t i) {
        ExperimentConfig config = base_config;
        config.threshold = thresholds[i];
        config.input_high_level = base_config.high_level();  // drive unchanged
        // ...re-digitized per threshold (pure analysis, no RNG involved).
        ExperimentResult point = reanalyze(spec, config, base.sweep);
        point.simulate_seconds = 0.0;  // shared simulation, not re-run
        return ThresholdPoint{thresholds[i], std::move(point)};
      });
  return sweep;
}

}  // namespace glva::core
