#include "core/threshold_sweep.h"

#include <chrono>

#include "core/adc.h"
#include "exec/parallel_runner.h"
#include "util/timer.h"

namespace glva::core {

namespace {

using util::seconds_since;

/// Give every point of a spilling sweep its own .glvt file: the points
/// share the base seed (common random numbers), so the default
/// "<circuit>-s<seed>" stem would collide.
ExperimentConfig point_config(const circuits::CircuitSpec& spec,
                              const ExperimentConfig& base_config,
                              double threshold, std::size_t point) {
  ExperimentConfig config = base_config;
  config.threshold = threshold;
  if (config.sink == store::SinkKind::kSpill ||
      (config.sink == store::SinkKind::kDigitize &&
       !config.spill_dir.empty())) {
    config.spill_stem =
        spill_stem_for(spec, base_config) + "-p" + std::to_string(point);
  }
  return config;
}

/// Collecting observer backing the materializing overloads: the streaming
/// commit order is point order, so push_back reassembles the vector the
/// old map-based implementation produced, bit-identically.
ThresholdPointObserver collect_into(ThresholdSweepResult& sweep,
                                    std::size_t count) {
  sweep.points.reserve(count);
  return [&sweep](std::size_t, ThresholdPoint&& point) {
    sweep.points.push_back(std::move(point));
  };
}

}  // namespace

void threshold_sweep(const circuits::CircuitSpec& spec,
                     const ExperimentConfig& base_config,
                     const std::vector<double>& thresholds,
                     const exec::ParallelRunner& runner,
                     const ThresholdPointObserver& observer) {
  runner.run_reduce<ThresholdPoint>(
      thresholds.size(),
      [&](std::size_t i) {
        ExperimentConfig config =
            point_config(spec, base_config, thresholds[i], i);
        config.input_high_level = -1.0;  // re-apply inputs at the threshold
        return ThresholdPoint{thresholds[i], run_experiment(spec, config)};
      },
      [&](std::size_t i, ThresholdPoint&& point) {
        if (observer) observer(i, std::move(point));
        // `point` is destroyed here: memory stays bounded by the runner's
        // in-flight window, not the grid size.
      });
}

ThresholdSweepResult threshold_sweep(const circuits::CircuitSpec& spec,
                                     const ExperimentConfig& base_config,
                                     const std::vector<double>& thresholds,
                                     std::size_t jobs) {
  ThresholdSweepResult sweep;
  threshold_sweep(spec, base_config, thresholds, exec::ParallelRunner(jobs),
                  collect_into(sweep, thresholds.size()));
  return sweep;
}

void threshold_sweep_redigitize(const circuits::CircuitSpec& spec,
                                const ExperimentConfig& base_config,
                                const std::vector<double>& thresholds,
                                const exec::ParallelRunner& runner,
                                const ThresholdPointObserver& observer) {
  // One simulation at the base input level... The base run must keep the
  // analog trace around for re-digitization, so a digitize sink (which
  // never materializes it) falls back to the bit-identical memory path.
  ExperimentConfig base_run_config = base_config;
  if (base_run_config.sink == store::SinkKind::kDigitize) {
    base_run_config.sink = store::SinkKind::kMemory;
  }
  ExperimentResult base = run_experiment(spec, base_run_config);

  const bool packed = base_config.backend == AnalysisBackend::kPacked &&
                      spec.input_ids.size() <= kPackedAutoInputLimit;
  if (!packed) {
    // Reference (or beyond-auto-limit) path: plain per-point re-analysis.
    runner.run_reduce<ThresholdPoint>(
        thresholds.size(),
        [&](std::size_t i) {
          ExperimentConfig config = base_config;
          config.threshold = thresholds[i];
          config.input_high_level = base_config.high_level();
          ExperimentResult point = reanalyze(spec, config, base.sweep);
          point.simulate_seconds = 0.0;  // shared simulation, not re-run
          return ThresholdPoint{thresholds[i], std::move(point)};
        },
        [&](std::size_t i, ThresholdPoint&& point) {
          if (observer) observer(i, std::move(point));
        });
    return;
  }

  // Packed path with index reuse: the inputs are *clamped*, so their
  // digitized bits only change when the threshold crosses the drive level
  // — for the usual dense sweep below the input level, every point
  // digitizes the inputs identically. Digitize the input planes for every
  // point (fanned out over the runner), group points by plane equality,
  // and build one CombinationIndex (the expensive 2^N-mask pass) per
  // distinct group; each point then only re-digitizes the output stream.
  // Results are bit-identical to the per-point reanalyze (the test suite
  // pins this).
  std::vector<std::vector<logic::BitStream>> point_inputs =
      runner.map<std::vector<logic::BitStream>>(
          thresholds.size(), [&](std::size_t i) {
            std::vector<logic::BitStream> inputs;
            inputs.reserve(spec.input_ids.size());
            for (const auto& id : spec.input_ids) {
              inputs.push_back(
                  adc_packed(base.sweep.trace.series(id), thresholds[i]));
            }
            return inputs;
          });

  struct InputClass {
    std::vector<logic::BitStream> inputs;
    logic::CombinationIndex index;
  };
  std::vector<InputClass> classes;
  std::vector<std::size_t> class_of(thresholds.size(), 0);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    std::size_t match = classes.size();
    for (std::size_t k = 0; k < classes.size(); ++k) {
      if (classes[k].inputs == point_inputs[i]) {
        match = k;
        break;
      }
    }
    if (match == classes.size()) {
      logic::CombinationIndex index(point_inputs[i]);
      classes.push_back(
          InputClass{std::move(point_inputs[i]), std::move(index)});
    }
    // Duplicates are dropped as soon as they are classified, so the
    // P×N-plane transient of the parallel digitization decays to one
    // plane set per *class* before the analysis fan-out below.
    point_inputs[i] = {};
    class_of[i] = match;
  }
  point_inputs.clear();
  point_inputs.shrink_to_fit();

  runner.run_reduce<ThresholdPoint>(
      thresholds.size(),
      [&](std::size_t i) {
        ExperimentConfig config = base_config;
        config.threshold = thresholds[i];
        config.input_high_level = base_config.high_level();

        ExperimentResult point;
        point.circuit_name = spec.name;
        point.config = config;
        point.simulate_seconds = 0.0;  // shared simulation, not re-run

        LogicAnalyzer analyzer(
            AnalyzerConfig{config.threshold, config.fov_ud, config.backend});
        const auto analyze_start = std::chrono::steady_clock::now();
        const logic::BitStream output = adc_packed(
            base.sweep.trace.series(spec.output_id), thresholds[i]);
        point.extraction = analyzer.analyze_packed_shared(
            classes[class_of[i]].index, output, spec.input_ids,
            spec.output_id);
        point.analyze_seconds = seconds_since(analyze_start);

        point.verification = verify(point.extraction, spec.expected);
        return ThresholdPoint{thresholds[i], std::move(point)};
      },
      [&](std::size_t i, ThresholdPoint&& point) {
        if (observer) observer(i, std::move(point));
      });
}

ThresholdSweepResult threshold_sweep_redigitize(
    const circuits::CircuitSpec& spec, const ExperimentConfig& base_config,
    const std::vector<double>& thresholds, std::size_t jobs) {
  ThresholdSweepResult sweep;
  threshold_sweep_redigitize(spec, base_config, thresholds,
                             exec::ParallelRunner(jobs),
                             collect_into(sweep, thresholds.size()));
  return sweep;
}

}  // namespace glva::core
