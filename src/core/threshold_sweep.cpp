#include "core/threshold_sweep.h"

namespace glva::core {

ThresholdSweepResult threshold_sweep(const circuits::CircuitSpec& spec,
                                     const ExperimentConfig& base_config,
                                     const std::vector<double>& thresholds) {
  ThresholdSweepResult sweep;
  for (double threshold : thresholds) {
    ExperimentConfig config = base_config;
    config.threshold = threshold;
    config.input_high_level = -1.0;  // re-apply inputs at the threshold
    sweep.points.push_back(
        ThresholdPoint{threshold, run_experiment(spec, config)});
  }
  return sweep;
}

ThresholdSweepResult threshold_sweep_redigitize(
    const circuits::CircuitSpec& spec, const ExperimentConfig& base_config,
    const std::vector<double>& thresholds) {
  // One simulation at the base input level...
  ExperimentResult base = run_experiment(spec, base_config);

  ThresholdSweepResult sweep;
  for (double threshold : thresholds) {
    ExperimentConfig config = base_config;
    config.threshold = threshold;
    config.input_high_level = base_config.high_level();  // drive unchanged
    // ...re-digitized per threshold.
    ExperimentResult point = reanalyze(spec, config, base.sweep);
    point.simulate_seconds = 0.0;  // shared simulation, not re-run
    sweep.points.push_back(ThresholdPoint{threshold, std::move(point)});
  }
  return sweep;
}

}  // namespace glva::core
