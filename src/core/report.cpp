#include "core/report.h"

#include "core/verifier.h"
#include "util/ascii_chart.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/text_table.h"

namespace glva::core {

namespace {

const char* verdict_name(CaseVerdict verdict) {
  switch (verdict) {
    case CaseVerdict::kLow: return "low";
    case CaseVerdict::kHigh: return "HIGH";
    case CaseVerdict::kUnstable: return "unstable";
    case CaseVerdict::kUnobserved: return "unobserved";
  }
  return "?";
}

std::string combination_label(const ExtractionResult& extraction,
                              std::size_t combination) {
  return extraction.extracted().combination_label(combination);
}

/// One analytics row per combination, optionally prefixed with a
/// replicate index — the single source of the analytics CSV column set
/// shared by analytics_csv and ensemble_analytics_csv.
void append_analytics_rows(util::CsvWriter& csv,
                           const ExtractionResult& extraction,
                           const std::string& replicate_prefix) {
  for (std::size_t c = 0; c < extraction.variation.records.size(); ++c) {
    const auto& record = extraction.variation.records[c];
    const auto& outcome = extraction.construction.outcomes[c];
    std::vector<std::string> row;
    if (!replicate_prefix.empty()) row.push_back(replicate_prefix);
    row.push_back(combination_label(extraction, c));
    row.push_back(std::to_string(record.case_count));
    row.push_back(std::to_string(record.high_count));
    row.push_back(std::to_string(record.variation_count));
    row.push_back(util::format_double(record.fov_est));
    row.push_back(outcome.filter1_pass ? "1" : "0");
    row.push_back(outcome.filter2_pass ? "1" : "0");
    row.push_back(verdict_name(outcome.verdict));
    csv.add_row(row);
  }
}

}  // namespace

std::string render_analytics_table(const ExtractionResult& extraction) {
  util::TextTable table({"case", "Case_I", "High_O", "Var_O", "FOV_EST",
                         "eq(1)", "eq(2)", "verdict"});
  for (std::size_t c = 1; c <= 6; ++c) {
    table.set_align(c, util::TextTable::Align::kRight);
  }
  for (std::size_t c = 0; c < extraction.variation.records.size(); ++c) {
    const auto& record = extraction.variation.records[c];
    const auto& outcome = extraction.construction.outcomes[c];
    table.add_row({combination_label(extraction, c),
                   std::to_string(record.case_count),
                   std::to_string(record.high_count),
                   std::to_string(record.variation_count),
                   util::format_double(record.fov_est, 4),
                   record.case_count ? (outcome.filter1_pass ? "pass" : "FAIL") : "-",
                   record.case_count ? (outcome.filter2_pass ? "pass" : "FAIL") : "-",
                   verdict_name(outcome.verdict)});
  }
  return table.str();
}

std::string render_analytics_bars(const ExtractionResult& extraction) {
  std::vector<std::string> labels;
  std::vector<double> case_counts;
  std::vector<double> high_counts;
  std::vector<double> variation_counts;
  for (std::size_t c = 0; c < extraction.variation.records.size(); ++c) {
    const auto& record = extraction.variation.records[c];
    std::string label = combination_label(extraction, c);
    if (extraction.construction.outcomes[c].verdict == CaseVerdict::kHigh) {
      label += " *";  // the paper highlights expected-high combinations
    }
    labels.push_back(label);
    case_counts.push_back(static_cast<double>(record.case_count));
    high_counts.push_back(static_cast<double>(record.high_count));
    variation_counts.push_back(static_cast<double>(record.variation_count));
  }
  std::string out;
  out += util::render_bar_chart("Case_I (occurrences per input combination)",
                                labels, case_counts);
  out += util::render_bar_chart("High_O (logic-1 output samples)", labels,
                                high_counts);
  out += util::render_bar_chart("Var_O (output variations)", labels,
                                variation_counts);
  return out;
}

std::string render_experiment_summary(const ExperimentResult& result,
                                      const logic::TruthTable& expected,
                                      bool timings) {
  std::string out;
  out += "circuit:    " + result.circuit_name + "\n";
  out += "threshold:  " +
         util::format_double(result.config.threshold, 6) + " molecules, FOV_UD " +
         util::format_double(result.config.fov_ud, 4) + "\n";
  out += "expression: " + result.extraction.output_name + " = " +
         result.extraction.expression() + "\n";
  out += "fitness:    " + util::format_double(result.extraction.fitness(), 6) +
         " %\n";
  out += "verify:     " + summarize(result.verification, expected) + "\n";
  if (timings) {
    out += "timing:     simulate " +
           util::format_double(result.simulate_seconds, 3) + " s, analyze " +
           util::format_double(result.analyze_seconds, 3) + " s\n";
  }
  return out;
}

std::string analytics_csv(const ExtractionResult& extraction) {
  util::CsvWriter csv;
  csv.row("case", "case_count", "high_count", "variation_count", "fov_est",
          "filter1_pass", "filter2_pass", "verdict");
  append_analytics_rows(csv, extraction, "");
  return csv.str();
}

std::string ensemble_analytics_csv_header() {
  util::CsvWriter csv;
  csv.row("replicate", "case", "case_count", "high_count", "variation_count",
          "fov_est", "filter1_pass", "filter2_pass", "verdict");
  return csv.str();
}

std::string ensemble_analytics_csv_rows(std::size_t replicate,
                                        const ExtractionResult& extraction) {
  util::CsvWriter csv;
  append_analytics_rows(csv, extraction, std::to_string(replicate));
  return csv.str();
}

std::string ensemble_confidence_csv(const EnsembleResult& ensemble) {
  util::CsvWriter csv;
  csv.row("metric", "mean", "stddev", "ci95_low", "ci95_high");
  const auto metric_row = [&csv](const char* name,
                                 const MeanConfidence& stats) {
    csv.row(name, util::format_double(stats.mean),
            util::format_double(stats.stddev),
            util::format_double(stats.lower()),
            util::format_double(stats.upper()));
  };
  metric_row("pfobe_percent", ensemble.pfobe);
  metric_row("wrong_states", ensemble.wrong_states);
  return csv.str();
}

}  // namespace glva::core
