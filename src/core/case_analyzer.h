#pragma once

#include <cstddef>
#include <vector>

#include "core/adc.h"

/// The CaseAnalyzer sub-procedure of Algorithm 1 (line 5): "analyzes the
/// number of times each input combination occurs and logs their
/// corresponding output binary data streams".
namespace glva::core {

/// Per-input-combination observation record.
struct CaseRecord {
  std::size_t combination = 0;  ///< index, input 0 = MSB (paper's "case")
  std::size_t case_count = 0;   ///< Case_I[i]: samples with this combination
  /// The output data stream logged while this combination was applied, in
  /// sample order (its length always equals case_count).
  std::vector<bool> output_stream;
};

/// Case analysis over all 2^N combinations (records with case_count == 0
/// are kept so downstream stages can report unobserved combinations).
struct CaseAnalysis {
  std::size_t input_count = 0;
  std::vector<CaseRecord> cases;  ///< size 2^input_count, indexed by combination
};

/// Classify every sample by its digitized input combination and collect the
/// per-combination output streams. Postcondition: cases.size() ==
/// 2^input_count and the case_count values sum to data.sample_count().
/// Throws glva::InvalidArgument when input streams have mismatched lengths,
/// there are no inputs, or there are more than 16 of them.
[[nodiscard]] CaseAnalysis analyze_cases(const DigitalData& data);

}  // namespace glva::core
