#pragma once

#include <cstddef>
#include <vector>

#include "core/adc.h"
#include "logic/combination_index.h"

/// The CaseAnalyzer sub-procedure of Algorithm 1 (line 5): "analyzes the
/// number of times each input combination occurs and logs their
/// corresponding output binary data streams".
///
/// Two implementations share this header: `analyze_cases` (reference —
/// per-sample branching, materialized per-combination `vector<bool>`
/// streams) and `analyze_cases_packed` (production — word-parallel
/// `logic::CombinationIndex` masks over bit-packed streams, no
/// materialized per-combination streams). Their Case_I counts are
/// identical by construction; the equivalence is pinned in
/// `tests/test_core.cpp` and `tests/test_bitstream.cpp`.
namespace glva::core {

/// Per-input-combination observation record.
struct CaseRecord {
  std::size_t combination = 0;  ///< index, input 0 = MSB (paper's "case")
  std::size_t case_count = 0;   ///< Case_I[i]: samples with this combination
  /// The output data stream logged while this combination was applied, in
  /// sample order (its length always equals case_count). Only the
  /// reference `analyze_cases` materializes it; the packed path keeps the
  /// stream implicit in (mask, output) pairs and leaves this empty.
  std::vector<bool> output_stream;
};

/// Case analysis over all 2^N combinations (records with case_count == 0
/// are kept so downstream stages can report unobserved combinations).
struct CaseAnalysis {
  std::size_t input_count = 0;
  std::vector<CaseRecord> cases;  ///< size 2^input_count, indexed by combination
};

/// Classify every sample by its digitized input combination and collect the
/// per-combination output streams — the reference implementation, one
/// branch per sample. Postcondition: cases.size() == 2^input_count and the
/// case_count values sum to data.sample_count(). Throws
/// glva::InvalidArgument when input streams have mismatched lengths, there
/// are no inputs, or there are more than 16 of them. O(input_count ·
/// samples) time, O(samples) additional bytes for the logged streams.
[[nodiscard]] CaseAnalysis analyze_cases(const DigitalData& data);

/// Packed case analysis: the combination index (per-combination selection
/// masks + Case_I popcounts) plus the packed output stream the masks
/// select from. Together they carry exactly the information of
/// `CaseAnalysis` — combination c's logged output stream is `output`
/// compacted by `index.mask(c)` — in 2^N + 1 packed streams.
struct PackedCaseAnalysis {
  std::size_t input_count = 0;
  logic::CombinationIndex index;  ///< sample-selection masks, Case_I counts
  logic::BitStream output;        ///< the digitized output stream

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return output.size();
  }
};

/// Classify every sample via word-parallel masks — the packed twin of
/// `analyze_cases`. Same validation (throws glva::InvalidArgument for no
/// inputs, more than logic::CombinationIndex::kMaxInputs inputs, or
/// mismatched stream lengths); postcondition: index.count(c) equals the
/// reference case_count for every combination. O(2^N · N · samples / 64)
/// time — for the paper's N <= 3 circuits, ~64× fewer operations than the
/// reference.
[[nodiscard]] PackedCaseAnalysis analyze_cases_packed(
    const PackedDigitalData& data);

/// Project a packed analysis onto the reference record layout: combination
/// ids and Case_I counts, with `output_stream` left empty (the packed path
/// never materializes per-combination streams). Used to fill
/// `ExtractionResult::cases` under the packed backend. O(2^N).
[[nodiscard]] CaseAnalysis case_counts(const PackedCaseAnalysis& analysis);

/// Same projection from a bare combination index — the shared-index path
/// of `LogicAnalyzer::analyze_packed_shared`, where the index is borrowed
/// (e.g. reused across the threshold points of a re-digitizing sweep)
/// instead of owned by a PackedCaseAnalysis. O(2^N).
[[nodiscard]] CaseAnalysis case_counts(const logic::CombinationIndex& index);

}  // namespace glva::core
