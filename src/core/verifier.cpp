#include "core/verifier.h"

#include "util/errors.h"

namespace glva::core {

VerificationReport verify(const ExtractionResult& extraction,
                          const logic::TruthTable& expected) {
  if (expected.input_count() != extraction.input_count) {
    throw InvalidArgument("verify: input counts differ");
  }
  VerificationReport report;
  report.fitness_percent = extraction.fitness();

  // Word-parallel disagreement scan over the packed tables; only the
  // (typically zero or two) wrong states are visited individually.
  const logic::TruthTable& extracted = extraction.extracted();
  const std::vector<std::size_t> differing = extracted.differing_rows(expected);
  report.wrong_states.reserve(differing.size());
  for (const std::size_t c : differing) {
    WrongState wrong;
    wrong.combination = c;
    wrong.expected_high = expected.output(c);
    wrong.verdict = extraction.construction.outcomes[c].verdict;
    report.wrong_states.push_back(wrong);
  }
  report.matches = report.wrong_states.empty();
  report.error_percent = 100.0 *
                         static_cast<double>(report.wrong_states.size()) /
                         static_cast<double>(expected.row_count());
  return report;
}

std::string summarize(const VerificationReport& report,
                      const logic::TruthTable& expected) {
  if (report.matches) return "MATCH";
  std::string out = std::to_string(report.wrong_state_count()) +
                    " wrong state(s):";
  for (const auto& wrong : report.wrong_states) {
    out += ' ';
    out += expected.combination_label(wrong.combination);
    out += wrong.expected_high ? "->0" : "->1";
    switch (wrong.verdict) {
      case CaseVerdict::kUnstable:
        out += "(unstable)";
        break;
      case CaseVerdict::kUnobserved:
        out += "(unobserved)";
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace glva::core
