#pragma once

#include <cstddef>
#include <vector>

#include "core/case_analyzer.h"

/// The VariationAnalyzer sub-procedure of Algorithm 1 (line 6): for each
/// input combination it "calculates the number of times a logic-1 appears"
/// (HIGH_O) and "how many times the output varies, i.e. changing 0-to-1 and
/// 1-to-0" (O_Var).
namespace glva::core {

/// Per-combination stability statistics.
struct VariationRecord {
  std::size_t combination = 0;
  std::size_t case_count = 0;       ///< Case_I[i], copied for convenience
  std::size_t high_count = 0;       ///< HIGH_O[i]: logic-1 samples
  std::size_t variation_count = 0;  ///< O_Var[i]: 0->1 and 1->0 transitions
  /// FOV_EST[i] = O_Var[i] / Case_I[i] (equation (1)); 0 when unobserved.
  double fov_est = 0.0;
};

struct VariationAnalysis {
  std::size_t input_count = 0;
  std::vector<VariationRecord> records;  ///< indexed by combination
};

/// Count highs and transitions within each per-combination output stream.
/// Transitions are counted inside the logged stream exactly as the paper's
/// example does (Figure 2(b): stream "0...010...01..1" for case 00 has
/// O_Var = 2). Postcondition: records.size() == cases.cases.size(), in the
/// same combination order, with fov_est in [0, 1) wherever case_count > 0.
[[nodiscard]] VariationAnalysis analyze_variation(const CaseAnalysis& cases);

}  // namespace glva::core
