#pragma once

#include <cstddef>
#include <vector>

#include "core/case_analyzer.h"

/// The VariationAnalyzer sub-procedure of Algorithm 1 (line 6): for each
/// input combination it "calculates the number of times a logic-1 appears"
/// (HIGH_O) and "how many times the output varies, i.e. changing 0-to-1 and
/// 1-to-0" (O_Var).
///
/// Like the CaseAnalyzer, it exists in a reference form (per-bit loop over
/// the materialized streams) and a packed form (popcounts over
/// mask-selected words). Both produce bit-identical VariationAnalysis
/// values — HIGH_O, O_Var, and Case_I are integers, and FOV_EST divides
/// the same integers in the same order.
namespace glva::core {

/// Per-combination stability statistics.
struct VariationRecord {
  std::size_t combination = 0;
  std::size_t case_count = 0;       ///< Case_I[i], copied for convenience
  std::size_t high_count = 0;       ///< HIGH_O[i]: logic-1 samples
  std::size_t variation_count = 0;  ///< O_Var[i]: 0->1 and 1->0 transitions
  /// FOV_EST[i] = O_Var[i] / Case_I[i] (equation (1)); 0 when unobserved.
  double fov_est = 0.0;
};

struct VariationAnalysis {
  std::size_t input_count = 0;
  std::vector<VariationRecord> records;  ///< indexed by combination
};

/// Count highs and transitions within each per-combination output stream —
/// the reference implementation, one pass over every logged bit.
/// Transitions are counted inside the logged stream exactly as the paper's
/// example does (Figure 2(b): stream "0...010...01..1" for case 00 has
/// O_Var = 2). Postcondition: records.size() == cases.cases.size(), in the
/// same combination order, with fov_est in [0, 1) wherever case_count > 0.
/// O(samples) total across combinations.
[[nodiscard]] VariationAnalysis analyze_variation(const CaseAnalysis& cases);

/// Packed twin of `analyze_variation`: HIGH_O[c] =
/// popcount(mask(c) & output) and O_Var[c] = masked_transition_count(
/// mask(c), output) — the compacted-stream transition count, so a
/// combination interrupted and resumed by the sweep still compares its
/// last pre-gap sample against its first post-gap sample, exactly like the
/// reference's logged stream. Bit-identical to analyze_variation(
/// analyze_cases(...)) on the same digitized data. O(2^N · samples / 64).
[[nodiscard]] VariationAnalysis analyze_variation_packed(
    const PackedCaseAnalysis& analysis);

/// Shared-index form: identical counting over a borrowed index and output
/// stream (the index must have been built from this output's digitized
/// input streams — same sample count). Lets a re-digitizing threshold
/// sweep reuse one index across points without copying its 2^N masks.
/// Throws glva::InvalidArgument when output.size() != index.sample_count().
[[nodiscard]] VariationAnalysis analyze_variation_packed(
    const logic::CombinationIndex& index, const logic::BitStream& output);

}  // namespace glva::core
