#pragma once

#include <string>
#include <vector>

#include "core/variation_analyzer.h"
#include "logic/truth_table.h"

/// Baseline extractors the paper's two-filter design is compared against.
/// The paper argues (Figures 2 and 3) that naive rules mis-extract logic:
/// "one may end up estimating the logical behavior of this circuit to be an
/// XNOR gate if the simulation data is not filtered out correctly", and
/// "this filtration technique may also produce wrong results if not applied
/// together with the first technique".
namespace glva::core {

/// Which filtering discipline a baseline applies.
enum class BaselineRule {
  /// A combination is high if the output was ever high during it — the
  /// unfiltered reading that turns the Figure 2 AND-gate data into XNOR.
  kAnyHigh,
  /// Majority rule only (equation (2) alone) — accepts the oscillatory
  /// Figure 3 stream the stability filter exists to reject.
  kMajorityOnly,
  /// Stability rule only (equation (1) alone) — accepts stable-but-low
  /// glitch streams, the other half of the Figure 2 failure.
  kStabilityOnly,
  /// Both filters: the paper's algorithm (for side-by-side ablation runs).
  kBothFilters,
};

[[nodiscard]] std::string baseline_rule_name(BaselineRule rule);

/// Extract a truth table from variation statistics under the given rule
/// (fov_ud is the acceptable variation fraction of equation (1); it is only
/// consulted by rules that use the stability filter). Combinations never
/// observed in the data extract as logic-0 under every rule — the baselines
/// have no don't-care notion, unlike the full pipeline's minimizer.
[[nodiscard]] logic::TruthTable extract_with_rule(
    const VariationAnalysis& variation, BaselineRule rule, double fov_ud);

}  // namespace glva::core
