#pragma once

#include <functional>
#include <vector>

#include "core/experiment.h"
#include "exec/parallel_runner.h"

/// Threshold-robustness analysis — the paper's Figure 5 experiment: re-run
/// the same circuit with the threshold (and hence the applied input level)
/// set to different values and compare the logic each extracts. "It is
/// shown experimentally that the circuit may not behave as expected if the
/// circuit parameter(s), like threshold value, are varied."
namespace glva::core {

/// One threshold's outcome.
struct ThresholdPoint {
  double threshold = 0.0;
  ExperimentResult result;
};

struct ThresholdSweepResult {
  std::vector<ThresholdPoint> points;
};

/// Tap on a sweep's ordered commit stream: invoked once per threshold
/// point, in strict point order, on the calling thread, with the point
/// just before it is released — the sweep analogue of
/// core::ReplicateObserver. Consumers fold what they need (a table row, a
/// CSV record) and drop the rest, so a dense Fig.-5 grid never
/// materializes every point's ExperimentResult at once.
using ThresholdPointObserver =
    std::function<void(std::size_t index, ThresholdPoint&& point)>;

/// Run the full experiment once per threshold (molecules). Each run
/// re-applies the inputs at that threshold value (the paper's methodology
/// couples the two), so the circuit is re-simulated, not merely
/// re-digitized. Points come back in the order `thresholds` lists them; an
/// empty list yields an empty result.
///
/// Each point is one job of the exec/ runtime: up to `jobs` points are
/// simulated concurrently (0 = one per hardware thread), each on its own
/// `sim::Rng` constructed from the job's config, and committed in point
/// order — results are bit-identical for every jobs value. All points
/// deliberately share base_config.seed (common random numbers): a sweep
/// compares the *threshold parameter*, so reusing one stochastic
/// realization across points isolates its effect; use core::run_ensemble
/// for independent replicates.
[[nodiscard]] ThresholdSweepResult threshold_sweep(
    const circuits::CircuitSpec& spec, const ExperimentConfig& base_config,
    const std::vector<double>& thresholds, std::size_t jobs = 1);

/// Streaming form of threshold_sweep: points are delivered to `observer`
/// through exec::ParallelRunner::run_reduce's ordered commit stream and
/// then destroyed, so resident memory is bounded by the runner's in-flight
/// window however many thresholds the grid has. The materializing overload
/// above is this function plus a collecting observer (bit-identical).
/// `runner` may borrow a persistent pool (daemon mode) or own per-call
/// pools; results are identical either way.
void threshold_sweep(const circuits::CircuitSpec& spec,
                     const ExperimentConfig& base_config,
                     const std::vector<double>& thresholds,
                     const exec::ParallelRunner& runner,
                     const ThresholdPointObserver& observer);

/// Variant that keeps one simulation (at the base config's input level)
/// and only re-digitizes at each threshold — an ablation that isolates the
/// ADC's contribution to Figure 5's effect from the input-drive
/// contribution. The shared simulation uses base_config.seed directly; the
/// per-threshold re-analyses are fanned out across `jobs` workers. Under
/// the default packed backend the clamped input streams digitize
/// identically for every threshold at or below the drive level, so after
/// a parallel per-point input digitization the points are grouped by
/// their digitized input planes and share one `logic::CombinationIndex`
/// per group — the 2^N-mask construction (the expensive part) runs once
/// per *group*, and each point's job re-digitizes only the output stream
/// before the word-parallel stages. Results are bit-identical to a
/// per-point re-analysis. A
/// digitize sink on the base config falls back to the (bit-identical)
/// memory path for the shared run, which must keep the analog trace.
[[nodiscard]] ThresholdSweepResult threshold_sweep_redigitize(
    const circuits::CircuitSpec& spec, const ExperimentConfig& base_config,
    const std::vector<double>& thresholds, std::size_t jobs = 1);

/// Streaming form of threshold_sweep_redigitize (same observer contract as
/// the streaming threshold_sweep).
void threshold_sweep_redigitize(const circuits::CircuitSpec& spec,
                                const ExperimentConfig& base_config,
                                const std::vector<double>& thresholds,
                                const exec::ParallelRunner& runner,
                                const ThresholdPointObserver& observer);

}  // namespace glva::core
