#pragma once

#include <vector>

#include "core/experiment.h"

/// Threshold-robustness analysis — the paper's Figure 5 experiment: re-run
/// the same circuit with the threshold (and hence the applied input level)
/// set to different values and compare the logic each extracts. "It is
/// shown experimentally that the circuit may not behave as expected if the
/// circuit parameter(s), like threshold value, are varied."
namespace glva::core {

/// One threshold's outcome.
struct ThresholdPoint {
  double threshold = 0.0;
  ExperimentResult result;
};

struct ThresholdSweepResult {
  std::vector<ThresholdPoint> points;
};

/// Run the full experiment once per threshold (molecules). Each run
/// re-applies the inputs at that threshold value (the paper's methodology
/// couples the two), so the circuit is re-simulated, not merely
/// re-digitized. Points come back in the order `thresholds` lists them; an
/// empty list yields an empty result.
[[nodiscard]] ThresholdSweepResult threshold_sweep(
    const circuits::CircuitSpec& spec, const ExperimentConfig& base_config,
    const std::vector<double>& thresholds);

/// Variant that keeps one simulation (at the base config's input level)
/// and only re-digitizes at each threshold — an ablation that isolates the
/// ADC's contribution to Figure 5's effect from the input-drive
/// contribution.
[[nodiscard]] ThresholdSweepResult threshold_sweep_redigitize(
    const circuits::CircuitSpec& spec, const ExperimentConfig& base_config,
    const std::vector<double>& thresholds);

}  // namespace glva::core
