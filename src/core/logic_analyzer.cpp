#include "core/logic_analyzer.h"

#include "util/errors.h"

namespace glva::core {

LogicAnalyzer::LogicAnalyzer(AnalyzerConfig config) : config_(config) {
  if (config_.threshold <= 0.0) {
    throw InvalidArgument("LogicAnalyzer: threshold must be positive");
  }
  if (config_.fov_ud <= 0.0 || config_.fov_ud > 1.0) {
    throw InvalidArgument("LogicAnalyzer: FOV_UD must be in (0, 1]");
  }
}

ExtractionResult LogicAnalyzer::analyze(
    const sim::Trace& trace, const std::vector<std::string>& input_ids,
    const std::string& output_id) const {
  // Line 4 of Algorithm 1: analog-to-digital conversion of the chosen I/O
  // species.
  DigitalData data = digitize(trace, input_ids, output_id, config_.threshold);
  return analyze_digital(std::move(data), input_ids, output_id);
}

ExtractionResult LogicAnalyzer::analyze_digital(
    const DigitalData& data, std::vector<std::string> input_names,
    std::string output_name) const {
  ExtractionResult result;
  result.input_count = data.input_count();
  result.input_names = input_names;
  result.output_name = std::move(output_name);
  result.config = config_;

  // Line 5: CaseAnalyzer.
  result.cases = analyze_cases(data);
  // Line 6: VariationAnalyzer.
  result.variation = analyze_variation(result.cases);
  // Line 7: ConstBoolExpr (filters, expression, PFoBE).
  result.construction = construct_bool_expr(result.variation, config_.fov_ud,
                                            std::move(input_names));
  return result;
}

}  // namespace glva::core
