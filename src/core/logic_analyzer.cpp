#include "core/logic_analyzer.h"

#include "util/errors.h"

namespace glva::core {

const char* analysis_backend_name(AnalysisBackend backend) {
  return backend == AnalysisBackend::kPacked ? "packed" : "reference";
}

AnalysisBackend parse_analysis_backend(const std::string& name) {
  if (name == "packed") return AnalysisBackend::kPacked;
  if (name == "reference") return AnalysisBackend::kReference;
  throw InvalidArgument("unknown analysis backend '" + name +
                        "' (expected packed | reference)");
}

LogicAnalyzer::LogicAnalyzer(AnalyzerConfig config) : config_(config) {
  if (config_.threshold <= 0.0) {
    throw InvalidArgument("LogicAnalyzer: threshold must be positive");
  }
  if (config_.fov_ud <= 0.0 || config_.fov_ud > 1.0) {
    throw InvalidArgument("LogicAnalyzer: FOV_UD must be in (0, 1]");
  }
}

namespace {

/// Packed cost grows as 2^N; beyond the auto limit the reference path is
/// both faster and far lighter on memory (see kPackedAutoInputLimit).
bool packed_applies(std::size_t input_count) {
  return input_count <= kPackedAutoInputLimit;
}

}  // namespace

ExtractionResult LogicAnalyzer::analyze(
    const sim::Trace& trace, const std::vector<std::string>& input_ids,
    const std::string& output_id) const {
  if (config_.backend == AnalysisBackend::kPacked &&
      packed_applies(input_ids.size())) {
    // Line 4 of Algorithm 1 on the packed path: digitize straight into
    // bit-packed streams, no vector<bool> intermediate.
    return analyze_packed(
        digitize_packed(trace, input_ids, output_id, config_.threshold),
        input_ids, output_id);
  }
  // Line 4 of Algorithm 1: analog-to-digital conversion of the chosen I/O
  // species (reference representation).
  DigitalData data = digitize(trace, input_ids, output_id, config_.threshold);
  return analyze_digital(std::move(data), input_ids, output_id);
}

ExtractionResult LogicAnalyzer::analyze_digital(
    const DigitalData& data, std::vector<std::string> input_names,
    std::string output_name) const {
  if (config_.backend == AnalysisBackend::kPacked &&
      packed_applies(data.input_count())) {
    return analyze_packed(pack(data), std::move(input_names),
                          std::move(output_name));
  }

  ExtractionResult result;
  result.input_count = data.input_count();
  result.input_names = input_names;
  result.output_name = std::move(output_name);
  result.config = config_;

  // Line 5: CaseAnalyzer.
  result.cases = analyze_cases(data);
  // Line 6: VariationAnalyzer.
  result.variation = analyze_variation(result.cases);
  // Line 7: ConstBoolExpr (filters, expression, PFoBE).
  result.construction = construct_bool_expr(result.variation, config_.fov_ud,
                                            std::move(input_names));
  return result;
}

ExtractionResult LogicAnalyzer::analyze_packed(
    const PackedDigitalData& data, std::vector<std::string> input_names,
    std::string output_name) const {
  ExtractionResult result;
  result.input_count = data.input_count();
  result.input_names = input_names;
  result.output_name = std::move(output_name);
  result.config = config_;

  // Line 5: CaseAnalyzer — word-parallel combination masks.
  const PackedCaseAnalysis cases = analyze_cases_packed(data);
  result.cases = case_counts(cases);
  // Line 6: VariationAnalyzer — popcount HIGH_O / O_Var.
  result.variation = analyze_variation_packed(cases);
  // Line 7: ConstBoolExpr — representation-independent, shared verbatim.
  result.construction = construct_bool_expr(result.variation, config_.fov_ud,
                                            std::move(input_names));
  return result;
}

ExtractionResult LogicAnalyzer::analyze_packed_shared(
    const logic::CombinationIndex& index, const logic::BitStream& output,
    std::vector<std::string> input_names, std::string output_name) const {
  if (input_names.size() != index.input_count()) {
    throw InvalidArgument(
        "analyze_packed_shared: need one name per indexed input");
  }
  if (output.size() != index.sample_count()) {
    throw InvalidArgument(
        "analyze_packed_shared: output length does not match the index");
  }
  ExtractionResult result;
  result.input_count = index.input_count();
  result.input_names = input_names;
  result.output_name = std::move(output_name);
  result.config = config_;

  // Line 5's index is borrowed; lines 5b-7 are the packed stages verbatim.
  result.cases = case_counts(index);
  result.variation = analyze_variation_packed(index, output);
  result.construction = construct_bool_expr(result.variation, config_.fov_ud,
                                            std::move(input_names));
  return result;
}

}  // namespace glva::core
