#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuits/circuit_spec.h"
#include "exec/parallel_runner.h"
#include "core/logic_analyzer.h"
#include "core/verifier.h"
#include "sim/simulator.h"
#include "sim/virtual_lab.h"
#include "store/trace_sink.h"

/// The end-to-end experiment of Section III: simulate a circuit through a
/// full input-combination sweep, extract its logic, and verify it against
/// the intended function.
namespace glva::core {

/// Experiment parameters, defaulted to the paper's setup: 10,000 time
/// units total, threshold 15 molecules, inputs applied at the threshold
/// level, up to 25% output variation, 1-time-unit sampling.
struct ExperimentConfig {
  double total_time = 10000.0;  ///< sweep duration, time units (all 2^N phases)
  double threshold = 15.0;      ///< ThVAL, molecules; must be > 0
  double fov_ud = 0.25;         ///< FOV_UD, fraction in (0, 1]
  /// Input high level, molecules; < 0 means "apply inputs at the threshold
  /// value" (the paper's methodology).
  double input_high_level = -1.0;
  double sampling_period = 1.0;  ///< trace grid, time units per sample
  std::uint64_t seed = 1;        ///< RNG seed; equal seeds reproduce runs
  sim::SsaMethod method = sim::SsaMethod::kDirect;
  /// Analysis-stage representation (bit-packed vs reference vector<bool>);
  /// results are bit-identical either way — see AnalysisBackend.
  AnalysisBackend backend = AnalysisBackend::kPacked;

  /// Where the sweep's samples land (see store::SinkKind and
  /// docs/STORAGE.md): kMemory materializes the trace (reference path),
  /// kSpill streams it to a chunked .glvt file under `spill_dir` and
  /// re-materializes for analysis, kDigitize fuses the ADC into the
  /// sampler so no double trace ever exists (requires the packed backend;
  /// ExperimentResult::sweep.trace comes back empty). All three yield
  /// bit-identical analysis results for the same seed.
  store::SinkKind sink = store::SinkKind::kMemory;
  /// Directory for .glvt spill files; required when sink == kSpill.
  /// Optional with kDigitize: when set, the run also streams its packed
  /// planes into a bit-plane .glvt artifact (v2 kBits) that
  /// core::load_digitized can replay into analyze_packed with no
  /// re-simulation and no re-thresholding.
  std::string spill_dir;
  /// Spill filename stem override ("<stem>.glvt"); empty derives
  /// "<circuit>-s<seed>". Batch runners set it to keep per-job files
  /// distinct (e.g. per replicate, per threshold point).
  std::string spill_stem;

  [[nodiscard]] double high_level() const noexcept {
    return input_high_level > 0.0 ? input_high_level : threshold;
  }
};

/// Everything one experiment produces.
struct ExperimentResult {
  std::string circuit_name;
  ExperimentConfig config;
  sim::SweepResult sweep;          ///< trace + schedule
  ExtractionResult extraction;     ///< Algorithm 1 output
  VerificationReport verification; ///< vs the circuit's intended function
  double simulate_seconds = 0.0;   ///< wall time of the SSA sweep
  double analyze_seconds = 0.0;    ///< wall time of Algorithm 1
};

/// Run the full pipeline on a circuit: sweep all 2^N input combinations
/// (total_time split evenly across phases), extract the logic, and verify
/// it against spec.expected. Throws glva::InvalidArgument for invalid
/// analyzer parameters (including a spill sink without a spill_dir, or
/// the digitize sink combined with the reference backend),
/// glva::ValidationError for unsimulatable models, and glva::StorageError
/// when a spill file cannot be written or read back.
[[nodiscard]] ExperimentResult run_experiment(const circuits::CircuitSpec& spec,
                                              const ExperimentConfig& config);

/// The spill filename stem run_experiment uses for `config` (the
/// spill_stem override, or "<circuit>-s<seed>"); the file is
/// "<spill_dir>/<stem>.glvt".
[[nodiscard]] std::string spill_stem_for(const circuits::CircuitSpec& spec,
                                         const ExperimentConfig& config);

/// Repository-wide batch runner (the Table 1 workload): run the experiment
/// on every spec, one exec/ job per circuit, across up to `jobs` worker
/// threads (0 = one per hardware thread). Each circuit's RNG stream is
/// derived from (base_config.seed, circuit index) via exec::SeedSequence,
/// so circuits draw independent sample paths instead of replaying the same
/// random numbers against different models. Results come back in spec
/// order and are bit-identical for every jobs value; a failing circuit
/// rethrows from the lowest failed index.
[[nodiscard]] std::vector<ExperimentResult> run_batch(
    const std::vector<circuits::CircuitSpec>& specs,
    const ExperimentConfig& base_config, std::size_t jobs = 1);

/// Tap on a batch's ordered commit stream: invoked once per circuit, in
/// spec order, on the calling thread, with the result just before it is
/// released (the batch analogue of core::ReplicateObserver).
using BatchObserver =
    std::function<void(std::size_t index, ExperimentResult&& result)>;

/// Streaming form of run_batch: results are delivered to `observer`
/// through exec::ParallelRunner::run_reduce's ordered commit stream and
/// then destroyed — resident memory is bounded by the runner's in-flight
/// window, not the catalog size. The materializing overload above is this
/// function plus a collecting observer (bit-identical). `runner` may
/// borrow a persistent pool (daemon mode) or own per-call pools.
void run_batch(const std::vector<circuits::CircuitSpec>& specs,
               const ExperimentConfig& base_config,
               const exec::ParallelRunner& runner,
               const BatchObserver& observer);

/// Re-analyze an existing sweep under a different analyzer configuration
/// (used by the threshold sweep so each threshold re-reads the same trace
/// family; note the paper re-applies inputs at each threshold, so a full
/// re-simulation variant exists too — see threshold_sweep.h).
[[nodiscard]] ExperimentResult reanalyze(const circuits::CircuitSpec& spec,
                                         const ExperimentConfig& config,
                                         const sim::SweepResult& sweep);

}  // namespace glva::core
