#pragma once

#include <string>
#include <vector>

#include "sim/trace.h"

/// Analog-to-digital conversion — the ADC sub-procedure of Algorithm 1
/// (line 4). Converts analog species amounts into logic levels using the
/// threshold value, after which "the exact concentration of proteins are no
/// longer needed to obtain the Boolean logic of a genetic circuit".
namespace glva::core {

/// Digitize one analog series: sample k is logic-1 iff analog[k] >=
/// threshold. `threshold` is ThVAL in molecules and must be positive
/// (throws glva::InvalidArgument otherwise).
[[nodiscard]] std::vector<bool> adc(const std::vector<double>& analog,
                                    double threshold);

/// The digitized I/O streams Algorithm 1 works on: one bit stream per
/// chosen input species (MSB first) plus the chosen output species.
struct DigitalData {
  std::vector<std::vector<bool>> inputs;  ///< [input][sample]
  std::vector<bool> output;               ///< [sample]

  [[nodiscard]] std::size_t input_count() const noexcept { return inputs.size(); }
  [[nodiscard]] std::size_t sample_count() const noexcept { return output.size(); }
};

/// Digitize the selected I/O species of a simulation trace. The caller
/// chooses input and output species freely — the paper highlights that
/// selectable IS/OS allows "Boolean logic analysis on the entire circuit as
/// well as on the intermediate circuit components".
///
/// Throws glva::InvalidArgument for unknown ids, an empty input list, or a
/// non-positive threshold.
[[nodiscard]] DigitalData digitize(const sim::Trace& trace,
                                   const std::vector<std::string>& input_ids,
                                   const std::string& output_id,
                                   double threshold);

}  // namespace glva::core
