#pragma once

#include <string>
#include <vector>

#include "logic/bit_stream.h"
#include "sim/trace.h"
#include "store/digitizing_sink.h"

/// Analog-to-digital conversion — the ADC sub-procedure of Algorithm 1
/// (line 4). Converts analog species amounts into logic levels using the
/// threshold value, after which "the exact concentration of proteins are no
/// longer needed to obtain the Boolean logic of a genetic circuit".
///
/// Two representations of the digitized streams exist side by side:
/// `DigitalData` (one `std::vector<bool>` per stream — the reference
/// implementation) and `PackedDigitalData` (one `logic::BitStream` per
/// stream — 64 samples per word, the production path of the analysis
/// stage). Both digitize identically bit for bit; see `docs/ANALYSIS.md`
/// for the packed layout and `AnalysisBackend` in `logic_analyzer.h` for
/// how a backend is selected.
namespace glva::store {
class SpillReader;  // store/spill_reader.h (load_digitized's source)
}  // namespace glva::store

namespace glva::core {

/// Digitize one analog series: sample k is logic-1 iff analog[k] >=
/// threshold (the comparison is inclusive). `analog` is in molecules on
/// the trace's uniform sample grid; `threshold` is ThVAL in molecules and
/// must be positive (throws glva::InvalidArgument otherwise). O(samples).
[[nodiscard]] std::vector<bool> adc(const std::vector<double>& analog,
                                    double threshold);

/// Bit-packed digitization of one analog series: identical comparison and
/// bit order as `adc`, but each group of 64 samples is assembled in a
/// register (SIMD compare where available) and stored with one word write
/// instead of 64 `vector<bool>` proxy read-modify-writes — the entry
/// point of the packed analysis path. Same precondition (threshold > 0,
/// throws glva::InvalidArgument); postcondition: result.unpack() ==
/// adc(analog, threshold). O(samples).
[[nodiscard]] logic::BitStream adc_packed(const std::vector<double>& analog,
                                          double threshold);

/// The digitized I/O streams Algorithm 1 works on: one bit stream per
/// chosen input species (MSB first) plus the chosen output species.
struct DigitalData {
  std::vector<std::vector<bool>> inputs;  ///< [input][sample]
  std::vector<bool> output;               ///< [sample]

  [[nodiscard]] std::size_t input_count() const noexcept { return inputs.size(); }
  [[nodiscard]] std::size_t sample_count() const noexcept { return output.size(); }
};

/// Bit-packed variant of `DigitalData`: same streams, same MSB-first input
/// order, one `logic::BitStream` per stream (64 samples per word, zeroed
/// tail). Produced by `digitize_packed`/`pack`, consumed by the packed
/// CaseAnalyzer (`analyze_cases_packed`).
struct PackedDigitalData {
  std::vector<logic::BitStream> inputs;  ///< [input], MSB first
  logic::BitStream output;

  [[nodiscard]] std::size_t input_count() const noexcept { return inputs.size(); }
  [[nodiscard]] std::size_t sample_count() const noexcept { return output.size(); }
};

/// Digitize the selected I/O species of a simulation trace. The caller
/// chooses input and output species freely — the paper highlights that
/// selectable IS/OS allows "Boolean logic analysis on the entire circuit as
/// well as on the intermediate circuit components".
///
/// Throws glva::InvalidArgument for unknown ids, an empty input list, or a
/// non-positive threshold. O(input_count · samples).
[[nodiscard]] DigitalData digitize(const sim::Trace& trace,
                                   const std::vector<std::string>& input_ids,
                                   const std::string& output_id,
                                   double threshold);

/// Packed twin of `digitize`: same selection, validation, and bit values,
/// emitting `PackedDigitalData` without materializing any `vector<bool>`
/// intermediate. Postcondition: unpack(digitize_packed(...)) ==
/// digitize(...). O(input_count · samples).
[[nodiscard]] PackedDigitalData digitize_packed(
    const sim::Trace& trace, const std::vector<std::string>& input_ids,
    const std::string& output_id, double threshold);

/// Lossless conversions between the two representations (used by the
/// analyzer's packed backend when handed pre-digitized reference data, and
/// by the equivalence tests). O(input_count · samples).
[[nodiscard]] PackedDigitalData pack(const DigitalData& data);
[[nodiscard]] DigitalData unpack(const PackedDigitalData& data);

/// Assemble the analyzer's input from a fused sampler→ADC run: moves the
/// sink's planes out in tracking order — planes [0, input_count) are the
/// inputs (MSB first), plane input_count is the output. The single owner
/// of that ordering convention (run_experiment's digitize path and
/// bench_trace_io both go through here). Throws glva::InvalidArgument
/// when the sink tracks fewer than input_count + 1 species.
[[nodiscard]] PackedDigitalData take_digitized(store::DigitizingSink& sink,
                                               std::size_t input_count);

/// Assemble the analyzer's input from a spilled bit-plane `.glvt` file
/// (the `DigitizingSink` spill tee's artifact): `SpillReader::read_planes`
/// hands the packed words back word-aligned, so the planes reach
/// `analyze_packed` with no double materialization and no re-thresholding
/// — bit-identical to the in-memory `take_digitized` handoff for the same
/// run. Plane order follows the same convention (inputs MSB-first, then
/// the output). `threshold` must bit-match the file header's recorded
/// ThVAL: planes digitized at a different threshold are a different
/// experiment, so a mismatch throws glva::InvalidArgument rather than
/// silently relabeling them. Throws glva::StorageError for an analog file
/// and glva::InvalidArgument when the file tracks fewer than
/// input_count + 1 species.
[[nodiscard]] PackedDigitalData load_digitized(store::SpillReader& reader,
                                               std::size_t input_count,
                                               double threshold);

}  // namespace glva::core
