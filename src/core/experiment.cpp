#include "core/experiment.h"

#include <chrono>
#include <filesystem>
#include <utility>

#include "exec/parallel_runner.h"
#include "exec/seed_sequence.h"
#include "obs/trace.h"
#include "store/digitizing_sink.h"
#include "store/spill_reader.h"
#include "store/spill_sink.h"
#include "util/errors.h"
#include "util/timer.h"

namespace glva::core {

namespace {

using util::seconds_since;

sim::VirtualLab make_lab(const circuits::CircuitSpec& spec,
                         const ExperimentConfig& config) {
  sim::LabOptions lab_options;
  lab_options.sampling_period = config.sampling_period;
  lab_options.seed = config.seed;
  lab_options.method = config.method;

  sim::VirtualLab lab(spec.model, lab_options);
  lab.declare_inputs(spec.input_ids);
  return lab;
}

/// The memory path: materialize the trace, then analyze — the reference
/// the spill and digitize paths are bit-identical to.
ExperimentResult run_experiment_memory(const circuits::CircuitSpec& spec,
                                       const ExperimentConfig& config) {
  sim::VirtualLab lab = make_lab(spec, config);
  const auto sim_start = std::chrono::steady_clock::now();
  sim::SweepResult sweep = [&] {
    GLVA_SPAN("simulate");
    return lab.run_combination_sweep(config.total_time, config.high_level());
  }();
  const double sim_seconds = seconds_since(sim_start);

  ExperimentResult result = reanalyze(spec, config, sweep);
  result.sweep = std::move(sweep);
  result.simulate_seconds = sim_seconds;
  return result;
}

/// The spill path: stream the sweep into a chunked .glvt file (bounded
/// resident memory during the simulation), then re-materialize through
/// SpillReader for analysis. The file survives the run for later replay.
ExperimentResult run_experiment_spill(const circuits::CircuitSpec& spec,
                                      const ExperimentConfig& config) {
  if (config.spill_dir.empty()) {
    throw InvalidArgument(
        "run_experiment: sink 'spill' requires a spill directory "
        "(--spill-dir)");
  }
  std::filesystem::create_directories(config.spill_dir);
  const std::string path =
      (std::filesystem::path(config.spill_dir) /
       (spill_stem_for(spec, config) + ".glvt"))
          .string();

  sim::VirtualLab lab = make_lab(spec, config);
  store::SpillSink::Options spill_options;
  spill_options.seed = config.seed;
  spill_options.sampling_period = config.sampling_period;
  store::SpillSink sink(path, spill_options);

  const auto sim_start = std::chrono::steady_clock::now();
  sim::InputSchedule schedule = [&] {
    GLVA_SPAN("simulate");
    return lab.run_combination_sweep_into(config.total_time,
                                          config.high_level(), sink);
  }();
  const double sim_seconds = seconds_since(sim_start);

  store::SpillReader reader(path);
  sim::SweepResult sweep = [&] {
    GLVA_SPAN("spill.replay");
    return sim::SweepResult{reader.read_all(), std::move(schedule)};
  }();
  ExperimentResult result = reanalyze(spec, config, sweep);
  result.sweep = std::move(sweep);
  result.simulate_seconds = sim_seconds;
  return result;
}

/// The fused sampler→ADC path: stream the sweep straight into per-species
/// bit-planes; the double-precision trace is never allocated, so the
/// analysis-only memory footprint is samples/8 bytes per tracked species.
ExperimentResult run_experiment_digitize(const circuits::CircuitSpec& spec,
                                         const ExperimentConfig& config) {
  if (config.backend != AnalysisBackend::kPacked) {
    throw InvalidArgument(
        "run_experiment: sink 'digitize' requires the packed analysis "
        "backend (it produces bit-planes, not a trace)");
  }
  // The memory path silently falls back to the reference backend past the
  // packed auto-limit; a digitizing run has no trace to fall back to, and
  // beyond the limit the 2^N masks would defeat the sink's bounded-memory
  // purpose anyway — reject up front with a actionable message.
  if (spec.input_ids.size() > kPackedAutoInputLimit) {
    throw InvalidArgument(
        "run_experiment: sink 'digitize' supports up to " +
        std::to_string(kPackedAutoInputLimit) +
        " inputs (packed-analysis limit); use sink 'mem' or 'spill' for "
        "wider circuits");
  }
  std::vector<std::string> tracked = spec.input_ids;
  tracked.push_back(spec.output_id);

  sim::VirtualLab lab = make_lab(spec, config);
  // With a spill directory, the digitized run also leaves a replayable
  // bit-plane .glvt artifact (v2 kBits; ~64× smaller than an analog
  // spill): core::load_digitized hands it back to analyze_packed later
  // with no re-simulation and no re-thresholding.
  store::DigitizingSink sink = [&] {
    if (config.spill_dir.empty()) {
      return store::DigitizingSink(std::move(tracked), config.threshold);
    }
    std::filesystem::create_directories(config.spill_dir);
    store::DigitizingSink::SpillOptions spill;
    spill.path = (std::filesystem::path(config.spill_dir) /
                  (spill_stem_for(spec, config) + ".glvt"))
                     .string();
    spill.seed = config.seed;
    spill.sampling_period = config.sampling_period;
    return store::DigitizingSink(std::move(tracked), config.threshold,
                                 std::move(spill));
  }();

  const auto sim_start = std::chrono::steady_clock::now();
  sim::InputSchedule schedule = [&] {
    GLVA_SPAN("simulate");
    return lab.run_combination_sweep_into(config.total_time,
                                          config.high_level(), sink);
  }();
  const double sim_seconds = seconds_since(sim_start);

  PackedDigitalData data = [&] {
    GLVA_SPAN("digitize");
    return take_digitized(sink, spec.input_ids.size());
  }();

  ExperimentResult result;
  result.circuit_name = spec.name;
  result.config = config;
  result.simulate_seconds = sim_seconds;
  result.sweep.schedule = std::move(schedule);  // trace intentionally empty

  LogicAnalyzer analyzer(
      AnalyzerConfig{config.threshold, config.fov_ud, config.backend});
  const auto analyze_start = std::chrono::steady_clock::now();
  {
    GLVA_SPAN("analyze");
    result.extraction =
        analyzer.analyze_packed(data, spec.input_ids, spec.output_id);
  }
  result.analyze_seconds = seconds_since(analyze_start);

  result.verification = verify(result.extraction, spec.expected);
  return result;
}

}  // namespace

std::string spill_stem_for(const circuits::CircuitSpec& spec,
                           const ExperimentConfig& config) {
  return config.spill_stem.empty()
             ? spec.name + "-s" + std::to_string(config.seed)
             : config.spill_stem;
}

ExperimentResult run_experiment(const circuits::CircuitSpec& spec,
                                const ExperimentConfig& config) {
  switch (config.sink) {
    case store::SinkKind::kMemory:
      return run_experiment_memory(spec, config);
    case store::SinkKind::kSpill:
      return run_experiment_spill(spec, config);
    case store::SinkKind::kDigitize:
      return run_experiment_digitize(spec, config);
  }
  throw InvalidArgument("run_experiment: unknown sink kind");
}

void run_batch(const std::vector<circuits::CircuitSpec>& specs,
               const ExperimentConfig& base_config,
               const exec::ParallelRunner& runner,
               const BatchObserver& observer) {
  const exec::SeedSequence seeds(base_config.seed);
  runner.run_reduce<ExperimentResult>(
      specs.size(),
      [&](std::size_t i) {
        ExperimentConfig config = base_config;
        config.seed = seeds.seed_for(i);
        return run_experiment(specs[i], config);
      },
      [&](std::size_t i, ExperimentResult&& result) {
        if (observer) observer(i, std::move(result));
        // `result` dies here: a fleet-sized batch never holds more than
        // the runner's in-flight window of ExperimentResults.
      });
}

std::vector<ExperimentResult> run_batch(
    const std::vector<circuits::CircuitSpec>& specs,
    const ExperimentConfig& base_config, std::size_t jobs) {
  std::vector<ExperimentResult> results;
  results.reserve(specs.size());
  run_batch(specs, base_config, exec::ParallelRunner(jobs),
            [&](std::size_t, ExperimentResult&& result) {
              results.push_back(std::move(result));
            });
  return results;
}

ExperimentResult reanalyze(const circuits::CircuitSpec& spec,
                           const ExperimentConfig& config,
                           const sim::SweepResult& sweep) {
  ExperimentResult result;
  result.circuit_name = spec.name;
  result.config = config;

  LogicAnalyzer analyzer(
      AnalyzerConfig{config.threshold, config.fov_ud, config.backend});
  const auto analyze_start = std::chrono::steady_clock::now();
  {
    GLVA_SPAN("analyze");
    result.extraction =
        analyzer.analyze(sweep.trace, spec.input_ids, spec.output_id);
  }
  result.analyze_seconds = seconds_since(analyze_start);

  result.verification = verify(result.extraction, spec.expected);
  return result;
}

}  // namespace glva::core
