#include "core/experiment.h"

#include <chrono>

#include "exec/parallel_runner.h"
#include "exec/seed_sequence.h"

namespace glva::core {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

ExperimentResult run_experiment(const circuits::CircuitSpec& spec,
                                const ExperimentConfig& config) {
  sim::LabOptions lab_options;
  lab_options.sampling_period = config.sampling_period;
  lab_options.seed = config.seed;
  lab_options.method = config.method;

  sim::VirtualLab lab(spec.model, lab_options);
  lab.declare_inputs(spec.input_ids);

  const auto sim_start = std::chrono::steady_clock::now();
  sim::SweepResult sweep =
      lab.run_combination_sweep(config.total_time, config.high_level());
  const double sim_seconds = seconds_since(sim_start);

  ExperimentResult result = reanalyze(spec, config, sweep);
  result.sweep = std::move(sweep);
  result.simulate_seconds = sim_seconds;
  return result;
}

std::vector<ExperimentResult> run_batch(
    const std::vector<circuits::CircuitSpec>& specs,
    const ExperimentConfig& base_config, std::size_t jobs) {
  const exec::SeedSequence seeds(base_config.seed);
  const exec::ParallelRunner runner(jobs);
  return runner.map<ExperimentResult>(specs.size(), [&](std::size_t i) {
    ExperimentConfig config = base_config;
    config.seed = seeds.seed_for(i);
    return run_experiment(specs[i], config);
  });
}

ExperimentResult reanalyze(const circuits::CircuitSpec& spec,
                           const ExperimentConfig& config,
                           const sim::SweepResult& sweep) {
  ExperimentResult result;
  result.circuit_name = spec.name;
  result.config = config;

  LogicAnalyzer analyzer(
      AnalyzerConfig{config.threshold, config.fov_ud, config.backend});
  const auto analyze_start = std::chrono::steady_clock::now();
  result.extraction =
      analyzer.analyze(sweep.trace, spec.input_ids, spec.output_id);
  result.analyze_seconds = seconds_since(analyze_start);

  result.verification = verify(result.extraction, spec.expected);
  return result;
}

}  // namespace glva::core
