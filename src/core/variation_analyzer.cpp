#include "core/variation_analyzer.h"

namespace glva::core {

VariationAnalysis analyze_variation(const CaseAnalysis& cases) {
  VariationAnalysis analysis;
  analysis.input_count = cases.input_count;
  analysis.records.resize(cases.cases.size());

  for (std::size_t c = 0; c < cases.cases.size(); ++c) {
    const CaseRecord& record = cases.cases[c];
    VariationRecord& out = analysis.records[c];
    out.combination = record.combination;
    out.case_count = record.case_count;

    bool previous = false;
    bool first = true;
    for (const bool bit : record.output_stream) {
      if (bit) ++out.high_count;
      if (!first && bit != previous) ++out.variation_count;
      previous = bit;
      first = false;
    }
    out.fov_est = record.case_count > 0
                      ? static_cast<double>(out.variation_count) /
                            static_cast<double>(record.case_count)
                      : 0.0;
  }
  return analysis;
}

VariationAnalysis analyze_variation_packed(const PackedCaseAnalysis& cases) {
  VariationAnalysis analysis;
  analysis.input_count = cases.input_count;
  analysis.records.resize(cases.index.combination_count());

  for (std::size_t c = 0; c < analysis.records.size(); ++c) {
    VariationRecord& out = analysis.records[c];
    const logic::BitStream& mask = cases.index.mask(c);
    out.combination = c;
    out.case_count = cases.index.count(c);
    out.high_count = logic::and_popcount(mask, cases.output);
    out.variation_count = logic::masked_transition_count(mask, cases.output);
    out.fov_est = out.case_count > 0
                      ? static_cast<double>(out.variation_count) /
                            static_cast<double>(out.case_count)
                      : 0.0;
  }
  return analysis;
}

}  // namespace glva::core
