#include "core/variation_analyzer.h"

#include "util/errors.h"

namespace glva::core {

VariationAnalysis analyze_variation(const CaseAnalysis& cases) {
  VariationAnalysis analysis;
  analysis.input_count = cases.input_count;
  analysis.records.resize(cases.cases.size());

  for (std::size_t c = 0; c < cases.cases.size(); ++c) {
    const CaseRecord& record = cases.cases[c];
    VariationRecord& out = analysis.records[c];
    out.combination = record.combination;
    out.case_count = record.case_count;

    bool previous = false;
    bool first = true;
    for (const bool bit : record.output_stream) {
      if (bit) ++out.high_count;
      if (!first && bit != previous) ++out.variation_count;
      previous = bit;
      first = false;
    }
    out.fov_est = record.case_count > 0
                      ? static_cast<double>(out.variation_count) /
                            static_cast<double>(record.case_count)
                      : 0.0;
  }
  return analysis;
}

VariationAnalysis analyze_variation_packed(const PackedCaseAnalysis& cases) {
  return analyze_variation_packed(cases.index, cases.output);
}

VariationAnalysis analyze_variation_packed(
    const logic::CombinationIndex& index, const logic::BitStream& output) {
  if (output.size() != index.sample_count()) {
    throw InvalidArgument(
        "analyze_variation_packed: output length does not match the index");
  }
  VariationAnalysis analysis;
  analysis.input_count = index.input_count();
  analysis.records.resize(index.combination_count());

  for (std::size_t c = 0; c < analysis.records.size(); ++c) {
    VariationRecord& out = analysis.records[c];
    const logic::BitStream& mask = index.mask(c);
    out.combination = c;
    out.case_count = index.count(c);
    out.high_count = logic::and_popcount(mask, output);
    out.variation_count = logic::masked_transition_count(mask, output);
    out.fov_est = out.case_count > 0
                      ? static_cast<double>(out.variation_count) /
                            static_cast<double>(out.case_count)
                      : 0.0;
  }
  return analysis;
}

}  // namespace glva::core
