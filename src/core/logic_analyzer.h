#pragma once

#include <string>
#include <vector>

#include "core/adc.h"
#include "core/bool_constructor.h"
#include "core/case_analyzer.h"
#include "core/variation_analyzer.h"
#include "sim/trace.h"

/// Algorithm 1 — the paper's logic analysis and verification procedure.
/// Wires the sub-procedures in order: ADC → CaseAnalyzer →
/// VariationAnalyzer → ConstBoolExpr, over user-selected input and output
/// species.
namespace glva::core {

/// Which digitized-stream representation the analysis stage runs on. Both
/// backends produce bit-identical ExtractionResults (variation records,
/// filter outcomes, expression, PFoBE, verification — pinned by the
/// equivalence tests); they differ in speed and in whether
/// `ExtractionResult::cases` materializes per-combination output streams.
enum class AnalysisBackend {
  /// Word-parallel bit-packed streams (logic::BitStream +
  /// logic::CombinationIndex): the production path, O(2^N · samples / 64)
  /// per stage. `cases` carries counts only (empty output_streams).
  kPacked,
  /// One-sample-at-a-time `std::vector<bool>` streams: the reference
  /// implementation the packed path is cross-checked against; also the
  /// only backend that materializes per-combination output streams (the
  /// Figure 2/3 run-length displays need them).
  kReference,
};

/// Backend name ("packed" / "reference") and its inverse; parse throws
/// glva::InvalidArgument for unknown names.
[[nodiscard]] const char* analysis_backend_name(AnalysisBackend backend);
[[nodiscard]] AnalysisBackend parse_analysis_backend(const std::string& name);

/// Largest input count the packed backend is auto-selected for. Packed
/// work and mask memory grow as 2^N (2^N masks, O(2^N · N · samples / 64)
/// ops) while the reference path grows as N · samples, so past ~6 inputs
/// the reference is the better default; requests beyond this limit
/// silently use the (bit-identical) reference path. Explicit
/// analyze_packed callers may go up to logic::CombinationIndex::kMaxInputs.
inline constexpr std::size_t kPackedAutoInputLimit = 6;

/// The algorithm's initial parameters (the paper's N, ThVAL, FOV_UD, IS,
/// OS; N is implied by IS, and SDAn is the trace argument).
struct AnalyzerConfig {
  /// ThVAL, in molecules: a sample is logic-1 iff its amount >= threshold.
  /// Must be > 0. The paper uses 15 nominally (Figure 5 sweeps 3 and 40).
  double threshold = 15.0;
  /// FOV_UD, the acceptable factor of output variation, as a fraction in
  /// (0, 1]: Filter 1 accepts a combination iff FOV_EST < fov_ud. The
  /// paper allows up to 25% variation (0.25).
  double fov_ud = 0.25;
  /// Stream representation the stages run on. Defaults to the packed path;
  /// inputs beyond kPackedAutoInputLimit silently fall back to the
  /// (bit-identical) reference path, which handles up to 16.
  AnalysisBackend backend = AnalysisBackend::kPacked;
};

/// Everything the analysis produces, per combination and aggregated.
struct ExtractionResult {
  std::size_t input_count = 0;
  std::vector<std::string> input_names;
  std::string output_name;
  AnalyzerConfig config;

  CaseAnalysis cases;             ///< Case_I + logged output streams
  VariationAnalysis variation;    ///< HIGH_O / O_Var / FOV_EST
  BoolConstruction construction;  ///< filters, expression, PFoBE

  /// The extracted logic function (accepted-high combinations).
  [[nodiscard]] const logic::TruthTable& extracted() const noexcept {
    return construction.extracted;
  }
  /// Minimized Boolean expression text ("C·(A' + B)").
  [[nodiscard]] std::string expression() const {
    return construction.minimized.to_string();
  }
  /// PFoBE percentage fitness (equation (3)), in [0, 100]; 100 means every
  /// accepted-high combination was perfectly stable.
  [[nodiscard]] double fitness() const noexcept {
    return construction.fitness_percent;
  }
};

class LogicAnalyzer {
public:
  /// Throws glva::InvalidArgument unless config.threshold > 0 and
  /// config.fov_ud is in (0, 1].
  explicit LogicAnalyzer(AnalyzerConfig config = {});

  /// Analyze a simulation trace, choosing `input_ids` (MSB first) as IS and
  /// `output_id` as OS. Selecting an internal species as OS analyzes an
  /// intermediate circuit component, exactly as the paper describes.
  ///
  /// Throws glva::InvalidArgument for species ids not present in the trace,
  /// an empty `input_ids`, or more than 16 inputs.
  [[nodiscard]] ExtractionResult analyze(const sim::Trace& trace,
                                         const std::vector<std::string>& input_ids,
                                         const std::string& output_id) const;

  /// Analyze pre-digitized streams (used by unit tests and the Figure 3
  /// reproduction, which starts from constructed binary streams). Under
  /// the packed backend the streams are packed first, so both entry points
  /// agree with `analyze` bit for bit.
  ///
  /// Requires one name per input stream; throws glva::InvalidArgument when
  /// streams have mismatched lengths, there are no inputs, or there are
  /// more than 16 of them.
  [[nodiscard]] ExtractionResult analyze_digital(
      const DigitalData& data, std::vector<std::string> input_names,
      std::string output_name) const;

  /// Analyze pre-packed streams directly (no conversion; the fast path the
  /// packed `analyze` uses internally, exposed for benches and tests).
  /// Same validation as analyze_digital; note the backend switch does not
  /// apply here — this entry point is always packed.
  [[nodiscard]] ExtractionResult analyze_packed(
      const PackedDigitalData& data, std::vector<std::string> input_names,
      std::string output_name) const;

  /// Packed analysis over a caller-provided combination index — the
  /// index-reuse path of `threshold_sweep_redigitize`: when several
  /// threshold points digitize the (clamped) input streams identically,
  /// they share one index and only the output stream is re-digitized per
  /// point. `index` must have been built from this analysis's digitized
  /// inputs; results are then bit-identical to `analyze_packed` on the
  /// matching PackedDigitalData. Always packed (no backend switch).
  ///
  /// Throws glva::InvalidArgument when input_names.size() !=
  /// index.input_count() or output.size() != index.sample_count().
  [[nodiscard]] ExtractionResult analyze_packed_shared(
      const logic::CombinationIndex& index, const logic::BitStream& output,
      std::vector<std::string> input_names, std::string output_name) const;

  [[nodiscard]] const AnalyzerConfig& config() const noexcept { return config_; }

private:
  AnalyzerConfig config_;
};

}  // namespace glva::core
