#include "core/baseline.h"

#include "util/errors.h"

namespace glva::core {

std::string baseline_rule_name(BaselineRule rule) {
  switch (rule) {
    case BaselineRule::kAnyHigh: return "any-high (no filters)";
    case BaselineRule::kMajorityOnly: return "majority-only (eq. 2 alone)";
    case BaselineRule::kStabilityOnly: return "stability-only (eq. 1 alone)";
    case BaselineRule::kBothFilters: return "both filters (paper)";
  }
  return "?";
}

logic::TruthTable extract_with_rule(const VariationAnalysis& variation,
                                    BaselineRule rule, double fov_ud) {
  logic::TruthTable table(variation.input_count);
  for (const auto& record : variation.records) {
    if (record.case_count == 0) continue;
    const bool any_high = record.high_count > 0;
    const bool majority = static_cast<double>(record.high_count) >
                          static_cast<double>(record.case_count) / 2.0;
    const bool stable = record.fov_est < fov_ud;
    bool high = false;
    switch (rule) {
      case BaselineRule::kAnyHigh:
        high = any_high;
        break;
      case BaselineRule::kMajorityOnly:
        high = majority;
        break;
      case BaselineRule::kStabilityOnly:
        // The stability filter only ever applies to candidate-high
        // combinations ("at which the output is high at least once").
        high = any_high && stable;
        break;
      case BaselineRule::kBothFilters:
        high = majority && stable;
        break;
    }
    table.set_output(record.combination, high);
  }
  return table;
}

}  // namespace glva::core
