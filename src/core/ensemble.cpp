#include "core/ensemble.h"

#include <sstream>
#include <utility>

#include "exec/parallel_runner.h"
#include "exec/seed_sequence.h"
#include "logic/quine_mccluskey.h"
#include "obs/trace.h"
#include "util/errors.h"
#include "util/string_util.h"
#include "util/text_table.h"

namespace glva::core {

MeanConfidence mean_confidence(const util::RunningStats& stats) {
  return MeanConfidence{
      stats.mean(), stats.stddev(),
      util::normal_ci95_half_width(stats.stddev(), stats.count())};
}

EnsembleResult run_ensemble(const circuits::CircuitSpec& spec,
                            const ExperimentConfig& config,
                            std::size_t replicates, std::size_t jobs,
                            const ReplicateObserver& observer) {
  return run_ensemble(spec, config, replicates, exec::ParallelRunner(jobs),
                      observer);
}

EnsembleResult run_ensemble(const circuits::CircuitSpec& spec,
                            const ExperimentConfig& config,
                            std::size_t replicates,
                            const exec::ParallelRunner& runner,
                            const ReplicateObserver& observer) {
  if (replicates == 0) {
    throw InvalidArgument("run_ensemble: need at least one replicate");
  }

  EnsembleResult ensemble;
  ensemble.circuit_name = spec.name;
  ensemble.base_config = config;
  ensemble.replicate_count = replicates;
  ensemble.replicate_matches.reserve(replicates);

  // Seeds are derived up front, before the fan-out, so each job is a pure
  // function of its index — the determinism contract of exec/.
  const exec::SeedSequence seeds(config.seed);
  ensemble.replicate_seeds = seeds.first(replicates);

  // Welford accumulators the commit stream folds into; commits arrive in
  // replicate order whatever the worker count, so every add() sequence —
  // and therefore every derived mean/stddev bit — matches the serial run.
  std::vector<util::RunningStats> fov_stats;
  std::vector<std::size_t> high_votes;
  util::RunningStats pfobe;
  util::RunningStats wrong_states;

  runner.run_reduce<ExperimentResult>(
      replicates,
      [&](std::size_t r) {
        GLVA_SPAN("replicate");
        ExperimentConfig replicate_config = config;
        replicate_config.seed = ensemble.replicate_seeds[r];
        if (replicate_config.sink == store::SinkKind::kSpill ||
            (replicate_config.sink == store::SinkKind::kDigitize &&
             !replicate_config.spill_dir.empty())) {
          // One .glvt per replicate under spill_dir (analog spill, or the
          // digitize path's bit-plane artifact), named by replicate index
          // and derived seed — parallel replicates must not share a file.
          replicate_config.spill_stem = spill_stem_for(spec, config) + "-r" +
                                        std::to_string(r);
        }
        return run_experiment(spec, replicate_config);
      },
      [&](std::size_t r, ExperimentResult&& result) {
        GLVA_SPAN("reduce.commit");
        const std::size_t combinations =
            result.extraction.variation.records.size();
        if (r == 0) {
          ensemble.input_count = result.extraction.input_count;
          ensemble.input_names = result.extraction.input_names;
          ensemble.output_name = result.extraction.output_name;
          fov_stats.resize(combinations);
          high_votes.assign(combinations, 0);
        }
        for (std::size_t c = 0; c < combinations; ++c) {
          fov_stats[c].add(result.extraction.variation.records[c].fov_est);
          if (result.extraction.extracted().output(c)) ++high_votes[c];
        }
        const bool matches = result.verification.matches;
        ensemble.replicate_matches.push_back(matches);
        ensemble.match_count += matches ? 1 : 0;
        pfobe.add(result.extraction.fitness());
        wrong_states.add(
            static_cast<double>(result.verification.wrong_state_count()));
        if (observer) observer(r, result);
        // `result` is destroyed here: the replicate has collapsed to the
        // accumulators above, the O(1)-per-replicate memory bound.
      });

  const std::size_t combinations = fov_stats.size();
  ensemble.majority_logic = logic::TruthTable(ensemble.input_count);
  ensemble.combination_stats.resize(combinations);
  for (std::size_t c = 0; c < combinations; ++c) {
    CombinationEnsembleStats& stats = ensemble.combination_stats[c];
    stats.combination = c;
    stats.high_votes = high_votes[c];
    stats.fov_mean = fov_stats[c].mean();
    stats.fov_stddev = fov_stats[c].stddev();
    ensemble.majority_logic.set_output(c, 2 * stats.high_votes > replicates);
  }

  ensemble.expected = spec.expected;
  ensemble.majority_wrong_states =
      ensemble.majority_logic.differing_rows(spec.expected);
  ensemble.majority_matches = ensemble.majority_wrong_states.empty();

  ensemble.pfobe = mean_confidence(pfobe);
  ensemble.wrong_states = mean_confidence(wrong_states);
  return ensemble;
}

std::string render_ensemble_summary(const EnsembleResult& ensemble) {
  std::ostringstream out;
  out << "circuit:    " << ensemble.circuit_name << "\n"
      << "replicates: " << ensemble.replicate_count << " (base seed "
      << ensemble.base_config.seed << ", per-replicate streams)\n\n";

  util::TextTable table(
      {"comb", "high votes", "FOV mean", "FOV stddev", "majority"});
  table.set_align(1, util::TextTable::Align::kRight);
  table.set_align(2, util::TextTable::Align::kRight);
  table.set_align(3, util::TextTable::Align::kRight);
  table.set_align(4, util::TextTable::Align::kRight);
  for (const CombinationEnsembleStats& stats : ensemble.combination_stats) {
    table.add_row({ensemble.majority_logic.combination_label(stats.combination),
                   std::to_string(stats.high_votes) + "/" +
                       std::to_string(ensemble.replicate_count),
                   util::format_double(stats.fov_mean, 6),
                   util::format_double(stats.fov_stddev, 6),
                   ensemble.majority_logic.output(stats.combination) ? "1"
                                                                     : "0"});
  }
  out << table.str() << "\n";

  out << "majority logic:  " << ensemble.output_name << " = "
      << logic::minimize(ensemble.majority_logic, ensemble.input_names)
             .to_string()
      << "\n"
      << "intended logic:  " << ensemble.output_name << " = "
      << logic::minimize(ensemble.expected, ensemble.input_names).to_string()
      << "\n"
      << "majority verify: ";
  if (ensemble.majority_matches) {
    out << "MATCH\n";
  } else {
    std::vector<std::string> labels;
    for (const std::size_t c : ensemble.majority_wrong_states) {
      labels.push_back(ensemble.majority_logic.combination_label(c));
    }
    out << ensemble.majority_wrong_states.size() << " wrong state(s): "
        << util::join(labels, ", ") << "\n";
  }

  out << "replicates:      " << ensemble.match_count << "/"
      << ensemble.replicate_count << " individually recover the intended logic"
      << " (";
  for (std::size_t r = 0; r < ensemble.replicate_count; ++r) {
    out << (r == 0 ? "" : " ") << (ensemble.replicate_matches[r] ? "+" : "-");
  }
  out << ")\n";

  out << "PFoBE:           " << util::format_double(ensemble.pfobe.mean, 6)
      << " ± " << util::format_double(ensemble.pfobe.half_width, 6)
      << " % (95% normal CI, stddev "
      << util::format_double(ensemble.pfobe.stddev, 6) << ")\n"
      << "wrong states:    "
      << util::format_double(ensemble.wrong_states.mean, 6) << " ± "
      << util::format_double(ensemble.wrong_states.half_width, 6)
      << " per replicate (95% normal CI, stddev "
      << util::format_double(ensemble.wrong_states.stddev, 6) << ")\n";
  return out.str();
}

}  // namespace glva::core
