#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/stats.h"

/// Replicate ensembles: N independent stochastic replicates of the paper's
/// experiment, fanned out by the exec/ runtime. A single SSA run is one
/// sample path; the paper's FOV and extracted logic therefore carry no
/// confidence information. An ensemble reports per-combination FOV
/// mean/stddev across replicates, a majority-vote logic extraction, and
/// per-replicate verification verdicts — treating the circuit
/// statistically, as related noise-aware work does.
///
/// Ensembles are a *streaming reduction* (exec::ParallelRunner::run_reduce):
/// each replicate's ExperimentResult is folded into Welford accumulators
/// (util::RunningStats) the moment its index-ordered commit arrives, then
/// destroyed — resident memory is O(1) per replicate (a bounded in-flight
/// window of results, never the whole fleet), which is what makes
/// 10^3-replicate digitize-sink ensembles practical. Consumers that need
/// per-replicate data (analytics CSV, per-replicate files, fingerprint
/// tests) tap the same ordered commit stream through a ReplicateObserver.
namespace glva::core {

/// Cross-replicate statistics for one input combination.
struct CombinationEnsembleStats {
  std::size_t combination = 0;
  double fov_mean = 0.0;    ///< mean FOV_EST across replicates
  double fov_stddev = 0.0;  ///< sample stddev of FOV_EST (0 for 1 replicate)
  std::size_t high_votes = 0;  ///< replicates whose extraction reads logic-1
  /// high_votes / replicate_count, in [0, 1] — an empirical confidence for
  /// the combination's extracted level.
  [[nodiscard]] double high_fraction(std::size_t replicate_count) const noexcept {
    return replicate_count == 0
               ? 0.0
               : static_cast<double>(high_votes) /
                     static_cast<double>(replicate_count);
  }
};

/// A replicate-level sample mean with its normal-approximation 95%
/// confidence interval (z₀.₉₇₅ · stddev / √n; half_width is 0 for a
/// single replicate). The normal approximation treats each replicate's
/// statistic as one i.i.d. draw — exactly the deep-sampling regime the
/// ensemble runner exists for.
struct MeanConfidence {
  double mean = 0.0;
  double stddev = 0.0;      ///< sample stddev across replicates
  double half_width = 0.0;  ///< 95% CI half-width (util::normal_ci95_half_width)

  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }
};

/// Project a Welford accumulator onto its replicate-level confidence
/// summary: mean, sample stddev, and the 95% normal CI half-width for the
/// accumulated count.
[[nodiscard]] MeanConfidence mean_confidence(const util::RunningStats& stats);

/// Everything an ensemble run produces — the *reduced* statistics only;
/// the per-replicate ExperimentResults are folded in commit order and
/// released (stream them through a ReplicateObserver if you need them).
/// Bit-identical for a fixed (config.seed, replicate count) regardless of
/// the job count used.
struct EnsembleResult {
  std::string circuit_name;
  ExperimentConfig base_config;  ///< seed here is the *base* seed
  std::size_t replicate_count = 0;

  /// Per-replicate derived seeds (exec::derive_seed(base_seed, r)), in
  /// replicate order.
  std::vector<std::uint64_t> replicate_seeds;

  /// The analyzed I/O identity, captured from the first replicate (all
  /// replicates analyze the same circuit, so these are fleet-wide).
  std::size_t input_count = 0;
  std::vector<std::string> input_names;
  std::string output_name;

  /// One entry per input combination, indexed by combination.
  std::vector<CombinationEnsembleStats> combination_stats;

  /// Majority vote across replicate extractions: combination c is high iff
  /// strictly more than half the replicates extracted it high (ties low).
  logic::TruthTable majority_logic;
  /// The intended function the verdicts below were computed against
  /// (spec.expected), carried so reports cannot diverge from the verdict.
  logic::TruthTable expected;
  bool majority_matches = false;  ///< majority_logic == expected
  std::vector<std::size_t> majority_wrong_states;  ///< differing combinations

  /// Per-replicate verification verdict, in replicate order, and how many
  /// replicates individually recovered the intended function.
  std::vector<bool> replicate_matches;
  std::size_t match_count = 0;

  /// PFoBE (%) across replicates with its 95% normal CI.
  MeanConfidence pfobe;
  /// Wrong-state count per replicate (vs spec.expected) with its 95%
  /// normal CI.
  MeanConfidence wrong_states;

  [[nodiscard]] double match_fraction() const noexcept {
    return replicate_count == 0
               ? 0.0
               : static_cast<double>(match_count) /
                     static_cast<double>(replicate_count);
  }
};

/// Tap on the ensemble's ordered commit stream: invoked once per replicate,
/// in strict replicate order (r = 0, 1, ...), on the calling thread, with
/// the full ExperimentResult just before it is released. Used to stream
/// per-replicate analytics (CSV rows, per-replicate files) without the
/// runner ever materializing the fleet.
using ReplicateObserver =
    std::function<void(std::size_t replicate, const ExperimentResult& result)>;

/// Run `replicates` independent replicates of run_experiment, each seeded
/// from (config.seed, replicate index) via exec::SeedSequence, across up to
/// `jobs` worker threads (0 = one per hardware thread; results are
/// identical for every jobs value). Replicates reduce to running statistics
/// in commit order (memory stays O(1) per replicate however many are
/// requested); `observer`, when set, sees every replicate's result in
/// replicate order before it is dropped. Throws glva::InvalidArgument when
/// `replicates` is 0; experiment errors propagate from the lowest failed
/// replicate index.
[[nodiscard]] EnsembleResult run_ensemble(
    const circuits::CircuitSpec& spec, const ExperimentConfig& config,
    std::size_t replicates, std::size_t jobs = 1,
    const ReplicateObserver& observer = {});

/// Overload taking the runner directly — the daemon path, where `runner`
/// borrows one persistent exec::ThreadPool for the process lifetime
/// instead of spawning workers per request. Bit-identical to the jobs
/// overload for every pool size.
[[nodiscard]] EnsembleResult run_ensemble(
    const circuits::CircuitSpec& spec, const ExperimentConfig& config,
    std::size_t replicates, const exec::ParallelRunner& runner,
    const ReplicateObserver& observer = {});

/// Deterministic text report of an ensemble: per-combination vote/FOV
/// table, majority expression vs the ensemble's own intended function,
/// per-replicate verdict line. Contains no wall-clock timings, so output
/// for a fixed seed is byte-stable — the CLI golden-output regression test
/// relies on that.
[[nodiscard]] std::string render_ensemble_summary(
    const EnsembleResult& ensemble);

}  // namespace glva::core
