#include "core/adc.h"

#include "util/errors.h"

namespace glva::core {

std::vector<bool> adc(const std::vector<double>& analog, double threshold) {
  if (threshold <= 0.0) {
    throw InvalidArgument("adc: threshold must be positive");
  }
  std::vector<bool> digital(analog.size());
  for (std::size_t k = 0; k < analog.size(); ++k) {
    digital[k] = analog[k] >= threshold;
  }
  return digital;
}

DigitalData digitize(const sim::Trace& trace,
                     const std::vector<std::string>& input_ids,
                     const std::string& output_id, double threshold) {
  if (input_ids.empty()) {
    throw InvalidArgument("digitize: at least one input species is required");
  }
  DigitalData data;
  data.inputs.reserve(input_ids.size());
  for (const auto& id : input_ids) {
    data.inputs.push_back(adc(trace.series(id), threshold));
  }
  data.output = adc(trace.series(output_id), threshold);
  return data;
}

}  // namespace glva::core
