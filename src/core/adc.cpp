#include "core/adc.h"

#include <algorithm>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/errors.h"

namespace glva::core {

namespace {

void require_positive_threshold(double threshold, const char* what) {
  if (threshold <= 0.0) {
    throw InvalidArgument(std::string(what) + ": threshold must be positive");
  }
}

/// Pack 64 consecutive threshold comparisons into one word, bit j =
/// (samples[j] >= threshold). The SSE2 path turns each pair of doubles
/// into two mask bits with cmpge + movmskpd (NaN compares false, exactly
/// like the scalar >=); the portable path compares into a byte buffer the
/// autovectorizer handles, then gathers each 8-byte group into 8 bits with
/// one multiply (magic 0x0102040810204080: byte t of the group lands at
/// bit 56+t of the product).
std::uint64_t pack_word64(const double* samples, double threshold) {
#if defined(__SSE2__)
  const __m128d vth = _mm_set1_pd(threshold);
  std::uint64_t word = 0;
  for (std::size_t j = 0; j < 64; j += 2) {
    const int pair =
        _mm_movemask_pd(_mm_cmpge_pd(_mm_loadu_pd(samples + j), vth));
    word |= static_cast<std::uint64_t>(pair) << j;
  }
  return word;
#else
  unsigned char bytes[64];
  for (std::size_t j = 0; j < 64; ++j) bytes[j] = samples[j] >= threshold;
  std::uint64_t word = 0;
  for (std::size_t g = 0; g < 8; ++g) {
    std::uint64_t group;
    std::memcpy(&group, bytes + g * 8, sizeof group);
    word |= ((group * 0x0102040810204080ULL) >> 56) << (g * 8);
  }
  return word;
#endif
}

}  // namespace

std::vector<bool> adc(const std::vector<double>& analog, double threshold) {
  require_positive_threshold(threshold, "adc");
  std::vector<bool> digital(analog.size());
  for (std::size_t k = 0; k < analog.size(); ++k) {
    digital[k] = analog[k] >= threshold;
  }
  return digital;
}

logic::BitStream adc_packed(const std::vector<double>& analog,
                            double threshold) {
  require_positive_threshold(threshold, "adc_packed");
  constexpr std::size_t kWordBits = logic::BitStream::kWordBits;
  const std::size_t full_words = analog.size() / kWordBits;
  std::vector<std::uint64_t> words((analog.size() + kWordBits - 1) /
                                   kWordBits);
  const double* samples = analog.data();
  for (std::size_t w = 0; w < full_words; ++w) {
    words[w] = pack_word64(samples + w * kWordBits, threshold);
  }
  // Partial tail word (fewer than 64 remaining samples): plain loop.
  const std::size_t base = full_words * kWordBits;
  if (base < analog.size()) {
    std::uint64_t word = 0;
    for (std::size_t j = 0; base + j < analog.size(); ++j) {
      word |= static_cast<std::uint64_t>(samples[base + j] >= threshold) << j;
    }
    words[full_words] = word;
  }
  return logic::BitStream::from_words(analog.size(), std::move(words));
}

DigitalData digitize(const sim::Trace& trace,
                     const std::vector<std::string>& input_ids,
                     const std::string& output_id, double threshold) {
  if (input_ids.empty()) {
    throw InvalidArgument("digitize: at least one input species is required");
  }
  DigitalData data;
  data.inputs.reserve(input_ids.size());
  for (const auto& id : input_ids) {
    data.inputs.push_back(adc(trace.series(id), threshold));
  }
  data.output = adc(trace.series(output_id), threshold);
  return data;
}

PackedDigitalData digitize_packed(const sim::Trace& trace,
                                  const std::vector<std::string>& input_ids,
                                  const std::string& output_id,
                                  double threshold) {
  if (input_ids.empty()) {
    throw InvalidArgument(
        "digitize_packed: at least one input species is required");
  }
  PackedDigitalData data;
  data.inputs.reserve(input_ids.size());
  for (const auto& id : input_ids) {
    data.inputs.push_back(adc_packed(trace.series(id), threshold));
  }
  data.output = adc_packed(trace.series(output_id), threshold);
  return data;
}

PackedDigitalData pack(const DigitalData& data) {
  PackedDigitalData packed;
  packed.inputs.reserve(data.inputs.size());
  for (const auto& input : data.inputs) {
    packed.inputs.push_back(logic::BitStream::pack(input));
  }
  packed.output = logic::BitStream::pack(data.output);
  return packed;
}

DigitalData unpack(const PackedDigitalData& data) {
  DigitalData unpacked;
  unpacked.inputs.reserve(data.inputs.size());
  for (const auto& input : data.inputs) {
    unpacked.inputs.push_back(input.unpack());
  }
  unpacked.output = data.output.unpack();
  return unpacked;
}

PackedDigitalData take_digitized(store::DigitizingSink& sink,
                                 std::size_t input_count) {
  if (sink.planes().size() < input_count + 1) {
    throw InvalidArgument(
        "take_digitized: sink tracks fewer species than inputs + output");
  }
  PackedDigitalData data;
  data.inputs.reserve(input_count);
  for (std::size_t i = 0; i < input_count; ++i) {
    data.inputs.push_back(sink.take_plane(i));
  }
  data.output = sink.take_plane(input_count);
  return data;
}

}  // namespace glva::core
