#include "core/adc.h"

#include <algorithm>
#include <cstring>

#include "logic/word_pack.h"
#include "store/spill_reader.h"
#include "util/errors.h"

namespace glva::core {

namespace {

void require_positive_threshold(double threshold, const char* what) {
  if (threshold <= 0.0) {
    throw InvalidArgument(std::string(what) + ": threshold must be positive");
  }
}

}  // namespace

std::vector<bool> adc(const std::vector<double>& analog, double threshold) {
  require_positive_threshold(threshold, "adc");
  std::vector<bool> digital(analog.size());
  for (std::size_t k = 0; k < analog.size(); ++k) {
    digital[k] = analog[k] >= threshold;
  }
  return digital;
}

logic::BitStream adc_packed(const std::vector<double>& analog,
                            double threshold) {
  require_positive_threshold(threshold, "adc_packed");
  constexpr std::size_t kWordBits = logic::BitStream::kWordBits;
  const std::size_t full_words = analog.size() / kWordBits;
  std::vector<std::uint64_t> words((analog.size() + kWordBits - 1) /
                                   kWordBits);
  const double* samples = analog.data();
  // One dispatched block call packs every full word (the active SIMD
  // kernel compares 2/4/8 doubles per instruction); the ragged tail goes
  // through the length-taking packer so no out-of-bounds doubles are read.
  if (full_words > 0) {
    logic::simd::active().pack_threshold_block(samples, full_words, threshold,
                                               words.data());
  }
  const std::size_t base = full_words * kWordBits;
  if (base < analog.size()) {
    words[full_words] = logic::pack_threshold_bits(
        samples + base, analog.size() - base, threshold);
  }
  return logic::BitStream::from_words(analog.size(), std::move(words));
}

DigitalData digitize(const sim::Trace& trace,
                     const std::vector<std::string>& input_ids,
                     const std::string& output_id, double threshold) {
  if (input_ids.empty()) {
    throw InvalidArgument("digitize: at least one input species is required");
  }
  DigitalData data;
  data.inputs.reserve(input_ids.size());
  for (const auto& id : input_ids) {
    data.inputs.push_back(adc(trace.series(id), threshold));
  }
  data.output = adc(trace.series(output_id), threshold);
  return data;
}

PackedDigitalData digitize_packed(const sim::Trace& trace,
                                  const std::vector<std::string>& input_ids,
                                  const std::string& output_id,
                                  double threshold) {
  if (input_ids.empty()) {
    throw InvalidArgument(
        "digitize_packed: at least one input species is required");
  }
  PackedDigitalData data;
  data.inputs.reserve(input_ids.size());
  for (const auto& id : input_ids) {
    data.inputs.push_back(adc_packed(trace.series(id), threshold));
  }
  data.output = adc_packed(trace.series(output_id), threshold);
  return data;
}

PackedDigitalData pack(const DigitalData& data) {
  PackedDigitalData packed;
  packed.inputs.reserve(data.inputs.size());
  for (const auto& input : data.inputs) {
    packed.inputs.push_back(logic::BitStream::pack(input));
  }
  packed.output = logic::BitStream::pack(data.output);
  return packed;
}

DigitalData unpack(const PackedDigitalData& data) {
  DigitalData unpacked;
  unpacked.inputs.reserve(data.inputs.size());
  for (const auto& input : data.inputs) {
    unpacked.inputs.push_back(input.unpack());
  }
  unpacked.output = data.output.unpack();
  return unpacked;
}

PackedDigitalData take_digitized(store::DigitizingSink& sink,
                                 std::size_t input_count) {
  if (sink.planes().size() < input_count + 1) {
    throw InvalidArgument(
        "take_digitized: sink tracks fewer species than inputs + output");
  }
  PackedDigitalData data;
  data.inputs.reserve(input_count);
  for (std::size_t i = 0; i < input_count; ++i) {
    data.inputs.push_back(sink.take_plane(i));
  }
  data.output = sink.take_plane(input_count);
  return data;
}

PackedDigitalData load_digitized(store::SpillReader& reader,
                                 std::size_t input_count, double threshold) {
  require_positive_threshold(threshold, "load_digitized");
  // Bit comparison: the planes ARE the digitization — any threshold drift
  // means they describe a different experiment, so there is no tolerance
  // to apply.
  std::uint64_t want_bits = 0;
  std::uint64_t have_bits = 0;
  const double have = reader.threshold();
  std::memcpy(&want_bits, &threshold, sizeof want_bits);
  std::memcpy(&have_bits, &have, sizeof have_bits);
  if (want_bits != have_bits) {
    throw InvalidArgument(
        "load_digitized: file was digitized at a different threshold (" +
        std::to_string(have) + " vs requested " + std::to_string(threshold) +
        "): " + reader.path());
  }
  std::vector<logic::BitStream> planes = reader.read_planes();
  if (planes.size() < input_count + 1) {
    throw InvalidArgument(
        "load_digitized: file tracks fewer species than inputs + output");
  }
  PackedDigitalData data;
  data.inputs.reserve(input_count);
  for (std::size_t i = 0; i < input_count; ++i) {
    data.inputs.push_back(std::move(planes[i]));
  }
  data.output = std::move(planes[input_count]);
  return data;
}

}  // namespace glva::core
