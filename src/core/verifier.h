#pragma once

#include <string>
#include <vector>

#include "core/logic_analyzer.h"
#include "logic/truth_table.h"

/// Verification of extracted logic against the intended function — the
/// "verify complex genetic logic circuits" use of the paper's algorithm.
/// Mismatching combinations are the paper's "wrong states" (Figure 5
/// reports two wrong states for circuit 0x0B at threshold 40).
namespace glva::core {

/// One disagreement between extracted and expected logic.
struct WrongState {
  std::size_t combination = 0;
  bool expected_high = false;   ///< intended output for this combination
  /// Why the extracted value differs: the verdict the filters produced.
  CaseVerdict verdict = CaseVerdict::kLow;
};

/// The outcome of verifying one extraction.
struct VerificationReport {
  bool matches = false;                ///< extracted == expected everywhere
  std::vector<WrongState> wrong_states;
  /// Wrong states / total combinations, in percent ([0, 100]; 0 iff
  /// `matches`).
  double error_percent = 0.0;
  /// PFoBE carried over from the extraction ([0, 100], equation (3)), for
  /// one-stop reporting.
  double fitness_percent = 0.0;

  [[nodiscard]] std::size_t wrong_state_count() const noexcept {
    return wrong_states.size();
  }
};

/// Compare an extraction against the intended truth table. A combination
/// counts as a wrong state whenever the extracted output differs from the
/// expected one — including combinations the filters left unobserved or
/// unstable (their verdict is recorded in WrongState::verdict so reports
/// can explain the disagreement).
///
/// The disagreement set comes from TruthTable::differing_rows — an XOR +
/// popcount scan over the bit-packed tables — so the per-combination work
/// is O(wrong states), not O(2^N). Precondition/throws:
/// glva::InvalidArgument when input counts differ. Postcondition:
/// error_percent == 100 · wrong_state_count / 2^N and matches iff
/// wrong_state_count == 0.
[[nodiscard]] VerificationReport verify(const ExtractionResult& extraction,
                                        const logic::TruthTable& expected);

/// Human-readable one-line summary ("MATCH" or "2 wrong state(s): 011->0,
/// 110->1").
[[nodiscard]] std::string summarize(const VerificationReport& report,
                                    const logic::TruthTable& expected);

}  // namespace glva::core
