#pragma once

#include <string>

#include "core/ensemble.h"
#include "core/experiment.h"
#include "core/logic_analyzer.h"

/// Rendering of analysis results in the paper's reporting formats: the
/// Figure-4 analytics (Case_I / High_O / Var_O per input combination with
/// the Boolean expression and percentage fitness) as text tables, bar
/// charts, and CSV.
namespace glva::core {

/// The per-combination analytics table (Figure 4's numeric content), one
/// row per input combination: label, Case_I, High_O, Var_O, FOV_EST,
/// filter outcomes, verdict.
[[nodiscard]] std::string render_analytics_table(const ExtractionResult& extraction);

/// Figure-4-style bar charts of Case_I, High_O, and Var_O by combination.
[[nodiscard]] std::string render_analytics_bars(const ExtractionResult& extraction);

/// One-paragraph summary: extracted expression, PFoBE, verification
/// verdict, timings. `timings = false` omits the wall-clock line — the
/// only nondeterministic bytes — leaving a byte-stable report for golden
/// tests, the daemon's result cache, and CLI/daemon identity checks.
[[nodiscard]] std::string render_experiment_summary(
    const ExperimentResult& result, const logic::TruthTable& expected,
    bool timings = true);

/// CSV with one row per combination (machine-readable Figure 4 data).
/// Columns: case, case_count, high_count, variation_count, fov_est,
/// filter1_pass, filter2_pass, verdict.
[[nodiscard]] std::string analytics_csv(const ExtractionResult& extraction);

/// The `glva ensemble --csv` document — every replicate's per-combination
/// analytics, one block per replicate in replicate order, distinguished by
/// the leading `replicate` index column (0-based); columns: replicate,
/// then the analytics_csv columns — is *streamed*: the header below, then
/// one `ensemble_analytics_csv_rows` block per replicate, emitted from a
/// core::ReplicateObserver as each ordered commit arrives, so the writer
/// never holds more than one replicate. (`--csv-dir` streams the same
/// analytics as one analytics_csv file per replicate instead.)
[[nodiscard]] std::string ensemble_analytics_csv_header();

/// One replicate's block of the ensemble analytics CSV: the analytics_csv
/// rows prefixed with the replicate index, no header.
[[nodiscard]] std::string ensemble_analytics_csv_rows(
    std::size_t replicate, const ExtractionResult& extraction);

/// CSV of the ensemble's replicate-level confidence intervals (the `glva
/// ensemble --ci-csv` format): one row per metric. Columns: metric, mean,
/// stddev, ci95_low, ci95_high; rows pfobe_percent and wrong_states.
[[nodiscard]] std::string ensemble_confidence_csv(
    const EnsembleResult& ensemble);

}  // namespace glva::core
