#include "core/bool_constructor.h"

#include "logic/quine_mccluskey.h"
#include "util/errors.h"

namespace glva::core {

BoolConstruction construct_bool_expr(const VariationAnalysis& variation,
                                     double fov_ud,
                                     std::vector<std::string> input_names) {
  if (fov_ud <= 0.0 || fov_ud > 1.0) {
    throw InvalidArgument("construct_bool_expr: FOV_UD must be in (0, 1]");
  }
  const std::size_t n = variation.input_count;
  if (input_names.size() != n) {
    throw InvalidArgument("construct_bool_expr: need one name per input");
  }

  BoolConstruction result{
      {},
      logic::TruthTable(n),
      logic::SopExpr(n, input_names),
      logic::SopExpr(n, input_names),
      100.0,
      {},
      {}};
  result.outcomes.resize(variation.records.size());

  double fov_sum = 0.0;
  const auto nc = static_cast<double>(variation.records.size());

  for (std::size_t c = 0; c < variation.records.size(); ++c) {
    const VariationRecord& record = variation.records[c];
    FilterOutcome& outcome = result.outcomes[c];
    outcome.combination = c;

    if (record.case_count == 0) {
      outcome.verdict = CaseVerdict::kUnobserved;
      result.unobserved.push_back(c);
      continue;
    }
    // Equation (1): stability filter.
    outcome.filter1_pass = record.fov_est < fov_ud;
    // Equation (2): majority filter.
    outcome.filter2_pass =
        static_cast<double>(record.high_count) >
        static_cast<double>(record.case_count) / 2.0;

    if (outcome.filter1_pass && outcome.filter2_pass) {
      outcome.verdict = CaseVerdict::kHigh;
      result.extracted.set_output(c, true);
      fov_sum += record.fov_est;
    } else if (outcome.filter2_pass) {
      // Majority high but too oscillatory: the paper's Figure 3 case — the
      // unstable state is excluded from the expression.
      outcome.verdict = CaseVerdict::kUnstable;
      result.unstable.push_back(c);
    } else {
      outcome.verdict = CaseVerdict::kLow;
    }
  }

  // Equation (3).
  result.fitness_percent = 100.0 - (fov_sum / nc) * 100.0;

  result.canonical = logic::SopExpr::canonical(result.extracted, input_names);
  // Unobserved combinations carry no evidence either way: minimize with
  // them as don't-cares so the printed expression does not invent a 0.
  result.minimized =
      logic::minimize(result.extracted, std::move(input_names),
                      result.unobserved);
  return result;
}

}  // namespace glva::core
