#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/variation_analyzer.h"
#include "logic/bool_expr.h"
#include "logic/truth_table.h"

/// The ConstBoolExpr sub-procedure of Algorithm 1 (line 7): applies the two
/// filters and constructs the Boolean expression plus the percentage
/// fitness (PFoBE, equation (3)).
namespace glva::core {

/// How a combination was classified by the filters.
enum class CaseVerdict {
  kLow,          ///< output not high by majority → logic-0
  kHigh,         ///< both filters passed → minterm of the expression
  kUnstable,     ///< majority-high but Filter 1 failed (too oscillatory)
  kUnobserved,   ///< combination never occurred in the simulation data
};

/// One combination's filter outcome.
struct FilterOutcome {
  std::size_t combination = 0;
  bool filter1_pass = false;  ///< equation (1): FOV_EST < FOV_UD
  bool filter2_pass = false;  ///< equation (2): HIGH_O > Case_I / 2
  CaseVerdict verdict = CaseVerdict::kUnobserved;
};

/// Result of expression construction.
struct BoolConstruction {
  std::vector<FilterOutcome> outcomes;   ///< indexed by combination
  logic::TruthTable extracted;           ///< accepted-high combinations
  logic::SopExpr canonical;              ///< sum of accepted minterms
  logic::SopExpr minimized;              ///< Quine–McCluskey minimized
  double fitness_percent = 100.0;        ///< PFoBE, equation (3)
  std::vector<std::size_t> unobserved;   ///< combinations never applied
  std::vector<std::size_t> unstable;     ///< Filter-1-rejected majority-highs
};

/// Apply both filters to the variation analysis and build the expression.
///
/// Filter 1 (eq. 1) accepts a candidate when FOV_EST[i] = O_Var[i]/Case_I[i]
/// is strictly below `fov_ud` (the paper allows up to 25%: FOV_UD = 0.25).
/// Filter 2 (eq. 2) accepts when HIGH_O[i] > Case_I[i]/2. A combination
/// becomes a minterm only if both pass — the paper's Figures 2 and 3 show
/// either filter alone mis-classifies (XNOR instead of AND; oscillatory
/// streams with plausible duty cycles).
///
/// PFoBE (eq. 3) = 100 − (Σ_i FOV_EST_i / nc) × 100, summed over the
/// accepted-high combinations, nc = 2^N.
///
/// `input_names` label the expression variables (one per input, MSB first).
///
/// Throws glva::InvalidArgument unless fov_ud is in (0, 1] and there is
/// exactly one name per input. Unobserved combinations are minimized as
/// don't-cares (the data carries no evidence either way), so `minimized`
/// may cover them while `extracted` reports them as 0.
[[nodiscard]] BoolConstruction construct_bool_expr(
    const VariationAnalysis& variation, double fov_ud,
    std::vector<std::string> input_names);

}  // namespace glva::core
