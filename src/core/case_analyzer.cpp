#include "core/case_analyzer.h"

#include "util/errors.h"

namespace glva::core {

CaseAnalysis analyze_cases(const DigitalData& data) {
  const std::size_t n = data.input_count();
  if (n == 0) {
    throw InvalidArgument("analyze_cases: no input streams");
  }
  if (n > 16) {
    throw InvalidArgument("analyze_cases: more than 16 inputs");
  }
  const std::size_t samples = data.sample_count();
  for (const auto& input : data.inputs) {
    if (input.size() != samples) {
      throw InvalidArgument(
          "analyze_cases: input/output stream lengths differ");
    }
  }

  CaseAnalysis analysis;
  analysis.input_count = n;
  analysis.cases.resize(static_cast<std::size_t>(1) << n);
  for (std::size_t c = 0; c < analysis.cases.size(); ++c) {
    analysis.cases[c].combination = c;
  }

  for (std::size_t k = 0; k < samples; ++k) {
    std::size_t combination = 0;
    for (std::size_t i = 0; i < n; ++i) {
      combination = (combination << 1) | (data.inputs[i][k] ? 1U : 0U);
    }
    CaseRecord& record = analysis.cases[combination];
    ++record.case_count;
    record.output_stream.push_back(data.output[k]);
  }
  return analysis;
}

PackedCaseAnalysis analyze_cases_packed(const PackedDigitalData& data) {
  const std::size_t n = data.input_count();
  if (n == 0) {
    throw InvalidArgument("analyze_cases_packed: no input streams");
  }
  const std::size_t samples = data.sample_count();
  for (const auto& input : data.inputs) {
    if (input.size() != samples) {
      throw InvalidArgument(
          "analyze_cases_packed: input/output stream lengths differ");
    }
  }

  PackedCaseAnalysis analysis;
  analysis.input_count = n;
  // CombinationIndex re-validates and throws for n > kMaxInputs.
  analysis.index = logic::CombinationIndex(data.inputs);
  analysis.output = data.output;
  return analysis;
}

CaseAnalysis case_counts(const PackedCaseAnalysis& analysis) {
  return case_counts(analysis.index);
}

CaseAnalysis case_counts(const logic::CombinationIndex& index) {
  CaseAnalysis counts;
  counts.input_count = index.input_count();
  counts.cases.resize(index.combination_count());
  for (std::size_t c = 0; c < counts.cases.size(); ++c) {
    counts.cases[c].combination = c;
    counts.cases[c].case_count = index.count(c);
  }
  return counts;
}

}  // namespace glva::core
