// Beyond the paper: what the logic analyzer reports when the circuit is
// NOT combinational.
//
// The DATE'17 algorithm assumes each input combination settles to one
// output level. Two classic dynamic circuits break that assumption in
// different ways, and GLVA's outputs flag both:
//
//  * the genetic toggle switch (an SR latch) — output under input 00
//    depends on history, so sweeping the combinations in different orders
//    extracts different "Boolean functions";
//  * the repressilator (a ring oscillator) — the output never settles, so
//    the variation filter rejects states and PFoBE collapses.

#include <iostream>

#include "circuits/sequential_circuits.h"
#include "core/logic_analyzer.h"
#include "core/report.h"
#include "sim/virtual_lab.h"
#include "util/string_util.h"
#include "util/text_table.h"

using namespace glva;

namespace {

core::ExtractionResult analyze_with_order(
    const sbml::Model& model, const std::vector<std::string>& inputs,
    const std::vector<std::size_t>& combo_order) {
  sim::VirtualLab lab(model, sim::LabOptions{1.0, 21, sim::SsaMethod::kDirect});
  lab.declare_inputs(inputs);

  // Hand-built schedule visiting combinations in the given order.
  sim::InputSchedule schedule(inputs);
  const double hold = 10000.0 / static_cast<double>(combo_order.size());
  for (std::size_t k = 0; k < combo_order.size(); ++k) {
    std::vector<double> levels(inputs.size(), 0.0);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const bool high =
          (combo_order[k] >> (inputs.size() - 1 - i) & 1U) != 0;
      levels[i] = high ? 15.0 : 0.0;
    }
    schedule.add_phase(static_cast<double>(k) * hold, std::move(levels));
  }
  const sim::Trace trace = lab.run(schedule, 10000.0);
  const core::LogicAnalyzer analyzer(core::AnalyzerConfig{15.0, 0.25});
  return analyzer.analyze(trace, inputs, "GFP");
}

}  // namespace

int main() {
  std::cout << "=== toggle switch: extraction depends on sweep order ===\n\n";
  const auto toggle = circuits::toggle_switch_model();
  const std::vector<std::string> sr_inputs{"S_set", "S_reset"};

  // Ascending order visits 00 while the latch still holds its initial
  // state; set-first visits 00 right after a SET pulse.
  const auto ascending = analyze_with_order(toggle, sr_inputs, {0, 1, 2, 3});
  const auto set_first = analyze_with_order(toggle, sr_inputs, {2, 0, 1, 3});

  util::TextTable table({"sweep order", "extracted GFP =", "PFoBE %"});
  table.add_row({"00,01,10,11", ascending.expression(),
                 util::format_double(ascending.fitness(), 5)});
  table.add_row({"10,00,01,11", set_first.expression(),
                 util::format_double(set_first.fitness(), 5)});
  std::cout << table.str() << "\n";
  const bool order_dependent =
      !(ascending.extracted() == set_first.extracted());
  std::cout << (order_dependent
                    ? "the two orders disagree -> the circuit holds state; "
                      "it has no Boolean function\n\n"
                    : "(orders agreed on this seed; the 00 case is "
                      "history-dependent in general)\n\n");

  std::cout << "=== repressilator: oscillation defeats the settling "
               "assumption ===\n\n";
  const auto osc = circuits::repressilator_model();
  sim::VirtualLab lab(osc, sim::LabOptions{1.0, 22, sim::SsaMethod::kDirect});
  lab.declare_inputs({"dummy_in"});
  const auto sweep = lab.run_combination_sweep(10000.0, 15.0);
  const core::LogicAnalyzer analyzer(core::AnalyzerConfig{15.0, 0.25});
  const auto result = analyzer.analyze(sweep.trace, {"dummy_in"}, "GFP");

  std::cout << core::render_analytics_table(result) << "\n";
  std::cout << "extracted: GFP = " << result.expression() << " (PFoBE "
            << util::format_double(result.fitness(), 5) << " %)\n";
  std::cout << "high oscillation counts (Var_O) and ";
  std::cout << (result.construction.unstable.empty()
                    ? "majority-filter rejections"
                    : "unstable-state rejections");
  std::cout << " are the analyzer's signal that this circuit is not "
               "combinational.\n";
  return 0;
}
