// Logic discovery on an unknown circuit, including intermediate signals.
//
// The paper's second use case: "it helps in extracting the Boolean logic of
// a circuit even when the user does not have any prior knowledge about its
// expected behaviour", and the IS/OS selection "can perform Boolean logic
// analysis on the entire circuit as well as on the intermediate circuit
// components".
//
// This example loads the 0x17 (3-input minority) circuit as if it were a
// black box, extracts the logic of the *reporter* and of every internal
// repressor stage, and prints the per-stage expressions — effectively
// recovering the gate-level structure from simulation alone.

#include <iostream>

#include "circuits/circuit_repository.h"
#include "core/logic_analyzer.h"
#include "sim/virtual_lab.h"
#include "util/string_util.h"
#include "util/text_table.h"

int main() {
  using namespace glva;

  const auto spec = circuits::CircuitRepository::build("0x17");
  std::cout << "black-box circuit with inputs A, B, C — discovering its logic"
            << "\n\n";

  sim::VirtualLab lab(spec.model, sim::LabOptions{1.0, 7, sim::SsaMethod::kDirect});
  lab.declare_inputs(spec.input_ids);
  // A longer sweep tightens intermediate-stage statistics: deep stages see
  // the stimulus only after several propagation delays.
  const sim::SweepResult sweep = lab.run_combination_sweep(20000.0, 15.0);

  const core::LogicAnalyzer analyzer(core::AnalyzerConfig{15.0, 0.25});

  util::TextTable table({"observed species", "extracted expression", "PFoBE %"});
  table.set_align(2, util::TextTable::Align::kRight);
  for (const auto& species : sweep.trace.species_names()) {
    // Skip the inputs themselves; analyze every internal protein + GFP.
    bool is_input = false;
    for (const auto& input : spec.input_ids) is_input |= (input == species);
    if (is_input) continue;

    const core::ExtractionResult result =
        analyzer.analyze(sweep.trace, spec.input_ids, species);
    table.add_row({species, result.expression(),
                   util::format_double(result.fitness(), 5)});
  }
  std::cout << table.str() << "\n";

  const core::ExtractionResult reporter =
      analyzer.analyze(sweep.trace, spec.input_ids, spec.output_id);
  std::cout << "reporter logic: " << spec.output_id << " = "
            << reporter.expression() << "\n"
            << "(intended: 3-input minority — A'·B' + A'·C' + B'·C')\n";
  return 0;
}
