// SBML interchange: generate a circuit model, write it as an SBML Level 3
// document, read it back, validate it, and confirm the reloaded model
// simulates and analyzes identically — the interoperability path a D-VASim
// user exercises when loading Cello/iBioSim-produced models.

#include <iostream>

#include "circuits/circuit_repository.h"
#include "core/experiment.h"
#include "sbml/reader.h"
#include "sbml/validate.h"
#include "sbml/writer.h"

int main() {
  using namespace glva;

  // 1. Generate the 0x8 (2-input AND) gate circuit and serialize it.
  circuits::CircuitSpec spec = circuits::CircuitRepository::build("0x8");
  const std::string document = sbml::write_sbml(spec.model);
  std::cout << "generated SBML (" << document.size() << " bytes), excerpt:\n";
  std::cout << document.substr(0, 600) << "...\n\n";

  const std::string path = "roundtrip_0x8.sbml";
  sbml::write_sbml_file(spec.model, path);
  std::cout << "written to " << path << "\n";

  // 2. Read it back and validate.
  sbml::Model reloaded = sbml::read_sbml_file(path);
  const auto warnings = sbml::validate_or_throw(reloaded);
  std::cout << "reloaded model '" << reloaded.id << "': "
            << reloaded.species.size() << " species, "
            << reloaded.reactions.size() << " reactions, "
            << warnings.size() << " validation warning(s)\n\n";

  // 3. The reloaded model must produce the same extracted logic (same seed
  // => bit-identical traces => identical analysis).
  core::ExperimentConfig config;
  const core::ExperimentResult original = core::run_experiment(spec, config);

  circuits::CircuitSpec reloaded_spec = spec;
  reloaded_spec.model = std::move(reloaded);
  const core::ExperimentResult replayed =
      core::run_experiment(reloaded_spec, config);

  std::cout << "original:  GFP = " << original.extraction.expression()
            << " (fitness " << original.extraction.fitness() << ")\n";
  std::cout << "roundtrip: GFP = " << replayed.extraction.expression()
            << " (fitness " << replayed.extraction.fitness() << ")\n";

  const bool identical =
      original.extraction.extracted() == replayed.extraction.extracted() &&
      original.extraction.fitness() == replayed.extraction.fitness();
  std::cout << (identical ? "round-trip is bit-identical\n"
                          : "ROUND-TRIP MISMATCH\n");
  return identical ? 0 : 1;
}
