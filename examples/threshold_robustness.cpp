// Threshold robustness analysis — the Figure 5 workflow as a user-facing
// tool: estimate a circuit's threshold and propagation delay from step
// responses (the D-VASim capabilities of [10]), then sweep the threshold
// around the estimate and report where the extracted logic degrades.
//
// "This may help users to analyze the circuit's behavior and robustness
// for different parameter sets before creating them in the laboratory."

#include <iostream>

#include "circuits/circuit_repository.h"
#include "core/threshold_sweep.h"
#include "timing/delay_estimator.h"
#include "timing/threshold_estimator.h"
#include "util/string_util.h"
#include "util/text_table.h"

int main() {
  using namespace glva;

  const auto spec = circuits::CircuitRepository::build("0x0B");
  std::cout << "circuit " << spec.name << ": " << spec.description << "\n\n";

  // Step 1: estimate the logic threshold from a saturating probe sweep
  // (inputs at 30 molecules — comfortably past every gate's half-point).
  sim::VirtualLab lab(spec.model, sim::LabOptions{1.0, 11, sim::SsaMethod::kDirect});
  lab.declare_inputs(spec.input_ids);
  const auto threshold_info =
      timing::estimate_threshold(lab, spec.output_id, 30.0, 10000.0);
  std::cout << "estimated threshold: "
            << util::format_double(threshold_info.threshold, 4)
            << " molecules (off plateau "
            << util::format_double(threshold_info.off_mean, 4) << ", on plateau "
            << util::format_double(threshold_info.on_mean, 4) << ", separation "
            << util::format_double(threshold_info.separation, 3) << ")\n";

  // Step 2: estimate propagation delays on the same probe sweep.
  const auto sweep = lab.run_combination_sweep(10000.0, 30.0);
  const auto delays = timing::estimate_delays(
      sweep.trace, sweep.schedule, spec.output_id, threshold_info.threshold);
  std::cout << "propagation delay: rise "
            << util::format_double(delays.mean_rise_delay, 4) << " tu, fall "
            << util::format_double(delays.mean_fall_delay, 4)
            << " tu; recommended hold per combination >= "
            << util::format_double(delays.recommended_hold_time, 4) << " tu\n\n";

  // Step 3: threshold sweep (Figure 5 generalized to a dense grid), one
  // exec/ job per point across all hardware threads (jobs = 0); the result
  // is bit-identical to a serial sweep.
  core::ExperimentConfig config;
  const auto points = core::threshold_sweep(
      spec, config, {3.0, 5.0, 8.0, 12.0, 15.0, 20.0, 30.0, 40.0},
      /*jobs=*/0);

  util::TextTable table({"ThVAL", "expression", "PFoBE %", "verify"});
  table.set_align(0, util::TextTable::Align::kRight);
  table.set_align(2, util::TextTable::Align::kRight);
  for (const auto& point : points.points) {
    table.add_row(
        {util::format_double(point.threshold, 4),
         point.result.extraction.expression(),
         util::format_double(point.result.extraction.fitness(), 5),
         core::summarize(point.result.verification, spec.expected)});
  }
  std::cout << table.str()
            << "\nthe circuit is robust only in the mid-band around the "
               "estimated threshold —\nexactly the paper's conclusion from "
               "Figure 5.\n";
  return 0;
}
