// Quickstart: the paper's end-to-end flow on the Figure 1 genetic AND gate.
//
//  1. build the 2-input genetic AND circuit (LacI, TetR -> GFP),
//  2. sweep all input combinations in the virtual lab (10,000 time units,
//     inputs applied at the 15-molecule threshold),
//  3. run Algorithm 1 (ADC -> CaseAnalyzer -> VariationAnalyzer ->
//     ConstBoolExpr) to extract the Boolean logic,
//  4. verify it against the intended AND function and print the
//     Figure-4-style analytics.

#include <iostream>

#include "circuits/circuit_repository.h"
#include "core/experiment.h"
#include "core/report.h"

int main() {
  using namespace glva;

  // 1. The Figure 1 circuit from the built-in repository.
  const circuits::CircuitSpec spec =
      circuits::CircuitRepository::build("myers_and");
  std::cout << "circuit: " << spec.name << " — " << spec.description << "\n"
            << "inputs:  " << spec.input_ids[0] << " (A), " << spec.input_ids[1]
            << " (B); output: " << spec.output_id << "\n\n";

  // 2 + 3 + 4. Simulate, analyze, verify — defaults follow the paper:
  // 10,000 time units, threshold 15 molecules, FOV_UD = 0.25.
  core::ExperimentConfig config;
  const core::ExperimentResult result = core::run_experiment(spec, config);

  std::cout << core::render_analytics_table(result.extraction) << "\n";
  std::cout << core::render_experiment_summary(result, spec.expected);
  return result.verification.matches ? 0 : 1;
}
