// Design-choice ablations beyond the paper's figures:
//
//  (a) filter ablation across the full 15-circuit set — how often each
//      baseline rule (any-high / majority-only / stability-only) extracts
//      the wrong function vs the paper's two-filter rule;
//  (b) FOV_UD sensitivity — sweep the user-defined acceptable variation
//      and report where extraction flips (the paper fixes 0.25);
//  (c) hold-time sensitivity — shrink the per-combination hold time below
//      the propagation delay and watch wrong states appear (the paper's
//      Section II warning).

#include <iostream>

#include "circuits/circuit_repository.h"
#include "core/baseline.h"
#include "core/experiment.h"
#include "logic/quine_mccluskey.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/text_table.h"

namespace {

using namespace glva;

void filter_ablation(const core::ExperimentConfig& config) {
  std::cout << "=== (a) extraction rule ablation, all 15 circuits ===\n\n";
  const auto rules = {
      core::BaselineRule::kAnyHigh, core::BaselineRule::kStabilityOnly,
      core::BaselineRule::kMajorityOnly, core::BaselineRule::kBothFilters};

  util::TextTable table(
      {"rule", "correct", "wrong", "example failure (circuit: extracted)"});
  for (const auto rule : rules) {
    std::size_t correct = 0;
    std::string example;
    for (const auto& spec : circuits::CircuitRepository::build_all()) {
      const core::ExperimentResult result = core::run_experiment(spec, config);
      const logic::TruthTable extracted = core::extract_with_rule(
          result.extraction.variation, rule, config.fov_ud);
      if (extracted == spec.expected) {
        ++correct;
      } else if (example.empty()) {
        example = spec.name + ": " +
                  logic::minimize(extracted, spec.input_ids).to_string();
      }
    }
    table.add_row({core::baseline_rule_name(rule), std::to_string(correct),
                   std::to_string(15 - correct), example});
  }
  std::cout << table.str() << "\n";
}

void fov_sweep(const core::ExperimentConfig& base) {
  std::cout << "=== (b) FOV_UD sensitivity on circuit 0x0B ===\n\n";
  const auto spec = circuits::CircuitRepository::build("0x0B");

  // One simulation; re-filter under different FOV_UD values.
  core::ExperimentResult reference = core::run_experiment(spec, base);
  util::TextTable table({"FOV_UD", "expression", "verify"});
  table.set_align(0, util::TextTable::Align::kRight);
  for (const double fov : {0.001, 0.005, 0.02, 0.1, 0.25, 0.5, 1.0}) {
    core::ExperimentConfig config = base;
    config.fov_ud = fov;
    const core::ExperimentResult result =
        core::reanalyze(spec, config, reference.sweep);
    table.add_row({util::format_double(fov, 4),
                   result.extraction.expression(),
                   core::summarize(result.verification, spec.expected)});
  }
  std::cout << table.str() << "\n";
}

void sampling_sweep(const core::ExperimentConfig& base) {
  std::cout << "=== (d) sampling-period and trace-length sensitivity (0x0B) "
               "===\n"
            << "(the analyzer sees fewer samples as the period grows; PFoBE "
               "and correctness\n should be stable until combinations are "
               "too thinly sampled)\n\n";
  const auto spec = circuits::CircuitRepository::build("0x0B");
  util::TextTable table({"sampling period", "samples", "expression",
                         "PFoBE %", "verify"});
  table.set_align(0, util::TextTable::Align::kRight);
  table.set_align(1, util::TextTable::Align::kRight);
  table.set_align(3, util::TextTable::Align::kRight);
  for (const double period : {0.5, 1.0, 5.0, 20.0, 50.0, 100.0}) {
    core::ExperimentConfig config = base;
    config.sampling_period = period;
    const auto result = core::run_experiment(spec, config);
    table.add_row({util::format_double(period, 4),
                   std::to_string(result.sweep.trace.sample_count()),
                   result.extraction.expression(),
                   util::format_double(result.extraction.fitness(), 5),
                   core::summarize(result.verification, spec.expected)});
  }
  std::cout << table.str() << "\n";
}

void hold_time_sweep(const core::ExperimentConfig& base) {
  std::cout << "=== (c) hold-time sensitivity on circuit 0x17 (deepest) ===\n"
            << "(per-combination hold = total_time / 8; the paper warns that "
               "combinations\n changed before the propagation delay elapses "
               "give wrong output states)\n\n";
  const auto spec = circuits::CircuitRepository::build("0x17");
  util::TextTable table({"hold (tu)", "expression", "verify"});
  table.set_align(0, util::TextTable::Align::kRight);
  for (const double total : {800.0, 1600.0, 3200.0, 6400.0, 10000.0, 20000.0}) {
    core::ExperimentConfig config = base;
    config.total_time = total;
    const core::ExperimentResult result = core::run_experiment(spec, config);
    table.add_row({util::format_double(total / 8.0, 5),
                   result.extraction.expression(),
                   core::summarize(result.verification, spec.expected)});
  }
  std::cout << table.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("total-time", "10000", "sweep duration (time units)");
  cli.add_option("threshold", "15", "ThVAL (molecules)");
  cli.add_option("fov-ud", "0.25", "FOV_UD");
  cli.add_option("seed", "1", "simulation seed");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("ablation_filters");
    return 0;
  }

  core::ExperimentConfig config;
  config.total_time = cli.get_double("total-time");
  config.threshold = cli.get_double("threshold");
  config.fov_ud = cli.get_double("fov-ud");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  filter_ablation(config);
  fov_sweep(config);
  hold_time_sweep(config);
  sampling_sweep(config);
  return 0;
}
