// Runtime claim (Section IV): "the proposed algorithm takes about 8.4
// seconds to analyze the logic of a complex genetic circuit with
// significantly large-sized data."
//
// Measures the analysis stage alone (ADC -> CaseAnalyzer ->
// VariationAnalyzer -> ConstBoolExpr) on traces from 10^4 to 10^7 samples
// of a 3-input circuit, once per backend: the bit-packed production path
// (logic::BitStream + CombinationIndex, word-parallel masks + popcounts)
// and the vector<bool> reference it is cross-checked against. Shape
// targets: both are linear in sample count, the packed path is >= 4x the
// reference's throughput at 10^6 samples (the PR's acceptance bar), and a
// multi-million-sample trace lands in the seconds range of the paper's
// anecdote (absolute numbers depend on hardware).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/logic_analyzer.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace {

using namespace glva;

/// Synthesize a sweep-shaped trace: 3 clamped inputs cycling through all
/// combinations, output following C*(A'+B) with a noisy plateau — the same
/// statistical profile the real simulator produces, but generated fast
/// enough to scale to 10^7 samples.
sim::Trace make_trace(std::size_t samples, std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::Trace trace({"A", "B", "C", "GFP"});
  const std::size_t per_combo = samples / 8 + 1;
  std::vector<double> row(4);
  for (std::size_t k = 0; k < samples; ++k) {
    const std::size_t combo = (k / per_combo) % 8;
    const bool a = (combo & 4U) != 0;
    const bool b = (combo & 2U) != 0;
    const bool c = (combo & 1U) != 0;
    row[0] = a ? 15.0 : 0.0;
    row[1] = b ? 15.0 : 0.0;
    row[2] = c ? 15.0 : 0.0;
    const bool high = c && (!a || b);
    const double mean = high ? 55.0 : 1.2;
    // Gaussian approximation of the Poisson plateau noise.
    row[3] = mean + rng.normal() * (high ? 7.4 : 1.1);
    if (row[3] < 0.0) row[3] = 0.0;
    trace.append(static_cast<double>(k), row);
  }
  return trace;
}

void run_analysis(benchmark::State& state, core::AnalysisBackend backend) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const sim::Trace trace = make_trace(samples, 42);
  const core::LogicAnalyzer analyzer(
      core::AnalyzerConfig{15.0, 0.25, backend});

  for (auto _ : state) {
    auto result = analyzer.analyze(trace, {"A", "B", "C"}, "GFP");
    benchmark::DoNotOptimize(result.construction.fitness_percent);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["samples"] = static_cast<double>(samples);
}

void BM_analysis_packed(benchmark::State& state) {
  run_analysis(state, core::AnalysisBackend::kPacked);
}

void BM_analysis_reference(benchmark::State& state) {
  run_analysis(state, core::AnalysisBackend::kReference);
}

void BM_adc_only(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const sim::Trace trace = make_trace(samples, 42);
  for (auto _ : state) {
    auto digital = core::digitize(trace, {"A", "B", "C"}, "GFP", 15.0);
    benchmark::DoNotOptimize(digital.output.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_adc_only_packed(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const sim::Trace trace = make_trace(samples, 42);
  for (auto _ : state) {
    auto digital = core::digitize_packed(trace, {"A", "B", "C"}, "GFP", 15.0);
    benchmark::DoNotOptimize(digital.output.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples) *
                          static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_analysis_packed)
    ->Arg(10'000)->Arg(100'000)->Arg(1'000'000)->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_analysis_reference)
    ->Arg(10'000)->Arg(100'000)->Arg(1'000'000)->Arg(10'000'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_adc_only)->Arg(1'000'000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_adc_only_packed)->Arg(1'000'000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
