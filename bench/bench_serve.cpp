// Load generator for the `glva serve` daemon: N client connections drive
// the framed JSON protocol with a verify workload, first with distinct
// requests (cold cache: every request executes) and then with repeats
// (warm cache: every request should be served without execution). Reports
// requests/sec and p50/p95/p99 latency per pass (from the shared obs/
// histograms when metrics are compiled in), plus the server's own
// cache/admission accounting fetched through `status` and `stats`
// requests.
//
// Modes:
//   - default: an in-process serve::Server is started on a temporary
//     Unix socket, so the bench is self-contained and golden-testable;
//   - --unix PATH / --connect HOST:PORT: drive an external daemon (the
//     CI smoke starts `glva serve --unix ...` and points the bench at it);
//   - --mode open --rate R: the warm pass issues requests on a fixed
//     schedule (open loop; latency includes queueing behind the schedule)
//     instead of back-to-back (closed loop).
//
// With --no-timings all wall-clock dependent lines are suppressed and the
// remaining accounting is byte-deterministic; --require-cache-hits makes
// a zero warm-cache hit count a failure (exit 1), which is what the CI
// smoke asserts.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/string_util.h"

namespace {

using glva::serve::Client;
using glva::serve::Json;

struct Workload {
  std::string endpoint_kind;  // "unix" | "tcp"
  std::string unix_path;
  std::string tcp_host;
  std::string tcp_port;

  Client connect() const {
    return endpoint_kind == "unix" ? Client::connect_unix(unix_path)
                                   : Client::connect_tcp(tcp_host, tcp_port);
  }
};

/// The request payload for distinct-request index `k`: same circuit and
/// config, per-index seed — distinct content addresses, equal cost.
std::string request_payload(const std::string& circuit, double total_time,
                            std::uint64_t seed, std::size_t k) {
  return Json::object_of(
             {{"op", Json::of("verify")},
              {"target", Json::of(circuit)},
              {"options",
               Json::array_of({Json::of("--total-time"),
                               Json::of(glva::util::format_double(total_time)),
                               Json::of("--seed"),
                               Json::of(std::to_string(seed + k)),
                               Json::of("--no-timings")})},
              {"id", Json::of_u64(k)}})
      .dump();
}

struct PassResult {
  std::size_t requests = 0;
  std::size_t executed = 0;          // responses with cached:false
  std::size_t served_from_cache = 0; // responses with cached:true
  std::vector<double> latencies_ms;
  bool bodies_consistent = true;
};

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::max(0.0, p / 100.0 * static_cast<double>(values.size()) - 1.0));
  return values[std::min(rank, values.size() - 1)];
}

struct Quantiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Pass quantiles from the shared obs/ histogram (the same estimator a
/// `stats` snapshot reports); exact sorted-sample percentiles when the
/// histogram is absent (GLVA_NO_METRICS builds).
Quantiles pass_quantiles(const glva::obs::Snapshot& snap, const char* name,
                         const std::vector<double>& values) {
  for (const glva::obs::HistogramSample& h : snap.histograms) {
    if (h.name == name && h.count > 0) return Quantiles{h.p50, h.p95, h.p99};
  }
  return Quantiles{percentile(values, 50.0), percentile(values, 95.0),
                   percentile(values, 99.0)};
}

/// Run one pass: each client issues its assigned request indices in
/// order. `interval_ms` > 0 schedules sends on a fixed per-client period
/// (open loop); 0 is closed loop.
PassResult run_pass(const Workload& workload, std::size_t clients,
                    const std::vector<std::string>& payloads,
                    const std::vector<std::vector<std::size_t>>& assignments,
                    std::map<std::size_t, std::string>& reference_bodies,
                    double interval_ms) {
  PassResult pass;
  std::mutex mutex;
  std::vector<std::string> errors;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client = workload.connect();
        std::vector<double> local_latencies;
        std::size_t local_executed = 0;
        std::size_t local_cached = 0;
        bool local_consistent = true;
        std::vector<std::pair<std::size_t, std::string>> local_bodies;
        const auto pass_start = std::chrono::steady_clock::now();
        std::size_t sent = 0;
        for (const std::size_t k : assignments[c]) {
          auto reference = pass_start;
          if (interval_ms > 0.0) {
            // Open loop: latency is measured from the *scheduled* send
            // time, so falling behind the arrival schedule shows up as
            // queueing latency instead of silently stretching the run.
            reference =
                pass_start + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     interval_ms *
                                     static_cast<double>(sent)));
            std::this_thread::sleep_until(reference);
          } else {
            reference = std::chrono::steady_clock::now();
          }
          const Json response = client.round_trip(payloads[k]);
          const auto end = std::chrono::steady_clock::now();
          local_latencies.push_back(
              std::chrono::duration<double, std::milli>(end - reference)
                  .count());
          const Json* ok = response.find("ok");
          if (ok == nullptr || ok->kind != Json::Kind::kBool || !ok->boolean) {
            throw glva::Error("request " + std::to_string(k) +
                              " failed: " + response.dump());
          }
          const Json* cached = response.find("cached");
          if (cached != nullptr && cached->boolean) {
            ++local_cached;
          } else {
            ++local_executed;
          }
          const Json* body = response.find("body");
          if (body == nullptr || !body->is_string() || body->string.empty()) {
            local_consistent = false;
          } else {
            local_bodies.emplace_back(k, body->string);
          }
          ++sent;
        }
        std::lock_guard<std::mutex> lock(mutex);
        pass.requests += assignments[c].size();
        pass.executed += local_executed;
        pass.served_from_cache += local_cached;
        pass.latencies_ms.insert(pass.latencies_ms.end(),
                                 local_latencies.begin(),
                                 local_latencies.end());
        if (!local_consistent) pass.bodies_consistent = false;
        for (auto& [k, body] : local_bodies) {
          // Determinism check: every response for request k — across
          // clients, passes, cached or fresh — must be byte-identical.
          const auto it = reference_bodies.find(k);
          if (it == reference_bodies.end()) {
            reference_bodies.emplace(k, std::move(body));
          } else if (it->second != body) {
            pass.bodies_consistent = false;
          }
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mutex);
        errors.emplace_back(e.what());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (!errors.empty()) throw glva::Error("client error: " + errors.front());
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace glva;

  util::CliParser cli;
  cli.add_option("circuit", "0x0B", "catalog circuit for the verify workload");
  cli.add_option("clients", "4", "concurrent client connections");
  cli.add_option("distinct", "2",
                 "distinct requests (per-index seeds; the cold pass issues "
                 "each once)");
  cli.add_option("repeat", "3",
                 "warm-pass repeats: each client issues every distinct "
                 "request this many times");
  cli.add_option("total-time", "400", "sweep duration per request");
  cli.add_option("seed", "7", "base seed (request k uses seed+k)");
  cli.add_option("jobs", "2",
                 "in-process server pool threads (ignored with --unix / "
                 "--connect)");
  cli.add_option("mode", "closed", "warm-pass load model: closed | open");
  cli.add_option("rate", "50",
                 "open-loop arrival rate, requests/sec across all clients");
  cli.add_option("unix", "", "drive an external daemon on this unix socket");
  cli.add_option("connect", "",
                 "drive an external daemon at host:port (TCP)");
  cli.add_option("min-speedup", "0",
                 "fail unless cold p50 / warm p50 is at least this (0 = off)");
  cli.add_flag("no-timings",
               "suppress wall-clock dependent lines (byte-stable output)");
  cli.add_flag("require-cache-hits",
               "fail unless the server reports warm-cache hits > 0");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("bench_serve");
    return 0;
  }

  const auto clients = static_cast<std::size_t>(cli.get_int("clients"));
  const auto distinct = static_cast<std::size_t>(cli.get_int("distinct"));
  const auto repeat = static_cast<std::size_t>(cli.get_int("repeat"));
  const double total_time = cli.get_double("total-time");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bool no_timings = cli.get_flag("no-timings");
  const std::string mode = cli.get("mode");
  if (clients == 0 || distinct == 0 || repeat == 0) {
    std::cerr << "bench_serve: --clients, --distinct, --repeat must be >= 1\n";
    return 2;
  }
  if (mode != "closed" && mode != "open") {
    std::cerr << "bench_serve: --mode must be closed or open\n";
    return 2;
  }

  // Endpoint: external daemon, or an in-process server on a temp socket.
  Workload workload;
  std::unique_ptr<serve::Server> local_server;
  std::string endpoint_label;
  if (const std::string path = cli.get("unix"); !path.empty()) {
    workload.endpoint_kind = "unix";
    workload.unix_path = path;
    endpoint_label = path + " (external, unix)";
  } else if (const std::string addr = cli.get("connect"); !addr.empty()) {
    const auto colon = addr.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "bench_serve: --connect expects host:port\n";
      return 2;
    }
    workload.endpoint_kind = "tcp";
    workload.tcp_host = addr.substr(0, colon);
    workload.tcp_port = addr.substr(colon + 1);
    endpoint_label = addr + " (external, tcp)";
  } else {
    serve::ServerOptions options;
    options.unix_path =
        (std::filesystem::temp_directory_path() /
         ("glva-bench-serve-" + std::to_string(::getpid()) + ".sock"))
            .string();
    options.jobs = static_cast<std::size_t>(cli.get_int("jobs"));
    local_server = std::make_unique<serve::Server>(options);
    local_server->start();
    workload.endpoint_kind = "unix";
    workload.unix_path = options.unix_path;
    endpoint_label = "in-process server (unix socket)";
  }

  try {
    std::vector<std::string> payloads;
    payloads.reserve(distinct);
    for (std::size_t k = 0; k < distinct; ++k) {
      payloads.push_back(
          request_payload(cli.get("circuit"), total_time, seed, k));
    }

    // Cold pass: each distinct request exactly once, round-robin over
    // clients — every one is a cache miss and executes.
    std::vector<std::vector<std::size_t>> cold_assignments(clients);
    for (std::size_t k = 0; k < distinct; ++k) {
      cold_assignments[k % clients].push_back(k);
    }
    // Warm pass: every client issues every distinct request `repeat`
    // times — all should be served without execution.
    std::vector<std::vector<std::size_t>> warm_assignments(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t k = 0; k < distinct; ++k) {
          warm_assignments[c].push_back(k);
        }
      }
    }

    std::map<std::size_t, std::string> reference_bodies;
    const auto cold_start = std::chrono::steady_clock::now();
    const PassResult cold = run_pass(workload, clients, payloads,
                                     cold_assignments, reference_bodies, 0.0);
    const double cold_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cold_start)
            .count();
    obs::Histogram& cold_hist = obs::histogram("bench_serve.cold_ms");
    for (const double ms : cold.latencies_ms) cold_hist.observe(ms);

    const double rate = cli.get_double("rate");
    const double interval_ms =
        mode == "open" && rate > 0.0
            ? 1000.0 / rate * static_cast<double>(clients)
            : 0.0;
    const auto warm_start = std::chrono::steady_clock::now();
    const PassResult warm = run_pass(workload, clients, payloads,
                                     warm_assignments, reference_bodies,
                                     interval_ms);
    const double warm_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      warm_start)
            .count();
    obs::Histogram& warm_hist = obs::histogram("bench_serve.warm_ms");
    for (const double ms : warm.latencies_ms) warm_hist.observe(ms);

    // Server-side accounting over the same connection protocol.
    Client status_client = workload.connect();
    const Json status = status_client.round_trip(
        Json::object_of({{"op", Json::of("status")}}).dump());
    const Json* result = status.find("result");
    auto status_u64 = [&](const char* group, const char* field) -> std::uint64_t {
      if (result == nullptr) return 0;
      const Json* section = result->find(group);
      if (section == nullptr) return 0;
      const Json* value = section->find(field);
      if (value == nullptr) return 0;
      return std::strtoull(value->number.c_str(), nullptr, 10);
    };
    const std::uint64_t cache_hits = status_u64("cache", "hits");
    const std::uint64_t coalesced = status_u64("requests", "coalesced");
    const std::uint64_t rejected = status_u64("admission", "rejected");
    const std::uint64_t evictions = status_u64("cache", "evictions");

    // The daemon's metrics registry through the `stats` op: cache hit
    // rate and admission rejections as the counters record them.
    const Json stats = status_client.round_trip(
        Json::object_of({{"op", Json::of("stats")}}).dump());
    const Json* stats_result = stats.find("result");
    auto stats_counter = [&](const char* name) -> std::uint64_t {
      if (stats_result == nullptr) return 0;
      const Json* counters = stats_result->find("counters");
      if (counters == nullptr) return 0;
      const Json* value = counters->find(name);
      if (value == nullptr) return 0;
      return std::strtoull(value->number.c_str(), nullptr, 10);
    };
    const std::uint64_t stat_hits = stats_counter("serve.cache.hits");
    const std::uint64_t stat_misses = stats_counter("serve.cache.misses");
    const std::uint64_t stat_rejected =
        stats_counter("serve.admission.rejected");

    std::cout << "=== glva serve load bench ===\n"
              << "endpoint:    " << endpoint_label << "\n"
              << "workload:    verify " << cli.get("circuit") << ", "
              << clients << " client(s), " << distinct
              << " distinct request(s), " << repeat << " repeat(s), "
              << mode << " loop\n"
              << "cold pass:   " << cold.requests << " request(s), "
              << cold.executed << " executed, " << cold.served_from_cache
              << " served without execution\n"
              << "warm pass:   " << warm.requests << " request(s), "
              << warm.executed << " executed, " << warm.served_from_cache
              << " served without execution\n"
              << "server:      cache hits " << cache_hits << ", coalesced "
              << coalesced << ", rejected " << rejected << ", evictions "
              << evictions << "\n";
    if (stat_hits + stat_misses > 0) {
      char hit_rate[32];
      std::snprintf(hit_rate, sizeof(hit_rate), "%.1f",
                    100.0 * static_cast<double>(stat_hits) /
                        static_cast<double>(stat_hits + stat_misses));
      std::cout << "stats op:    cache hit rate " << hit_rate << "% ("
                << stat_hits << "/" << (stat_hits + stat_misses)
                << "), admission rejected " << stat_rejected << "\n";
    } else {
      std::cout << "stats op:    no cache counters (metrics disabled on "
                   "daemon)\n";
    }
    std::cout << "determinism: "
              << (cold.bodies_consistent && warm.bodies_consistent
                      ? "all responses byte-identical per request: ok"
                      : "MISMATCH: responses differ for the same request")
              << "\n";

    const obs::Snapshot snap = obs::snapshot();
    const Quantiles cold_q =
        pass_quantiles(snap, "bench_serve.cold_ms", cold.latencies_ms);
    const Quantiles warm_q =
        pass_quantiles(snap, "bench_serve.warm_ms", warm.latencies_ms);
    const double cold_p50 = cold_q.p50;
    const double warm_p50 = warm_q.p50;
    if (!no_timings) {
      std::cout << "cold:        p50 " << util::format_double(cold_q.p50, 3)
                << " ms, p95 " << util::format_double(cold_q.p95, 3)
                << " ms, p99 " << util::format_double(cold_q.p99, 3)
                << " ms, "
                << util::format_double(
                       static_cast<double>(cold.requests) / cold_seconds, 1)
                << " req/s\n"
                << "warm:        p50 " << util::format_double(warm_q.p50, 3)
                << " ms, p95 " << util::format_double(warm_q.p95, 3)
                << " ms, p99 " << util::format_double(warm_q.p99, 3)
                << " ms, "
                << util::format_double(
                       static_cast<double>(warm.requests) / warm_seconds, 1)
                << " req/s\n"
                << "speedup:     warm-cache p50 is "
                << util::format_double(
                       warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0, 1)
                << "x below cold-cache p50\n";
    }

    int rc = 0;
    if (!cold.bodies_consistent || !warm.bodies_consistent) rc = 1;
    if (cli.get_flag("require-cache-hits") && cache_hits + coalesced == 0) {
      std::cout << "FAIL: no warm-cache hits\n";
      rc = 1;
    }
    if (const double min_speedup = cli.get_double("min-speedup");
        min_speedup > 0.0 &&
        (warm_p50 <= 0.0 || cold_p50 / warm_p50 < min_speedup)) {
      std::cout << "FAIL: warm-cache speedup "
                << util::format_double(
                       warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0, 1)
                << "x below required "
                << util::format_double(min_speedup, 1) << "x\n";
      rc = 1;
    }
    if (local_server != nullptr) local_server->stop();
    return rc;
  } catch (const std::exception& e) {
    if (local_server != nullptr) local_server->stop();
    std::cerr << "bench_serve: " << e.what() << "\n";
    return 2;
  }
}
