// Figure 4 reproduction: "Analytical simulation data, Boolean expression
// and percentage fitness of three circuits (0x0B, 0x04 and 0x1C)".
//
// For each of the three circuits this harness runs the paper's experiment
// (10,000 time units, ThVAL = 15, inputs at the threshold, FOV_UD = 0.25)
// and prints the per-combination Case_I / High_O / Var_O analytics as bar
// charts and tables, the extracted Boolean expression, and PFoBE.
//
// Shape targets: every circuit recovers its intended function; circuit
// 0x0B's combination 100 shows a large High_O (the decay tail of the high
// state at 011) that equation (2) rejects (High_O < Case_I / 2); output
// variation stays low for all accepted states.

#include <iostream>

#include "circuits/circuit_repository.h"
#include "core/experiment.h"
#include "core/report.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace glva;

  util::CliParser cli;
  cli.add_option("total-time", "10000", "sweep duration (time units)");
  cli.add_option("threshold", "15", "ThVAL (molecules)");
  cli.add_option("fov-ud", "0.25", "FOV_UD");
  // Seed 2 is the canonical figure seed: the 011->100 decay tail of circuit
  // 0x0B (the transition the paper narrates) is clearly visible.
  cli.add_option("seed", "2", "simulation seed");
  cli.add_option("circuits", "0x0B,0x04,0x1C", "comma-separated catalog names");
  cli.add_option("csv", "", "optional path for CSV output");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("fig4_circuits");
    return 0;
  }

  core::ExperimentConfig config;
  config.total_time = cli.get_double("total-time");
  config.threshold = cli.get_double("threshold");
  config.fov_ud = cli.get_double("fov-ud");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  util::CsvWriter csv;
  csv.row("circuit", "case", "case_count", "high_count", "variation_count",
          "fov_est", "verdict_high");

  bool all_match = true;
  for (const auto& name : util::split(cli.get("circuits"), ',')) {
    const auto spec = circuits::CircuitRepository::build(name);
    const core::ExperimentResult result = core::run_experiment(spec, config);
    all_match = all_match && result.verification.matches;

    std::cout << "=== Figure 4: circuit " << spec.name << " ("
              << spec.description << ") ===\n\n";
    std::cout << core::render_analytics_bars(result.extraction) << "\n";
    std::cout << core::render_analytics_table(result.extraction) << "\n";
    std::cout << core::render_experiment_summary(result, spec.expected)
              << "\n";

    for (std::size_t c = 0; c < result.extraction.variation.records.size();
         ++c) {
      const auto& record = result.extraction.variation.records[c];
      csv.row(spec.name, result.extraction.extracted().combination_label(c),
              static_cast<unsigned long long>(record.case_count),
              static_cast<unsigned long long>(record.high_count),
              static_cast<unsigned long long>(record.variation_count),
              record.fov_est,
              result.extraction.construction.outcomes[c].verdict ==
                      core::CaseVerdict::kHigh
                  ? "1"
                  : "0");
    }
  }

  if (const std::string path = cli.get("csv"); !path.empty()) {
    csv.save(path);
    std::cout << "CSV written to " << path << "\n";
  }
  return all_match ? 0 : 1;
}
