// Trace-I/O bench: the bounded-memory contract of the store/ subsystem on
// a deep single-combination run. One input combination (all inputs high at
// ThVAL) is held for the whole run while the sampler streams 10^7+ grid
// samples into the selected sink:
//
//   mem       materialize the sim::Trace, digitize afterwards (reference;
//             resident memory grows as samples · 8 bytes · model species)
//   spill     stream to a chunked .glvt file, then replay the chunks into
//             the digitizer — resident memory is one chunk + the planes
//   digitize  fuse the ADC into the sampler — resident memory is
//             samples / 8 bytes per tracked species, nothing else
//   all       run all three and check their analyses agree bit for bit
//
// Shape target: at --samples 10000000 the digitize and spill paths hold
// peak RSS under --rss-budget-mb (exit 1 otherwise) while producing the
// same extraction the memory path does. With --no-timings the output is
// byte-stable for a fixed seed (the golden regression pins `--sink all`).
//
// Two follow-on sections ride on the same run:
//   - whenever a spill file was written, the .glvt is replayed into the
//     digitizer twice — row-at-a-time (SpillReader::replay_rows, the
//     reference) and chunk-at-a-time blocks (SpillReader::replay) — the
//     planes are compared bit for bit and, with timings on, the block
//     path's replay speedup is reported (target: >= 3x);
//   - --ensemble-replicates N runs an N-replicate digitize-sink ensemble
//     through the streaming reduction (core::run_ensemble) and reports the
//     majority logic plus, with timings on, the process peak RSS — the
//     O(1)-per-replicate memory bound made visible.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <chrono>
#include <filesystem>

#include "circuits/circuit_repository.h"
#include "core/adc.h"
#include "core/ensemble.h"
#include "core/experiment.h"
#include "core/logic_analyzer.h"
#include "core/report.h"
#include "sim/virtual_lab.h"
#include "store/digitizing_sink.h"
#include "store/spill_reader.h"
#include "store/spill_sink.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace glva;

/// Peak resident set of this process in MiB, or a negative value when the
/// platform offers no getrusage.
double peak_rss_mb() {
#if defined(__APPLE__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#elif defined(__unix__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#else
  return -1.0;
#endif
}

using util::seconds_since;

struct SinkRun {
  core::ExtractionResult extraction;
  std::size_t samples = 0;
  double simulate_seconds = 0.0;
  double analyze_seconds = 0.0;
};

std::string spill_path_for(const circuits::CircuitSpec& spec,
                           const std::string& spill_dir, std::uint64_t seed) {
  return (std::filesystem::path(spill_dir) /
          (spec.name + "-bench-s" + std::to_string(seed) + ".glvt"))
      .string();
}

SinkRun run_with_sink(const circuits::CircuitSpec& spec,
                      const std::string& sink_name, double total_time,
                      double sampling_period, double threshold, double fov_ud,
                      std::uint64_t seed, const std::string& spill_dir) {
  sim::LabOptions options;
  options.sampling_period = sampling_period;
  options.seed = seed;
  sim::VirtualLab lab(spec.model, options);
  lab.declare_inputs(spec.input_ids);

  // The single combination: every input clamped high (at ThVAL, the
  // paper's drive level) for the whole run.
  const sim::InputSchedule schedule = sim::InputSchedule::constant(
      spec.input_ids,
      std::vector<double>(spec.input_ids.size(), threshold));

  std::vector<std::string> tracked = spec.input_ids;
  tracked.push_back(spec.output_id);

  SinkRun run;
  core::PackedDigitalData data;
  const auto sim_start = std::chrono::steady_clock::now();
  if (sink_name == "mem") {
    const sim::Trace trace = lab.run(schedule, total_time);
    run.simulate_seconds = seconds_since(sim_start);
    const auto analyze_start = std::chrono::steady_clock::now();
    data = core::digitize_packed(trace, spec.input_ids, spec.output_id,
                                 threshold);
    run.analyze_seconds = seconds_since(analyze_start);
  } else if (sink_name == "digitize") {
    store::DigitizingSink sink(tracked, threshold);
    lab.run_into(schedule, total_time, sink);
    run.simulate_seconds = seconds_since(sim_start);
    data = core::take_digitized(sink, spec.input_ids.size());
  } else {  // spill
    std::filesystem::create_directories(spill_dir);
    const std::string path = spill_path_for(spec, spill_dir, seed);
    store::SpillSink::Options spill_options;
    spill_options.seed = seed;
    spill_options.sampling_period = sampling_period;
    store::SpillSink sink(path, spill_options);
    lab.run_into(schedule, total_time, sink);
    run.simulate_seconds = seconds_since(sim_start);

    const auto analyze_start = std::chrono::steady_clock::now();
    store::SpillReader reader(path);
    store::DigitizingSink digitizer(tracked, threshold);
    reader.replay(digitizer);
    data = core::take_digitized(digitizer, spec.input_ids.size());
    run.analyze_seconds = seconds_since(analyze_start);
  }

  run.samples = data.sample_count();
  const auto analyze_start = std::chrono::steady_clock::now();
  const core::LogicAnalyzer analyzer(core::AnalyzerConfig{
      threshold, fov_ud, core::AnalysisBackend::kPacked});
  run.extraction =
      analyzer.analyze_packed(data, spec.input_ids, spec.output_id);
  run.analyze_seconds += seconds_since(analyze_start);
  return run;
}

bool extractions_agree(const core::ExtractionResult& a,
                       const core::ExtractionResult& b) {
  if (a.expression() != b.expression() || a.fitness() != b.fitness()) {
    return false;
  }
  if (a.variation.records.size() != b.variation.records.size()) return false;
  for (std::size_t c = 0; c < a.variation.records.size(); ++c) {
    const auto& ra = a.variation.records[c];
    const auto& rb = b.variation.records[c];
    if (ra.case_count != rb.case_count || ra.high_count != rb.high_count ||
        ra.variation_count != rb.variation_count) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("circuit", "myers_and", "catalog circuit to run");
  cli.add_option("total-time", "10000", "run duration (time units)");
  cli.add_option("samples", "10000000",
                 "target grid samples (sampling period = total-time / "
                 "samples)");
  cli.add_option("threshold", "15", "ThVAL (molecules); inputs held at it");
  cli.add_option("fov-ud", "0.25", "FOV_UD");
  cli.add_option("seed", "1", "simulation seed");
  cli.add_option("sink", "digitize", "mem | spill | digitize | all");
  cli.add_option("spill-dir", "",
                 "directory for .glvt files (default: <tmp>/glva-trace-io)");
  cli.add_option("min-size-ratio", "0",
                 "fail (exit 1) when the v1/v2 spill size ratio falls below "
                 "this (0 = report only; the format section runs whenever "
                 "the spill sink does)");
  cli.add_option("rss-budget-mb", "512",
                 "fail (exit 1) when peak RSS exceeds this many MiB "
                 "(checked only when timings are on)");
  cli.add_option("ensemble-replicates", "0",
                 "also run an N-replicate digitize-sink ensemble through "
                 "the streaming reduction and report its peak RSS (0 = "
                 "skip; uses --total-time/--samples per replicate)");
  cli.add_option("ensemble-jobs", "2",
                 "worker threads for the ensemble section (0 = one per "
                 "hardware thread)");
  cli.add_flag("no-timings",
               "omit wall-clock and RSS lines (deterministic output for the "
               "golden regression)");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("bench_trace_io");
    return 0;
  }
  const bool timings = !cli.get_flag("no-timings");

  const auto spec = circuits::CircuitRepository::build(cli.get("circuit"));
  const double total_time = cli.get_double("total-time");
  const double samples = cli.get_double("samples");
  if (total_time <= 0.0 || samples < 1.0) {
    std::cerr << "bench_trace_io: --total-time and --samples must be "
                 "positive\n";
    return 2;
  }
  const double sampling_period = total_time / samples;
  const double threshold = cli.get_double("threshold");
  const double fov_ud = cli.get_double("fov-ud");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  std::string spill_dir = cli.get("spill-dir");
  if (spill_dir.empty()) {
    spill_dir = (std::filesystem::temp_directory_path() / "glva-trace-io")
                    .string();
  }

  const std::string sink_arg = cli.get("sink");
  std::vector<std::string> sinks;
  if (sink_arg == "all") {
    sinks = {"mem", "spill", "digitize"};
  } else if (sink_arg == "mem" || sink_arg == "spill" ||
             sink_arg == "digitize") {
    sinks = {sink_arg};
  } else {
    std::cerr << "bench_trace_io: unknown --sink '" << sink_arg
              << "' (expected mem | spill | digitize | all)\n";
    return 2;
  }

  std::cout << "=== trace I/O: single-combination deep run ===\n"
            << "circuit " << spec.name << ", inputs "
            << util::join(spec.input_ids, ",") << " held high at ThVAL "
            << util::format_double(threshold, 4) << ", total_time "
            << util::format_double(total_time, 6) << ", target samples "
            << util::format_double(samples, 0) << "\n\n";

  std::vector<SinkRun> runs;
  for (const auto& sink : sinks) {
    SinkRun run = run_with_sink(spec, sink, total_time, sampling_period,
                                threshold, fov_ud, seed, spill_dir);
    std::cout << "--- sink: " << sink << " ---\n"
              << "samples:    " << run.samples << "\n"
              << "expression: " << spec.output_id << " = "
              << run.extraction.expression() << "\n"
              << "fitness:    "
              << util::format_double(run.extraction.fitness(), 5) << " %\n"
              << core::render_analytics_table(run.extraction);
    if (timings) {
      std::cout << "timing:     simulate "
                << util::format_double(run.simulate_seconds, 3)
                << " s, digitize+analyze "
                << util::format_double(run.analyze_seconds, 3) << " s\n";
    }
    std::cout << "\n";
    runs.push_back(std::move(run));
  }

  bool agree = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    agree = agree && extractions_agree(runs[0].extraction,
                                       runs[i].extraction) &&
            runs[0].samples == runs[i].samples;
  }
  if (runs.size() > 1) {
    std::cout << "sinks agree: " << (agree ? "yes" : "NO") << "\n";
  }

  int rc = agree ? 0 : 1;

  // Replay comparison: the .glvt written above replayed into the digitizer
  // row-at-a-time vs chunk-at-a-time. The planes must agree bit for bit
  // (checked always); the speedup is the block data path's headline win.
  if (std::find(sinks.begin(), sinks.end(), "spill") != sinks.end()) {
    std::vector<std::string> tracked = spec.input_ids;
    tracked.push_back(spec.output_id);
    store::SpillReader reader(spill_path_for(spec, spill_dir, seed));

    store::DigitizingSink by_rows(tracked, threshold);
    const auto rows_start = std::chrono::steady_clock::now();
    reader.replay_rows(by_rows);
    const double rows_seconds = seconds_since(rows_start);

    store::DigitizingSink by_blocks(tracked, threshold);
    const auto blocks_start = std::chrono::steady_clock::now();
    reader.replay(by_blocks);
    const double blocks_seconds = seconds_since(blocks_start);

    const bool replay_identical = by_rows.planes() == by_blocks.planes() &&
                                  by_rows.sample_count() ==
                                      by_blocks.sample_count();
    std::cout << "\n--- replay: .glvt -> digitize, row vs block ---\n"
              << "samples:    " << by_blocks.sample_count() << "\n"
              << "block path bit-identical to row path: "
              << (replay_identical ? "yes" : "NO") << "\n";
    if (timings) {
      const auto rate = [](std::size_t samples, double seconds) {
        return seconds > 0.0
                   ? static_cast<double>(samples) / seconds / 1e6
                   : 0.0;
      };
      std::cout << "rows:       "
                << util::format_double(rows_seconds, 3) << " s ("
                << util::format_double(rate(by_rows.sample_count(),
                                            rows_seconds), 1)
                << " Msamples/s)\n"
                << "blocks:     "
                << util::format_double(blocks_seconds, 3) << " s ("
                << util::format_double(rate(by_blocks.sample_count(),
                                            blocks_seconds), 1)
                << " Msamples/s)\n"
                << "speedup:    "
                << util::format_double(
                       blocks_seconds > 0.0 ? rows_seconds / blocks_seconds
                                            : 0.0, 2)
                << "x (block over row)\n";
    }
    if (!replay_identical) rc = 1;

    // Format comparison: the same samples re-spilled as .glvt v1 (raw time
    // column) and v2 (implicit-grid kGrid sections). Sizes and the ratio
    // are deterministic for a fixed seed, so the golden pins them; the
    // write/replay timings show the v2 fast path (no time decode at all).
    const auto respill = [&](std::uint32_t version, const std::string& name,
                             double& write_seconds) {
      const std::string path =
          (std::filesystem::path(spill_dir) / name).string();
      store::SpillSink::Options spill_options;
      spill_options.seed = seed;
      spill_options.sampling_period = sampling_period;
      spill_options.format_version = version;
      store::SpillSink sink(path, spill_options);
      const auto start = std::chrono::steady_clock::now();
      reader.replay(sink);
      write_seconds = seconds_since(start);
      return path;
    };
    double v1_write = 0.0;
    double v2_write = 0.0;
    const std::string v1_path = respill(1, "format_v1.glvt", v1_write);
    const std::string v2_path =
        respill(store::glvt::kVersion, "format_v2.glvt", v2_write);
    const auto v1_size = std::filesystem::file_size(v1_path);
    const auto v2_size = std::filesystem::file_size(v2_path);
    const double ratio = v2_size > 0 ? static_cast<double>(v1_size) /
                                           static_cast<double>(v2_size)
                                     : 0.0;

    const auto replay_planes = [&](const std::string& path,
                                   double& replay_seconds) {
      store::SpillReader format_reader(path);
      store::DigitizingSink digitizer(tracked, threshold);
      const auto start = std::chrono::steady_clock::now();
      format_reader.replay(digitizer);
      replay_seconds = seconds_since(start);
      return digitizer.planes();
    };
    double v1_replay = 0.0;
    double v2_replay = 0.0;
    const bool formats_identical =
        replay_planes(v1_path, v1_replay) == replay_planes(v2_path, v2_replay);

    std::cout << "\n--- format: .glvt v1 vs v2 ---\n"
              << "v1 size:    " << v1_size << " bytes (raw time column)\n"
              << "v2 size:    " << v2_size << " bytes (implicit-grid times)\n"
              << "ratio:      " << util::format_double(ratio, 2)
              << "x smaller\n"
              << "v1 and v2 replays digitize bit-identically: "
              << (formats_identical ? "yes" : "NO") << "\n";
    if (timings) {
      std::cout << "write:      v1 " << util::format_double(v1_write, 3)
                << " s, v2 " << util::format_double(v2_write, 3) << " s\n"
                << "replay:     v1 " << util::format_double(v1_replay, 3)
                << " s, v2 " << util::format_double(v2_replay, 3) << " s\n";
    }
    if (!formats_identical) rc = 1;
    const double min_ratio = cli.get_double("min-size-ratio");
    if (min_ratio > 0.0 && ratio < min_ratio) {
      std::cout << "size ratio below --min-size-ratio "
                << util::format_double(min_ratio, 2) << " -> FAIL\n";
      rc = 1;
    }
  }

  // Streaming-reduction ensemble: N digitize-sink replicates of the full
  // combination-sweep experiment, folded replicate by replicate — the
  // fleet never materializes, so peak RSS stays at the in-flight window.
  const long long ensemble_replicates = cli.get_int("ensemble-replicates");
  if (ensemble_replicates > 0) {
    core::ExperimentConfig config;
    config.total_time = total_time;
    config.sampling_period = sampling_period;
    config.threshold = threshold;
    config.fov_ud = fov_ud;
    config.seed = seed;
    config.sink = store::SinkKind::kDigitize;
    const auto ensemble_jobs =
        static_cast<std::size_t>(cli.get_int("ensemble-jobs"));
    const auto ensemble_start = std::chrono::steady_clock::now();
    const auto ensemble = core::run_ensemble(
        spec, config, static_cast<std::size_t>(ensemble_replicates),
        ensemble_jobs);
    const double ensemble_seconds = seconds_since(ensemble_start);
    std::cout << "\n--- ensemble: streaming reduction, digitize sink ---\n"
              << "replicates: " << ensemble.replicate_count << " x "
              << util::format_double(samples, 0) << " samples (jobs "
              << ensemble_jobs << ")\n"
              << "majority:   " << ensemble.output_name << " bits 0x"
              << std::hex << ensemble.majority_logic.to_bits() << std::dec
              << ", " << ensemble.match_count << "/"
              << ensemble.replicate_count << " replicates match\n";
    if (timings) {
      std::cout << "timing:     " << util::format_double(ensemble_seconds, 3)
                << " s; peak RSS after ensemble "
                << util::format_double(peak_rss_mb(), 1) << " MiB\n";
    }
  }
  if (timings) {
    const double rss = peak_rss_mb();
    const double budget = cli.get_double("rss-budget-mb");
    if (rss >= 0.0) {
      const bool within = rss <= budget;
      std::cout << "peak RSS:    " << util::format_double(rss, 5)
                << " MiB (budget " << util::format_double(budget, 5)
                << " MiB) -> " << (within ? "within budget" : "EXCEEDED")
                << "\n";
      if (!within) rc = 1;
    } else {
      std::cout << "peak RSS:    unavailable on this platform\n";
    }
  }
  return rc;
}
