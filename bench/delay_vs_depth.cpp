// Propagation delay vs. circuit depth — quantifying the paper's Section II
// requirement ("each input combination must be applied for enough time to
// observe its correct response on the output species") as a function of
// gate depth.
//
// Builds inverter chains of depth 1..7 from the gate library, measures
// rise/fall propagation delays with the timing estimator, and reports the
// minimum hold time at which the logic analyzer still extracts the correct
// function. Shape target: delay grows roughly linearly with depth (each
// stage adds a fall time of ~ln(plateau/K)/delta), and the required hold
// tracks it — which is why the paper holds every combination for 1000
// time units on 1-7 gate circuits.

#include <iostream>

#include "core/experiment.h"
#include "gates/gate_library.h"
#include "gates/netlist_to_sbml.h"
#include "logic/quine_mccluskey.h"
#include "logic/truth_table.h"
#include "timing/delay_estimator.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/text_table.h"

namespace {

using namespace glva;

/// An inverter chain of the given depth over one input.
gates::Netlist chain(std::size_t depth) {
  gates::Netlist netlist({"A"});
  const auto& library = gates::GateLibrary::standard();
  gates::Net net = gates::Net::input(0);
  for (std::size_t level = 0; level < depth; ++level) {
    net = netlist.add_not(library.gates()[level].name, net);
  }
  netlist.set_output(net);
  return netlist;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("max-depth", "7", "deepest inverter chain to test");
  cli.add_option("threshold", "15", "ThVAL (molecules)");
  cli.add_option("seed", "1", "simulation seed");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("delay_vs_depth");
    return 0;
  }
  const auto max_depth = static_cast<std::size_t>(cli.get_int("max-depth"));
  const double threshold = cli.get_double("threshold");

  std::cout << "=== propagation delay and required hold time vs gate depth "
               "===\n\n";
  util::TextTable table({"depth", "function", "rise delay", "fall delay",
                         "recommended hold", "min correct hold"});
  for (std::size_t c = 0; c < 6; ++c) {
    table.set_align(c, util::TextTable::Align::kRight);
  }

  for (std::size_t depth = 1; depth <= max_depth; ++depth) {
    const auto netlist = chain(depth);
    gates::ModelOptions options;
    options.model_id = "chain" + std::to_string(depth);
    circuits::CircuitSpec spec;
    spec.name = options.model_id;
    spec.input_ids = {"A"};
    spec.output_id = "GFP";
    spec.expected = netlist.ideal_truth_table();
    spec.model =
        gates::netlist_to_model(netlist, gates::GateLibrary::standard(), options);

    // Measure delays on a generously long sweep.
    core::ExperimentConfig config;
    config.threshold = threshold;
    config.total_time = 12000.0;
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto reference = core::run_experiment(spec, config);
    const auto delays =
        timing::estimate_delays(reference.sweep.trace, reference.sweep.schedule,
                                spec.output_id, threshold);

    // Find the smallest per-combination hold from which extraction stays
    // correct for every longer hold too (a single short-hold pass can be a
    // start-up-transient fluke; requiring monotone success filters those).
    const std::vector<double> holds{25.0,  50.0,   100.0,  200.0,
                                    400.0, 800.0,  1600.0, 3200.0};
    std::vector<bool> passes;
    for (const double hold : holds) {
      core::ExperimentConfig probe = config;
      probe.total_time = hold * 2.0;  // one inverter input: 2 combinations
      passes.push_back(core::run_experiment(spec, probe).verification.matches);
    }
    double min_hold = -1.0;
    for (std::size_t k = holds.size(); k-- > 0;) {
      if (!passes[k]) break;
      min_hold = holds[k];
    }

    table.add_row(
        {std::to_string(depth),
         logic::minimize(spec.expected, spec.input_ids).to_string(),
         util::format_double(delays.mean_rise_delay, 4),
         util::format_double(delays.mean_fall_delay, 4),
         util::format_double(delays.recommended_hold_time, 4),
         min_hold > 0 ? util::format_double(min_hold, 5) : ">3200"});
  }
  std::cout << table.str()
            << "\n(delay grows ~linearly with depth; the paper's 1000-tu "
               "hold covers circuits up to ~5 logic levels — the deepest "
               "level count in its 1-7 gate benchmark set)\n";
  return 0;
}
