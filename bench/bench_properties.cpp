// Property-monitor bench: the packed word-parallel monitor (props/monitor)
// against the naive per-sample reference evaluator (props/reference) over
// synthetic plateau planes.
//
// Four planes (A, B, C, GFP) are generated as random-length constant runs
// (1..96 samples, alternating value) from a seeded sim::Rng — long enough
// plateaus for settle/noglitch to bite, short enough runs that bounded
// windows straddle word boundaries constantly. A fixed suite of properties
// exercising every operator is evaluated by both backends; the verdict
// streams are compared bit for bit.
//
// Shape target: at --samples 1000000 the packed monitor clears
// --min-speedup (default 5x, timings mode only; exit 1 otherwise) on every
// property. With --no-timings the output is byte-stable for a fixed seed —
// the golden regression pins the verdict popcounts and the
// "packed == reference" agreement lines.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "logic/bit_stream.h"
#include "props/monitor.h"
#include "props/parser.h"
#include "props/property.h"
#include "props/reference.h"
#include "sim/rng.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace glva;
using util::seconds_since;

/// A random-length-run plateau signal: constant stretches of 1..max_run
/// samples, value alternating run to run.
std::vector<bool> plateau_plane(std::size_t samples, std::size_t max_run,
                                sim::Rng& rng) {
  std::vector<bool> plane(samples);
  bool value = (rng.next_u64() & 1) != 0;
  std::size_t i = 0;
  while (i < samples) {
    std::size_t run = 1 + static_cast<std::size_t>(rng.next_u64() %
                                                   static_cast<std::uint64_t>(
                                                       max_run));
    for (std::size_t j = 0; j < run && i < samples; ++j) plane[i++] = value;
    value = !value;
  }
  return plane;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("samples", "1000000", "samples per plane");
  cli.add_option("seed", "7", "plane-generation seed");
  cli.add_option("max-run", "96", "maximum plateau run length (samples)");
  cli.add_option("repeat", "5",
                 "packed-monitor timing repetitions (best of N)");
  cli.add_option("min-speedup", "5",
                 "fail (exit 1) when any property's packed-vs-reference "
                 "speedup is below this (checked only when timings are on; "
                 "0 disables)");
  cli.add_flag("no-timings",
               "omit wall-clock lines (deterministic output for the golden "
               "regression)");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("bench_properties");
    return 0;
  }
  const bool timings = !cli.get_flag("no-timings");
  const auto samples = static_cast<std::size_t>(cli.get_int("samples"));
  const auto max_run = static_cast<std::size_t>(cli.get_int("max-run"));
  const auto repeat = static_cast<std::size_t>(cli.get_int("repeat"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double min_speedup = cli.get_double("min-speedup");
  if (samples == 0 || max_run == 0 || repeat == 0) {
    std::cerr << "bench_properties: --samples, --max-run and --repeat must "
                 "be positive\n";
    return 2;
  }

  // The operator-coverage suite: every AST kind appears at least once.
  const std::vector<std::string> texts = {
      "G(A->F[0,64]GFP)",
      "(A&!B)U[0,128]GFP",
      "G[0,32](A|C)",
      "F(A&B&C)",
      "settle[256]GFP",
      "noglitch[8]GFP",
  };

  sim::Rng rng(seed);
  props::NamedPlanes reference_planes;
  reference_planes.names = {"A", "B", "C", "GFP"};
  for (std::size_t p = 0; p < reference_planes.names.size(); ++p) {
    reference_planes.planes.push_back(plateau_plane(samples, max_run, rng));
  }
  std::vector<logic::BitStream> packed;
  packed.reserve(reference_planes.planes.size());
  for (const auto& plane : reference_planes.planes) {
    packed.push_back(logic::BitStream::pack(plane));
  }
  props::PackedNamedPlanes packed_planes;
  packed_planes.names = reference_planes.names;
  for (const auto& stream : packed) packed_planes.planes.push_back(&stream);

  std::cout << "=== property monitors: packed vs reference ===\n"
            << "samples:    " << samples << ", planes "
            << util::join(reference_planes.names, ",")
            << " (plateau runs 1.." << max_run << ", seed " << seed
            << ")\n\n";

  int rc = 0;
  bool all_agree = true;
  double worst_speedup = -1.0;
  for (const auto& text : texts) {
    const props::PropertyPtr property = props::parse_property(text);

    double packed_seconds = -1.0;
    logic::BitStream verdict;
    for (std::size_t r = 0; r < repeat; ++r) {
      const auto start = std::chrono::steady_clock::now();
      verdict = props::evaluate_packed(*property, packed_planes);
      const double elapsed = seconds_since(start);
      if (packed_seconds < 0.0 || elapsed < packed_seconds) {
        packed_seconds = elapsed;
      }
    }

    const auto reference_start = std::chrono::steady_clock::now();
    const std::vector<bool> expected =
        props::evaluate_reference(*property, reference_planes);
    const double reference_seconds = seconds_since(reference_start);

    const bool agree = verdict.unpack() == expected;
    all_agree = all_agree && agree;

    std::cout << "--- property: " << props::to_string(*property) << " ---\n"
              << "verdicts:   " << verdict.popcount() << " / "
              << verdict.size() << " satisfied\n"
              << "packed == reference: " << (agree ? "yes" : "NO") << "\n";
    if (timings) {
      const double speedup = packed_seconds > 0.0
                                 ? reference_seconds / packed_seconds
                                 : 0.0;
      if (worst_speedup < 0.0 || speedup < worst_speedup) {
        worst_speedup = speedup;
      }
      std::cout << "timing:     packed "
                << util::format_double(packed_seconds * 1e3, 3)
                << " ms (best of " << repeat << "), reference "
                << util::format_double(reference_seconds * 1e3, 3)
                << " ms, speedup " << util::format_double(speedup, 1)
                << "x\n";
    }
    std::cout << "\n";
  }

  std::cout << "all properties: packed == reference: "
            << (all_agree ? "yes" : "NO") << "\n";
  if (!all_agree) rc = 1;
  if (timings && min_speedup > 0.0) {
    const bool fast_enough = worst_speedup >= min_speedup;
    std::cout << "worst speedup: " << util::format_double(worst_speedup, 1)
              << "x (target " << util::format_double(min_speedup, 1)
              << "x) -> " << (fast_enough ? "met" : "MISSED") << "\n";
    if (!fast_enough) rc = 1;
  }
  return rc;
}
