// Figure 3 reproduction: "An example showing how both filters are useful,
// when applied together, in obtaining the correct Boolean expression."
//
// The paper constructs two output binary data streams with the *same*
// number of 1s for two input cases (00 and 11), where one stream is stable
// (a solid run of 1s) and the other oscillates rapidly. Equation (2) alone
// cannot tell them apart; equation (1) rejects the oscillatory one
// (here FOV_UD <= 0.5 discards it, exactly as the paper notes).
//
// This harness builds those streams, runs the analyzer's digital path on
// them, and prints the filter decisions for every rule combination.

#include <iostream>
#include <vector>

#include "core/adc.h"
#include "core/baseline.h"
#include "core/logic_analyzer.h"
#include "core/report.h"
#include "logic/quine_mccluskey.h"
#include "util/ascii_chart.h"
#include "util/cli.h"

namespace {

/// Interleave per-case digital streams into a single two-input recording:
/// case 00 for the first half, case 11 for the second half.
glva::core::DigitalData make_figure3_data(const std::vector<bool>& stream_00,
                                          const std::vector<bool>& stream_11) {
  glva::core::DigitalData data;
  const std::size_t half0 = stream_00.size();
  const std::size_t half1 = stream_11.size();
  data.inputs.assign(2, {});
  for (std::size_t k = 0; k < half0; ++k) {
    data.inputs[0].push_back(false);
    data.inputs[1].push_back(false);
    data.output.push_back(stream_00[k]);
  }
  for (std::size_t k = 0; k < half1; ++k) {
    data.inputs[0].push_back(true);
    data.inputs[1].push_back(true);
    data.output.push_back(stream_11[k]);
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace glva;

  util::CliParser cli;
  cli.add_option("length", "1000", "samples per input case");
  cli.add_option("ones", "600", "number of logic-1 samples in each stream");
  cli.add_option("fov-ud", "0.5", "FOV_UD (paper: discards if FOV_UD <= 0.5)");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("fig3_filters");
    return 0;
  }
  const auto length = static_cast<std::size_t>(cli.get_int("length"));
  const auto ones = static_cast<std::size_t>(cli.get_int("ones"));
  const double fov_ud = cli.get_double("fov-ud");
  if (ones > length) {
    std::cerr << "--ones must not exceed --length\n";
    return 2;
  }

  // Case 00: the same number of 1s, in one solid stable run.
  std::vector<bool> stable(length, false);
  for (std::size_t k = 0; k < ones; ++k) stable[length - ones + k] = true;
  // Case 11: alternate as long as possible, then finish with a solid run so
  // the stream carries exactly `ones` 1s — maximally oscillatory at equal
  // HIGH_O.
  std::vector<bool> oscillatory(length, false);
  std::size_t ones_left = ones;
  for (std::size_t k = 0; k < length; ++k) {
    const std::size_t remaining = length - k;
    if (ones_left == remaining || (k % 2 == 0 && ones_left > 0)) {
      oscillatory[k] = true;
      --ones_left;
    }
  }

  const core::DigitalData data = make_figure3_data(stable, oscillatory);
  // The reference backend materializes the per-case output streams this
  // figure renders run-length encoded; the packed backend would not.
  const core::LogicAnalyzer analyzer(core::AnalyzerConfig{
      15.0, fov_ud, core::AnalysisBackend::kReference});
  const core::ExtractionResult result =
      analyzer.analyze_digital(data, {"A", "B"}, "OUT");

  std::cout << "=== Figure 3: equal HIGH_O counts, different stability ===\n\n";
  std::cout << "case 00 stream: "
            << util::render_run_length(result.cases.cases[0].output_stream)
            << "\ncase 11 stream: "
            << util::render_run_length(result.cases.cases[3].output_stream)
            << "\n\n";
  std::cout << core::render_analytics_table(result) << "\n";

  const auto names = std::vector<std::string>{"A", "B"};
  for (const auto rule :
       {core::BaselineRule::kMajorityOnly, core::BaselineRule::kStabilityOnly,
        core::BaselineRule::kBothFilters}) {
    const logic::TruthTable table =
        core::extract_with_rule(result.variation, rule, fov_ud);
    std::cout << core::baseline_rule_name(rule)
              << ": OUT = " << logic::minimize(table, names).to_string()
              << "\n";
  }

  // Shape check: the oscillatory case must be rejected, the stable one
  // kept (it is majority-high at exactly 50%+... only when ones > length/2;
  // with ones == length/2 both fail eq(2) — the paper's point is about
  // eq(1), so report the verdicts either way).
  const auto& outcome_00 = result.construction.outcomes[0];
  const auto& outcome_11 = result.construction.outcomes[3];
  std::cout << "\ncase 00: eq(1) " << (outcome_00.filter1_pass ? "pass" : "FAIL")
            << ", case 11: eq(1) " << (outcome_11.filter1_pass ? "pass" : "FAIL")
            << " (FOV_EST "
            << result.variation.records[3].fov_est << " vs FOV_UD " << fov_ud
            << ")\n";
  return outcome_11.filter1_pass ? 1 : 0;
}
