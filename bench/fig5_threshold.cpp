// Figure 5 reproduction: "Analytical data of circuit 0x0B for threshold
// values 3 and 40" — the paper's threshold-robustness experiment. The same
// circuit is re-run with ThVAL (and therefore the applied input level, per
// the paper's methodology) set to 3, 15, and 40 molecules.
//
// Shape targets (paper): at 3 molecules the applied inputs are too weak to
// trigger the output and the extracted logic collapses to a conjunctive
// residue ("entirely different" behaviour); at 15 the intended function is
// recovered; at 40 the output level is no longer clearly distinguishable
// from the threshold — Var_O grows by an order of magnitude and the
// expression gains wrong states (the paper reports two).

#include <iostream>

#include "circuits/circuit_repository.h"
#include "core/report.h"
#include "core/threshold_sweep.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace glva;

  util::CliParser cli;
  cli.add_option("circuit", "0x0B", "catalog circuit to sweep");
  cli.add_option("total-time", "10000", "sweep duration (time units)");
  cli.add_option("thresholds", "3,15,40", "comma-separated ThVAL values");
  cli.add_option("fov-ud", "0.25", "FOV_UD");
  cli.add_option("seed", "1", "simulation seed");
  cli.add_option("csv", "", "optional path for CSV output");
  cli.add_option("jobs", "0",
                 "worker threads, one job per threshold point (0 = one per "
                 "hardware thread); results are identical for every value");
  cli.add_flag("redigitize-only",
               "ablation: keep one simulation and only re-digitize");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("fig5_threshold");
    return 0;
  }

  const auto spec = circuits::CircuitRepository::build(cli.get("circuit"));
  core::ExperimentConfig config;
  config.total_time = cli.get_double("total-time");
  config.fov_ud = cli.get_double("fov-ud");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::vector<double> thresholds;
  for (const auto& field : util::split(cli.get("thresholds"), ',')) {
    if (const auto v = util::parse_double(field)) thresholds.push_back(*v);
  }

  const long long jobs_arg = cli.get_int("jobs");
  if (jobs_arg < 0) {
    std::cerr << "fig5_threshold: --jobs must be >= 0\n";
    return 2;
  }
  const auto jobs = static_cast<std::size_t>(jobs_arg);

  util::TextTable table({"ThVAL", "expression", "PFoBE %", "total Var_O",
                         "verify"});
  table.set_align(0, util::TextTable::Align::kRight);
  table.set_align(2, util::TextTable::Align::kRight);
  table.set_align(3, util::TextTable::Align::kRight);

  util::CsvWriter csv;
  csv.row("threshold", "case", "case_count", "high_count", "variation_count",
          "verdict_high");

  // Points arrive through the sweep's ordered commit stream and are
  // dropped once their table row, CSV records, and rendered analytics
  // block are folded out — a dense grid never materializes every point's
  // ExperimentResult (only the formatted text accumulates).
  std::string analytics_blocks;
  const core::ThresholdPointObserver fold = [&](std::size_t,
                                                core::ThresholdPoint&& point) {
    const auto& extraction = point.result.extraction;
    std::size_t total_variation = 0;
    for (const auto& record : extraction.variation.records) {
      total_variation += record.variation_count;
      csv.row(point.threshold,
              extraction.extracted().combination_label(record.combination),
              static_cast<unsigned long long>(record.case_count),
              static_cast<unsigned long long>(record.high_count),
              static_cast<unsigned long long>(record.variation_count),
              extraction.construction.outcomes[record.combination].verdict ==
                      core::CaseVerdict::kHigh
                  ? "1"
                  : "0");
    }
    table.add_row({util::format_double(point.threshold, 4),
                   spec.output_id + " = " + extraction.expression(),
                   util::format_double(extraction.fitness(), 5),
                   std::to_string(total_variation),
                   core::summarize(point.result.verification, spec.expected)});
    analytics_blocks += "--- ThVAL = " + util::format_double(point.threshold) +
                        " ---\n" + core::render_analytics_table(extraction) +
                        "\n";
  };
  const glva::exec::ParallelRunner runner(jobs);
  if (cli.get_flag("redigitize-only")) {
    core::threshold_sweep_redigitize(spec, config, thresholds, runner, fold);
  } else {
    core::threshold_sweep(spec, config, thresholds, runner, fold);
  }

  std::cout << "=== Figure 5: circuit " << spec.name
            << " under threshold variation ===\n"
            << "(inputs are applied at the threshold level, as in the paper)\n\n"
            << table.str() << "\n"
            << analytics_blocks;

  if (const std::string path = cli.get("csv"); !path.empty()) {
    csv.save(path);
    std::cout << "CSV written to " << path << "\n";
  }
  return 0;
}
