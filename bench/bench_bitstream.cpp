// Micro-benchmarks for the bit-packed stream primitives the analysis stage
// is built on (logic::BitStream / logic::CombinationIndex): packing,
// popcount, bitwise combination, masked transition counting, and the
// packed vs reference ADC. These isolate the word-parallel kernels whose
// composition produces the end-to-end speedup bench_analysis_runtime
// measures; each counter reports items/s in *samples*, so packed and
// reference rows are directly comparable.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "logic/bit_stream.h"
#include "logic/combination_index.h"
#include "sim/rng.h"

namespace {

using namespace glva;
using logic::BitStream;

/// Deterministic random stream with plateau structure (runs of ~64), the
/// statistical shape of digitized sweep data rather than white noise.
BitStream make_stream(std::size_t bits, std::uint64_t seed) {
  sim::Rng rng(seed);
  BitStream stream(bits);
  bool level = false;
  std::size_t k = 0;
  while (k < bits) {
    const std::size_t run = 1 + rng.below(128);
    for (std::size_t j = 0; j < run && k < bits; ++j, ++k) {
      if (level) stream.set(k, true);
    }
    level = !level;
  }
  return stream;
}

std::vector<bool> make_bools(std::size_t bits, std::uint64_t seed) {
  return make_stream(bits, seed).unpack();
}

void BM_pack(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const std::vector<bool> data = make_bools(bits, 1);
  for (auto _ : state) {
    BitStream stream = BitStream::pack(data);
    benchmark::DoNotOptimize(stream.word_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_popcount(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BitStream stream = make_stream(bits, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.popcount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

// The vector<bool> equivalent of popcount: what the reference
// VariationAnalyzer pays per HIGH_O count.
void BM_popcount_vector_bool(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const std::vector<bool> data = make_bools(bits, 2);
  for (auto _ : state) {
    std::size_t count = 0;
    for (const bool b : data) count += b ? 1 : 0;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_and_popcount(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BitStream a = make_stream(bits, 3);
  const BitStream b = make_stream(bits, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::and_popcount(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_bitwise_and(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BitStream a = make_stream(bits, 5);
  const BitStream b = make_stream(bits, 6);
  for (auto _ : state) {
    BitStream c = a & b;
    benchmark::DoNotOptimize(c.word_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_masked_transition_count(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BitStream mask = make_stream(bits, 7);
  const BitStream stream = make_stream(bits, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::masked_transition_count(mask, stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_combination_index(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const std::vector<BitStream> inputs = {
      make_stream(bits, 9), make_stream(bits, 10), make_stream(bits, 11)};
  for (auto _ : state) {
    logic::CombinationIndex index(inputs);
    benchmark::DoNotOptimize(index.count(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_pack)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_popcount)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_popcount_vector_bool)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_and_popcount)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_bitwise_and)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_masked_transition_count)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_combination_index)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
