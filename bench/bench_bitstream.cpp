// Micro-benchmarks for the bit-packed stream primitives the analysis stage
// is built on (logic::BitStream / logic::CombinationIndex): packing,
// popcount, bitwise combination, masked transition counting, and the
// packed vs reference ADC. These isolate the word-parallel kernels whose
// composition produces the end-to-end speedup bench_analysis_runtime
// measures; each counter reports items/s in *samples*, so packed and
// reference rows are directly comparable.
//
// The BM_kernel_* rows are registered once per available SIMD tier
// (scalar/sse2/avx2/avx512), so one run shows the per-ISA throughput
// ladder of every dispatched kernel. `--no-timings` skips the benchmark
// harness entirely and prints a deterministic kernel fingerprint (pinned
// by tests/golden/bench_bitstream_kernels.txt).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "logic/bit_stream.h"
#include "logic/combination_index.h"
#include "logic/simd/kernel_set.h"
#include "sim/rng.h"

namespace {

using namespace glva;
using logic::BitStream;

/// Deterministic random stream with plateau structure (runs of ~64), the
/// statistical shape of digitized sweep data rather than white noise.
BitStream make_stream(std::size_t bits, std::uint64_t seed) {
  sim::Rng rng(seed);
  BitStream stream(bits);
  bool level = false;
  std::size_t k = 0;
  while (k < bits) {
    const std::size_t run = 1 + rng.below(128);
    for (std::size_t j = 0; j < run && k < bits; ++j, ++k) {
      if (level) stream.set(k, true);
    }
    level = !level;
  }
  return stream;
}

std::vector<bool> make_bools(std::size_t bits, std::uint64_t seed) {
  return make_stream(bits, seed).unpack();
}

void BM_pack(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const std::vector<bool> data = make_bools(bits, 1);
  for (auto _ : state) {
    BitStream stream = BitStream::pack(data);
    benchmark::DoNotOptimize(stream.word_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_popcount(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BitStream stream = make_stream(bits, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.popcount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

// The vector<bool> equivalent of popcount: what the reference
// VariationAnalyzer pays per HIGH_O count.
void BM_popcount_vector_bool(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const std::vector<bool> data = make_bools(bits, 2);
  for (auto _ : state) {
    std::size_t count = 0;
    for (const bool b : data) count += b ? 1 : 0;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_and_popcount(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BitStream a = make_stream(bits, 3);
  const BitStream b = make_stream(bits, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::and_popcount(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_bitwise_and(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BitStream a = make_stream(bits, 5);
  const BitStream b = make_stream(bits, 6);
  for (auto _ : state) {
    BitStream c = a & b;
    benchmark::DoNotOptimize(c.word_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_masked_transition_count(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BitStream mask = make_stream(bits, 7);
  const BitStream stream = make_stream(bits, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::masked_transition_count(mask, stream));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_combination_index(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const std::vector<BitStream> inputs = {
      make_stream(bits, 9), make_stream(bits, 10), make_stream(bits, 11)};
  for (auto _ : state) {
    logic::CombinationIndex index(inputs);
    benchmark::DoNotOptimize(index.count(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(bits) *
                          static_cast<std::int64_t>(state.iterations()));
}

// ---------------------------------------------- per-ISA-level kernel rows

constexpr std::size_t kKernelBits = 1'000'000;
constexpr std::size_t kKernelWords = kKernelBits / 64;

/// Deterministic analog samples straddling the threshold (same plateau
/// shape as make_stream, rendered as molecule counts).
std::vector<double> make_analog(std::size_t samples, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> values(samples);
  for (double& v : values) v = 15.0 + rng.normal() * 10.0;
  return values;
}

/// One BM_kernel_* row per (kernel, available ISA tier): the per-level
/// throughput ladder of the dispatched analysis kernels, bypassing
/// simd::active() so each row pins exactly one tier.
void register_kernel_benchmarks() {
  using logic::simd::KernelSet;
  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    const std::string level = set->name;
    benchmark::RegisterBenchmark(
        ("BM_kernel_pack_threshold/" + level).c_str(),
        [set](benchmark::State& state) {
          const std::vector<double> analog = make_analog(kKernelBits, 12);
          std::vector<std::uint64_t> words(kKernelWords);
          for (auto _ : state) {
            set->pack_threshold_block(analog.data(), kKernelWords, 15.0,
                                      words.data());
            benchmark::DoNotOptimize(words.data());
          }
          state.SetItemsProcessed(static_cast<std::int64_t>(kKernelBits) *
                                  static_cast<std::int64_t>(state.iterations()));
        })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("BM_kernel_popcount/" + level).c_str(),
        [set](benchmark::State& state) {
          const BitStream stream = make_stream(kKernelBits, 13);
          for (auto _ : state) {
            benchmark::DoNotOptimize(
                set->popcount_words(stream.words().data(), kKernelWords));
          }
          state.SetItemsProcessed(static_cast<std::int64_t>(kKernelBits) *
                                  static_cast<std::int64_t>(state.iterations()));
        })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("BM_kernel_and_popcount/" + level).c_str(),
        [set](benchmark::State& state) {
          const BitStream a = make_stream(kKernelBits, 14);
          const BitStream b = make_stream(kKernelBits, 15);
          for (auto _ : state) {
            benchmark::DoNotOptimize(set->and_popcount_words(
                a.words().data(), b.words().data(), kKernelWords));
          }
          state.SetItemsProcessed(static_cast<std::int64_t>(kKernelBits) *
                                  static_cast<std::int64_t>(state.iterations()));
        })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("BM_kernel_transition_count/" + level).c_str(),
        [set](benchmark::State& state) {
          const BitStream stream = make_stream(kKernelBits, 16);
          for (auto _ : state) {
            benchmark::DoNotOptimize(set->transition_count_words(
                stream.words().data(), kKernelWords, ~std::uint64_t{0}));
          }
          state.SetItemsProcessed(static_cast<std::int64_t>(kKernelBits) *
                                  static_cast<std::int64_t>(state.iterations()));
        })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("BM_kernel_masked_pair_transitions/" + level).c_str(),
        [set](benchmark::State& state) {
          const BitStream mask = make_stream(kKernelBits, 17);
          const BitStream stream = make_stream(kKernelBits, 18);
          for (auto _ : state) {
            benchmark::DoNotOptimize(set->masked_pair_transitions(
                mask.words().data(), stream.words().data(), kKernelWords));
          }
          state.SetItemsProcessed(static_cast<std::int64_t>(kKernelBits) *
                                  static_cast<std::int64_t>(state.iterations()));
        })
        ->Unit(benchmark::kMicrosecond);
  }
}

// -------------------------------------------------- --no-timings golden

/// Fold a word array to one 64-bit fingerprint (order-sensitive).
std::uint64_t fold_words(const std::vector<std::uint64_t>& words) {
  std::uint64_t fold = 0x9E3779B97F4A7C15ULL;
  for (const std::uint64_t w : words) {
    fold = (fold ^ w) * 0x2545F4914F6CDD1DULL;
  }
  return fold;
}

/// Timing-free mode for the golden test: print the deterministic results
/// of every dispatched kernel on a fixed input, then one agreement row per
/// x86-64 baseline tier (scalar, sse2 — always present on the CI hosts the
/// golden is pinned for; wider tiers are checked by test_simd_kernels on
/// hosts that have them, so the golden bytes never depend on the CPU).
int run_no_timings() {
  using logic::simd::IsaLevel;
  using logic::simd::KernelSet;
  const KernelSet* scalar = logic::simd::kernel_set(IsaLevel::kScalar);
  if (scalar == nullptr) return 1;

  const std::vector<double> analog = make_analog(kKernelBits, 12);
  const BitStream a = make_stream(kKernelBits, 13);
  const BitStream b = make_stream(kKernelBits, 14);

  std::vector<std::uint64_t> packed(kKernelWords);
  scalar->pack_threshold_block(analog.data(), kKernelWords, 15.0,
                               packed.data());
  std::printf("bench_bitstream kernel fingerprint (%zu bits, seeds 12-14)\n",
              kKernelBits);
  std::printf("pack_threshold_block: %016llx\n",
              static_cast<unsigned long long>(fold_words(packed)));
  std::printf("popcount_words: %zu\n",
              scalar->popcount_words(a.words().data(), kKernelWords));
  std::printf("and_popcount_words: %zu\n",
              scalar->and_popcount_words(a.words().data(), b.words().data(),
                                         kKernelWords));
  std::printf("transition_count_words: %zu\n",
              scalar->transition_count_words(a.words().data(), kKernelWords,
                                             ~std::uint64_t{0}));
  std::printf("masked_pair_transitions: %zu\n",
              scalar->masked_pair_transitions(a.words().data(),
                                              b.words().data(), kKernelWords));

  int rc = 0;
  for (const IsaLevel level : {IsaLevel::kScalar, IsaLevel::kSSE2}) {
    const KernelSet* set = logic::simd::kernel_set(level);
    const char* name = logic::simd::isa_level_name(level);
    if (set == nullptr) {
      std::printf("%s: unavailable\n", name);
      rc = 1;
      continue;
    }
    std::vector<std::uint64_t> variant(kKernelWords);
    set->pack_threshold_block(analog.data(), kKernelWords, 15.0,
                              variant.data());
    const bool ok =
        variant == packed &&
        set->popcount_words(a.words().data(), kKernelWords) ==
            scalar->popcount_words(a.words().data(), kKernelWords) &&
        set->and_popcount_words(a.words().data(), b.words().data(),
                                kKernelWords) ==
            scalar->and_popcount_words(a.words().data(), b.words().data(),
                                       kKernelWords) &&
        set->transition_count_words(a.words().data(), kKernelWords,
                                    ~std::uint64_t{0}) ==
            scalar->transition_count_words(a.words().data(), kKernelWords,
                                           ~std::uint64_t{0}) &&
        set->masked_pair_transitions(a.words().data(), b.words().data(),
                                     kKernelWords) ==
            scalar->masked_pair_transitions(a.words().data(), b.words().data(),
                                            kKernelWords);
    std::printf("%s: %s\n", name, ok ? "ok" : "MISMATCH");
    if (!ok) rc = 1;
  }
  return rc;
}

}  // namespace

BENCHMARK(BM_pack)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_popcount)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_popcount_vector_bool)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_and_popcount)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_bitwise_and)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_masked_transition_count)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_combination_index)->Arg(1'000'000)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-timings") return run_no_timings();
  }
  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
