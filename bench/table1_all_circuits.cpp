// The paper's 15-circuit study (Section III, in-text): "The proposed
// algorithm is tested on the SBML models of 15 genetic circuits. This set
// includes 1 to 3-inputs genetic logic circuits, which are composed of 1-7
// genetic logic gates containing 3-26 genetic components."
//
// For every catalog circuit this harness runs the paper's experiment
// (10,000 time units, threshold 15 molecules, inputs at the threshold,
// FOV_UD = 0.25) and reports: structure (inputs/gates/components),
// extracted expression, percentage fitness, verification vs the intended
// function, and wall-clock timings.
//
// Shape target: the two-filter extractor recovers the intended function on
// all 15 circuits with PFoBE near 100%.

#include <iostream>

#include "circuits/circuit_repository.h"
#include "core/experiment.h"
#include "core/report.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace glva;

  util::CliParser cli;
  cli.add_option("total-time", "10000", "sweep duration (time units)");
  cli.add_option("threshold", "15", "ThVAL (molecules); inputs applied at it");
  cli.add_option("fov-ud", "0.25", "FOV_UD acceptable variation fraction");
  cli.add_option("seed", "1", "simulation seed");
  cli.add_option("method", "direct", "SSA: direct | next-reaction | tau-leap");
  cli.add_option("csv", "", "optional path for CSV output");
  cli.add_option("jobs", "0",
                 "worker threads (0 = one per hardware thread); results are "
                 "identical for every value");
  cli.add_flag("two-stage", "expand gates to transcription+translation");
  cli.add_flag("no-timings",
               "omit the wall-clock columns (deterministic output for the "
               "golden regression)");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("table1_all_circuits");
    return 0;
  }
  const bool timings = !cli.get_flag("no-timings");

  core::ExperimentConfig config;
  config.total_time = cli.get_double("total-time");
  config.threshold = cli.get_double("threshold");
  config.fov_ud = cli.get_double("fov-ud");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.method = sim::parse_ssa_method(cli.get("method"));

  std::cout << "=== 15-circuit study (paper Section III) ===\n"
            << "total_time " << config.total_time << ", ThVAL "
            << config.threshold << ", FOV_UD " << config.fov_ud << ", SSA "
            << cli.get("method") << "\n\n";

  std::vector<std::string> headers = {"circuit", "in",      "gates",
                                      "parts",   "expression", "PFoBE %",
                                      "verify"};
  if (timings) {
    headers.push_back("sim s");
    headers.push_back("analyze s");
  }
  util::TextTable table(headers);
  table.set_align(1, util::TextTable::Align::kRight);
  table.set_align(2, util::TextTable::Align::kRight);
  table.set_align(3, util::TextTable::Align::kRight);
  table.set_align(5, util::TextTable::Align::kRight);
  if (timings) {
    table.set_align(7, util::TextTable::Align::kRight);
    table.set_align(8, util::TextTable::Align::kRight);
  }

  util::CsvWriter csv;
  std::vector<std::string> csv_header = {"circuit", "inputs",  "gates",
                                         "parts",   "expression", "pfobe",
                                         "matches", "wrong_states"};
  if (timings) {
    csv_header.push_back("sim_seconds");
    csv_header.push_back("analyze_seconds");
  }
  csv.add_row(csv_header);

  std::size_t matched = 0;
  const auto specs =
      circuits::CircuitRepository::build_all(cli.get_flag("two-stage"));
  const long long jobs = cli.get_int("jobs");
  if (jobs < 0) {
    std::cerr << "table1_all_circuits: --jobs must be >= 0\n";
    return 2;
  }
  // One exec/ job per circuit, fanned out across --jobs workers; rows are
  // folded out of the ordered commit stream in catalog order whatever
  // finishes first, and each ExperimentResult is released as soon as its
  // table/CSV rows are formatted — the fleet is never materialized.
  core::run_batch(
      specs, config,
      glva::exec::ParallelRunner(static_cast<std::size_t>(jobs)),
      [&](std::size_t i, core::ExperimentResult&& result) {
        const auto& spec = specs[i];
        const bool ok = result.verification.matches;
        matched += ok ? 1 : 0;
        std::vector<std::string> row = {
            spec.name, std::to_string(spec.input_ids.size()),
            std::to_string(spec.gate_count), std::to_string(spec.parts.total()),
            result.extraction.expression(),
            util::format_double(result.extraction.fitness(), 5),
            core::summarize(result.verification, spec.expected)};
        if (timings) {
          row.push_back(util::format_double(result.simulate_seconds, 3));
          row.push_back(util::format_double(result.analyze_seconds, 3));
        }
        table.add_row(row);
        std::vector<std::string> csv_row = {
            spec.name,
            std::to_string(spec.input_ids.size()),
            std::to_string(spec.gate_count),
            std::to_string(spec.parts.total()),
            result.extraction.expression(),
            util::format_double(result.extraction.fitness()),
            ok ? "1" : "0",
            std::to_string(result.verification.wrong_state_count())};
        if (timings) {
          csv_row.push_back(util::format_double(result.simulate_seconds));
          csv_row.push_back(util::format_double(result.analyze_seconds));
        }
        csv.add_row(csv_row);
      });

  std::cout << table.str() << "\n"
            << matched << "/" << specs.size()
            << " circuits recover their intended logic\n";
  if (const std::string path = cli.get("csv"); !path.empty()) {
    csv.save(path);
    std::cout << "CSV written to " << path << "\n";
  }
  return matched == specs.size() ? 0 : 1;
}
