// Simulator ablation: the paper's methodology requires an exact SSA
// (Gillespie) for trace generation. This benchmark compares GLVA's three
// simulation kernels (direct, next-reaction, tau-leaping) and the RK4 ODE
// reference on the catalog circuits, per 10,000-time-unit sweep.
//
// Shape target: next-reaction tracks direct closely on these small
// networks (its asymptotic advantage needs larger reaction counts),
// tau-leaping trades accuracy for speed, and all SSA variants recover the
// same extracted logic at the nominal threshold.

#include <benchmark/benchmark.h>

#include "circuits/circuit_repository.h"
#include "core/experiment.h"
#include "sim/ode.h"
#include "sim/virtual_lab.h"

namespace {

using namespace glva;

void run_sweep(benchmark::State& state, const std::string& circuit,
               sim::SsaMethod method) {
  const auto spec = circuits::CircuitRepository::build(circuit);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::LabOptions options;
    options.method = method;
    options.seed = seed++;
    sim::VirtualLab lab(spec.model, options);
    lab.declare_inputs(spec.input_ids);
    auto sweep = lab.run_combination_sweep(10000.0, 15.0);
    benchmark::DoNotOptimize(sweep.trace.sample_count());
  }
}

void BM_direct_small(benchmark::State& state) {
  run_sweep(state, "myers_and", sim::SsaMethod::kDirect);
}
void BM_nrm_small(benchmark::State& state) {
  run_sweep(state, "myers_and", sim::SsaMethod::kNextReaction);
}
void BM_tau_small(benchmark::State& state) {
  run_sweep(state, "myers_and", sim::SsaMethod::kTauLeap);
}
void BM_direct_large(benchmark::State& state) {
  run_sweep(state, "0x17", sim::SsaMethod::kDirect);
}
void BM_nrm_large(benchmark::State& state) {
  run_sweep(state, "0x17", sim::SsaMethod::kNextReaction);
}
void BM_tau_large(benchmark::State& state) {
  run_sweep(state, "0x17", sim::SsaMethod::kTauLeap);
}

void BM_ode_large(benchmark::State& state) {
  const auto spec = circuits::CircuitRepository::build("0x17");
  sim::VirtualLab lab(spec.model);
  lab.declare_inputs(spec.input_ids);
  const auto& network = lab.network();
  const auto schedule =
      sim::InputSchedule::combination_sweep(spec.input_ids, 10000.0, 15.0);
  const sim::OdeRk4 integrator(0.05);
  for (auto _ : state) {
    auto trace = integrator.run(network, schedule, 10000.0);
    benchmark::DoNotOptimize(trace.sample_count());
  }
}

/// End-to-end: simulate + analyze, the full per-circuit pipeline cost.
void BM_full_pipeline(benchmark::State& state) {
  const auto spec = circuits::CircuitRepository::build("0x0B");
  core::ExperimentConfig config;
  for (auto _ : state) {
    config.seed++;
    auto result = core::run_experiment(spec, config);
    benchmark::DoNotOptimize(result.extraction.construction.fitness_percent);
  }
}

}  // namespace

BENCHMARK(BM_direct_small)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_nrm_small)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_tau_small)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_direct_large)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_nrm_large)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_tau_large)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ode_large)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_full_pipeline)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
