// Parallel-scaling bench for the exec/ runtime: runs the same replicate
// ensemble at 1/2/4/8 worker threads and reports wall time, speedup, and
// parallel efficiency — together with a bit-identity check that every jobs
// level produced the same majority logic (the exec/ determinism contract).
//
// Shape target: on a multi-core machine, >= 2x speedup at 4 threads (the
// workload is embarrassingly parallel; the ceiling is min(replicates,
// cores) and the serial aggregation tail is negligible).

#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "circuits/circuit_repository.h"
#include "core/ensemble.h"
#include "exec/thread_pool.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/text_table.h"

int main(int argc, char** argv) {
  using namespace glva;

  util::CliParser cli;
  cli.add_option("circuit", "0x0B", "catalog circuit to run");
  cli.add_option("replicates", "16", "ensemble replicates per jobs level");
  cli.add_option("total-time", "2000", "sweep duration per replicate");
  cli.add_option("seed", "1", "base seed");
  cli.add_option("jobs-levels", "1,2,4,8", "comma-separated worker counts");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("bench_parallel_scaling");
    return 0;
  }

  const auto spec = circuits::CircuitRepository::build(cli.get("circuit"));
  core::ExperimentConfig config;
  config.total_time = cli.get_double("total-time");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const long long replicates_arg = cli.get_int("replicates");
  if (replicates_arg <= 0) {
    std::cerr << "bench_parallel_scaling: --replicates must be >= 1\n";
    return 2;
  }
  const auto replicates = static_cast<std::size_t>(replicates_arg);

  // Speedup is reported relative to the first level, and efficiency divides
  // by the absolute thread count, so the baseline must be the 1-thread run;
  // 0 ("hardware threads") would also mislabel the table.
  std::vector<std::size_t> jobs_levels;
  for (const auto& field : util::split(cli.get("jobs-levels"), ',')) {
    const auto level = util::parse_int(field);
    if (!level || *level < 1) {
      std::cerr << "bench_parallel_scaling: --jobs-levels expects positive "
                   "integers, got '"
                << field << "'\n";
      return 2;
    }
    jobs_levels.push_back(static_cast<std::size_t>(*level));
  }
  if (jobs_levels.empty() || jobs_levels.front() != 1) {
    std::cerr << "bench_parallel_scaling: --jobs-levels must start with the "
                 "1-thread baseline\n";
    return 2;
  }

  std::cout << "=== parallel scaling: " << replicates << " replicates of "
            << spec.name << ", total_time " << config.total_time << " ===\n"
            << "hardware threads: " << exec::ThreadPool::hardware_threads()
            << "\n\n";

  util::TextTable table({"jobs", "wall s", "speedup", "efficiency %",
                         "majority bits"});
  for (std::size_t col = 0; col < 4; ++col) {
    table.set_align(col, util::TextTable::Align::kRight);
  }

  double serial_seconds = 0.0;
  std::uint64_t reference_bits = 0;
  bool identical = true;
  for (std::size_t level = 0; level < jobs_levels.size(); ++level) {
    const std::size_t jobs = jobs_levels[level];
    const auto start = std::chrono::steady_clock::now();
    const auto ensemble = core::run_ensemble(spec, config, replicates, jobs);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (level == 0) {  // the first *run* is the baseline, not its value
      serial_seconds = seconds;
      reference_bits = ensemble.majority_logic.to_bits();
    }
    identical =
        identical && ensemble.majority_logic.to_bits() == reference_bits;
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    table.add_row({std::to_string(jobs), util::format_double(seconds, 3),
                   util::format_double(speedup, 3),
                   util::format_double(100.0 * speedup /
                                           static_cast<double>(jobs), 1),
                   [&] {
                     std::ostringstream hex;
                     hex << "0x" << std::hex
                         << ensemble.majority_logic.to_bits();
                     return hex.str();
                   }()});
  }

  std::cout << table.str() << "\n"
            << (identical ? "all jobs levels produced identical majority logic"
                          : "DETERMINISM VIOLATION: results differ across "
                            "jobs levels")
            << "\n";
  return identical ? 0 : 1;
}
