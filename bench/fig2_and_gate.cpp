// Figure 2 reproduction: "Analysis and verification process. (a) Sample
// plots of 2-input genetic AND gate. (b) Sample data for illustrating the
// input case and variation analysis."
//
// Runs the Figure 1 genetic AND gate (LacI/TetR -> CI -> GFP) through the
// paper's sweep, renders the analog I/O traces as strip charts, prints the
// per-combination Case_I / output-stream / Var_O table, and shows how the
// unfiltered reading would mis-classify the circuit as XNOR (the initial
// GFP transient makes combination 00 look high) while the two filters
// recover AND.
//
// Shape targets: combination 00 carries a short run of logic-1 samples
// (initial transient / glitch), combination 11 is majority-high with a few
// threshold oscillations before settling, and the any-high baseline reads
// XNOR-ish while the filtered extractor reads AND.

#include <fstream>
#include <iostream>

#include "circuits/circuit_repository.h"
#include "core/baseline.h"
#include "core/experiment.h"
#include "core/report.h"
#include "logic/quine_mccluskey.h"
#include "util/ascii_chart.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace glva;

  util::CliParser cli;
  cli.add_option("total-time", "10000", "sweep duration (time units)");
  cli.add_option("threshold", "15", "ThVAL (molecules)");
  cli.add_option("fov-ud", "0.25", "FOV_UD");
  cli.add_option("seed", "1", "simulation seed");
  cli.add_option("csv", "", "optional path for the trace CSV");
  if (!cli.parse(argc, argv)) {
    std::cout << cli.help("fig2_and_gate");
    return 0;
  }

  const auto spec = circuits::CircuitRepository::build("myers_and");
  core::ExperimentConfig config;
  config.total_time = cli.get_double("total-time");
  config.threshold = cli.get_double("threshold");
  config.fov_ud = cli.get_double("fov-ud");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  // This figure displays the per-combination output streams run-length
  // encoded; only the reference backend materializes them (the packed
  // backend keeps them implicit in mask/output word pairs).
  config.backend = core::AnalysisBackend::kReference;

  const core::ExperimentResult result = core::run_experiment(spec, config);
  const sim::Trace& trace = result.sweep.trace;

  std::cout << "=== Figure 2(a): sample plots of the 2-input genetic AND gate "
               "===\n\n";
  util::ChartOptions chart;
  chart.threshold = config.threshold;
  chart.height = 10;
  for (const std::string id : {"LacI", "TetR", "GFP"}) {
    std::cout << util::render_time_series(id + " (molecules)", trace.times(),
                                          trace.series(id), chart)
              << "\n";
  }

  std::cout << "=== Figure 2(b): input case and variation analysis ===\n\n";
  std::cout << core::render_analytics_table(result.extraction) << "\n";

  std::cout << "per-combination output data streams (run-length encoded):\n";
  for (const auto& record : result.extraction.cases.cases) {
    std::cout << "  case "
              << result.extraction.extracted().combination_label(
                     record.combination)
              << ": " << util::render_run_length(record.output_stream) << "\n";
  }

  // The paper's XNOR warning: what an unfiltered reading concludes.
  const auto names = spec.input_ids;
  const auto show_rule = [&](core::BaselineRule rule) {
    const logic::TruthTable table = core::extract_with_rule(
        result.extraction.variation, rule, config.fov_ud);
    std::cout << "  " << core::baseline_rule_name(rule) << ": GFP = "
              << logic::minimize(table, names).to_string() << "\n";
  };
  std::cout << "\n=== filter ablation on the same data ===\n";
  show_rule(core::BaselineRule::kAnyHigh);
  show_rule(core::BaselineRule::kStabilityOnly);
  show_rule(core::BaselineRule::kMajorityOnly);
  show_rule(core::BaselineRule::kBothFilters);

  std::cout << "\n" << core::render_experiment_summary(result, spec.expected);

  if (const std::string path = cli.get("csv"); !path.empty()) {
    std::ofstream(path) << trace.to_csv();
    std::cout << "trace CSV written to " << path << "\n";
  }
  return result.verification.matches ? 0 : 1;
}
